//! Local stand-in for the `proptest` crate (the build environment has no
//! crates.io access). Provides deterministic, seeded random sampling
//! behind the proptest API surface ZugChain's property tests use:
//!
//! * the [`proptest!`] macro with both argument forms
//!   (`fn f(x: u64)` and `fn f(x in strategy)`), doc comments, attributes,
//!   and `#![proptest_config(..)]`;
//! * [`Strategy`] with `prop_map` and `boxed`, [`Just`], ranges, tuples,
//!   [`collection::vec`], [`prop_oneof!`], and [`any`]/[`Arbitrary`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from upstream: cases are sampled from a fixed per-test
//! seed (fully deterministic, no `PROPTEST_CASES`/persistence files), and
//! **failures are not shrunk** — the failing case is reported as-is.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner;

pub use test_runner::{TestCaseError, TestRng};

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A [`Strategy`] returning clones of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

trait SampleDyn<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> SampleDyn<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn SampleDyn<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Uniform choice between several strategies (the [`prop_oneof!`] macro).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union over `options`; each case picks one uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let index = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[index].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}

/// Types with a canonical random generator, used by [`any`] and the
/// typed-argument form of [`proptest!`].
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix magnitudes: uniform bits, but a quarter of draws are
                // masked small so boundary-adjacent values appear often.
                let raw = rng.next_u64();
                let value = match rng.next_u64() % 4 {
                    0 => raw % 17,
                    _ => raw,
                };
                value as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII, some multibyte, to exercise UTF-8 handling.
        match rng.next_u64() % 8 {
            0 => '\u{00e9}',
            1 => '\u{4e9c}',
            2 => '\u{1f682}',
            _ => (b' ' + (rng.next_u64() % 95) as u8) as char,
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = (rng.next_u64() % 33) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Vec<T> {
        let len = (rng.next_u64() % 65) as usize;
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

/// The canonical strategy for `T`: see [`Arbitrary`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<fn() -> T>);

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from `size` and elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// The result of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests. Supports typed arguments (`fn f(x: u64)`,
/// sampled via [`Arbitrary`]) and strategy arguments (`fn f(x in expr)`),
/// with optional `#![proptest_config(..)]` as the first token.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal muncher for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr)) => {};
    // Strategy-argument form: `fn name(arg in strategy, ...) { .. }`
    (@cfg ($config:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::test_runner::run(config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::sample(&($strategy), __proptest_rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
    // Typed-argument form: `fn name(arg: Type, ...) { .. }`
    (@cfg ($config:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident : $ty:ty),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::test_runner::run(config, stringify!($name), |__proptest_rng| {
                $(let $arg = <$ty as $crate::Arbitrary>::arbitrary(__proptest_rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Discards the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}
