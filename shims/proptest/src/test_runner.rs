//! Case execution: a deterministic seeded RNG and the run loop behind the
//! [`proptest!`](crate::proptest) macro.

use crate::ProptestConfig;

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was discarded by [`prop_assume!`](crate::prop_assume).
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A discarded case with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// The deterministic generator handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Derives a stable per-test seed from the test name (FNV-1a).
fn seed_for(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs `case` for `config.cases` accepted cases, retrying rejected ones.
///
/// # Panics
///
/// Panics on the first failing case (no shrinking) or when more than
/// `cases × 16` consecutive rejections occur.
pub fn run(
    config: ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::seed_from_u64(seed_for(name));
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let max_rejects = u64::from(config.cases) * 16;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(reason)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: too many rejected cases ({rejected}), last: {reason}"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "{name}: case {accepted} failed (seed {:#x}):\n{message}",
                    seed_for(name)
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::seed_from_u64(seed_for("t"));
        let mut b = TestRng::seed_from_u64(seed_for("t"));
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::seed_from_u64(seed_for("u"));
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn run_counts_accepted_cases() {
        let mut n = 0;
        run(ProptestConfig::with_cases(10), "count", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic() {
        run(ProptestConfig::with_cases(3), "fails", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    #[should_panic(expected = "too many rejected")]
    fn endless_rejection_panics() {
        run(ProptestConfig::with_cases(2), "rejects", |_| {
            Err(TestCaseError::reject("never"))
        });
    }
}
