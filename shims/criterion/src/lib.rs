//! Local stand-in for the `criterion` crate (the build environment has no
//! crates.io access). Provides a minimal wall-clock harness with the
//! criterion API surface ZugChain's benches use: `benchmark_group`,
//! `throughput`, `sample_size`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`/`iter_batched`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Results are printed as `name  time: [.. ns/iter]` (plus derived
//! throughput when configured), followed by a machine-readable
//! `bench-result: <name> ns_per_iter=N [elem_per_s=R|bytes_per_s=R]`
//! line for scripts (the CI regression gates parse that one); there is
//! no statistical analysis, HTML report, or baseline comparison.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, name: impl fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&name.to_string(), None, 10, f);
    }
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The measured iteration processes this many bytes.
    Bytes(u64),
    /// The measured iteration processes this many elements.
    Elements(u64),
}

/// How [`Bencher::iter_batched`] sizes its setup batches (ignored here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive per-byte/element rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure under `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.throughput, self.sample_size, f);
        self
    }

    /// Benchmarks a closure that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.throughput, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (report flushing in real criterion; a no-op here).
    pub fn finish(&mut self) {}
}

/// Measures one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark(
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibration pass: find an iteration count that runs ≥ ~20 ms, so
    // short routines are not dominated by timer noise.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
            break bencher.elapsed.as_nanos() as u64 / iters.max(1);
        }
        iters = iters.saturating_mul(4);
    };

    // Measurement: `sample_size` samples at the calibrated count; report
    // the minimum (least-noise) sample.
    let mut best = per_iter;
    for _ in 0..sample_size.min(20) {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let sample = bencher.elapsed.as_nanos() as u64 / iters.max(1);
        best = best.min(sample);
    }

    let (rate, machine_rate) = match throughput {
        Some(Throughput::Bytes(bytes)) if best > 0 => {
            let bytes_s = bytes as f64 * 1e9 / best as f64;
            let mib_s = bytes_s / (1024.0 * 1024.0);
            (
                format!("  thrpt: {mib_s:.1} MiB/s"),
                format!(" bytes_per_s={bytes_s:.0}"),
            )
        }
        Some(Throughput::Elements(elements)) if best > 0 => {
            let elem_s = elements as f64 * 1e9 / best as f64;
            (
                format!("  thrpt: {elem_s:.0} elem/s"),
                format!(" elem_per_s={elem_s:.0}"),
            )
        }
        _ => (String::new(), String::new()),
    };
    println!("{name:<50} time: {best} ns/iter{rate}");
    // A second, machine-readable line with a fixed `key=value` layout:
    // scripts (CI regression gates, figure generators) parse this one,
    // so the human-readable formatting above can change freely.
    println!("bench-result: {name} ns_per_iter={best}{machine_rate}");
}

/// Declares a benchmark group function calling each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(64));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, n| {
            b.iter_batched(|| vec![0u8; *n], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
