//! Local stand-in for the `rand` crate (the build environment has no
//! crates.io access). Provides a seeded splitmix64 generator behind the
//! rand 0.10 trait names ZugChain uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::fill_bytes`], and the [`RngExt`] sampling helpers
//! (`random_bool`, `random_range`, `random_ratio`).
//!
//! Only determinism-per-seed and a reasonable distribution are required
//! by the simulator and tests — not statistical equivalence with the
//! upstream StdRng — so the stream differs from upstream rand.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random generator operations.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Sampling helpers (split out in rand 0.10 as an extension trait).
pub trait RngExt: Rng {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, as upstream.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "random_ratio denominator must be non-zero");
        let sample = self.next_u64() % u64::from(denominator);
        sample < u64::from(numerator)
    }

    /// Samples uniformly from a (half-open or inclusive) integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard seeded generator: splitmix64.
    ///
    /// Not the upstream StdRng (ChaCha12); ZugChain only needs seeded
    /// determinism, not cryptographic randomness, outside the crypto
    /// crate's explicit key derivation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng as _, RngExt as _, SeedableRng as _};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-20i32..=20);
            assert!((-20..=20).contains(&w));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
