//! Local stand-in for the `crossbeam` crate (the build environment has no
//! crates.io access). Only [`channel`] is provided, backed by
//! `std::sync::mpsc`. The semantics ZugChain relies on are preserved:
//! cloneable senders, bounded channels that block producers when full,
//! `recv_timeout`/`try_recv`, and disconnect detection.

#![warn(missing_docs)]

/// Multi-producer channels with the crossbeam-channel API surface.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Creates a channel with a bounded capacity; sends block while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderKind::Bounded(tx)), Receiver(rx))
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderKind::Unbounded(tx)), Receiver(rx))
    }

    enum SenderKind<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    /// The sending half of a channel; cloneable across threads.
    pub struct Sender<T>(SenderKind<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
                SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
            })
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// [`SendError`] if all receivers disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderKind::Bounded(tx) => tx.send(value),
                SenderKind::Unbounded(tx) => tx.send(value),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives.
        ///
        /// # Errors
        ///
        /// [`RecvError`] if all senders disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a value.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Returns a pending value without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator over received values until disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_round_trip_across_threads() {
            let (tx, rx) = bounded::<u32>(4);
            let tx2 = tx.clone();
            let handle = std::thread::spawn(move || {
                for v in 0..10 {
                    tx2.send(v).unwrap();
                }
            });
            drop(tx);
            let got: Vec<u32> = rx.iter().collect();
            handle.join().unwrap();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
