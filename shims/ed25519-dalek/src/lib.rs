//! Local stand-in for the `ed25519-dalek` crate (the build environment has
//! no crates.io access).
//!
//! **This is not Ed25519.** It is a deterministic, hash-based signature
//! stand-in with the same API shape and the same observable contract the
//! ZugChain test-suite relies on:
//!
//! * signing is deterministic: same key + message → same 64-byte signature;
//! * a signature verifies only under the signer's public key and only for
//!   the signed message (wrong key or tampered message ⇒ rejection);
//! * distinct seeds produce distinct keys and signatures;
//! * keys and signatures round-trip through their 32-/64-byte encodings.
//!
//! Construction: `pk = H(domain_pk ‖ secret)`; `sig = H(domain_s1 ‖ pk ‖
//! msg) ‖ H(domain_s2 ‖ pk ‖ msg)`. Verification recomputes the signature
//! from the public key and compares. Because the signature depends only on
//! public data, this scheme is **unforgeable only against adversaries that
//! follow the API** (as in tests) — adequate for a reproduction without
//! network adversaries, and trivially swappable for the real dalek crate
//! when a registry is available, since only this shim would change.

#![warn(missing_docs)]

use std::fmt;

use sha2::{Digest as _, Sha256};

const DOMAIN_PK: &[u8] = b"zugchain-shim-ed25519-pk-v1";
const DOMAIN_SIG1: &[u8] = b"zugchain-shim-ed25519-sig1-v1";
const DOMAIN_SIG2: &[u8] = b"zugchain-shim-ed25519-sig2-v1";

/// Error returned on failed verification or malformed key bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureError;

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "signature verification failed")
    }
}

impl std::error::Error for SignatureError {}

/// Trait for objects that can sign messages (mirrors `ed25519::signature::Signer`).
pub trait Signer<S> {
    /// Signs `message`.
    fn sign(&self, message: &[u8]) -> S;
}

/// Trait for objects that can verify signatures (mirrors `ed25519::signature::Verifier`).
pub trait Verifier<S> {
    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// [`SignatureError`] if the signature does not match.
    fn verify(&self, message: &[u8], signature: &S) -> Result<(), SignatureError>;
}

fn hash3(domain: &[u8], a: &[u8], b: &[u8]) -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(domain);
    hasher.update(a);
    hasher.update(b);
    hasher.finalize().into()
}

/// A signing (secret) key.
#[derive(Clone)]
pub struct SigningKey {
    secret: [u8; 32],
    public: [u8; 32],
}

impl SigningKey {
    /// Builds a signing key from 32 secret bytes.
    pub fn from_bytes(secret: &[u8; 32]) -> Self {
        let public = hash3(DOMAIN_PK, secret, &[]);
        Self {
            secret: *secret,
            public,
        }
    }

    /// The secret bytes this key was built from.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.secret
    }

    /// The corresponding verification key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey { bytes: self.public }
    }
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret.
        f.debug_struct("SigningKey")
            .field("public", &self.verifying_key())
            .finish_non_exhaustive()
    }
}

impl Signer<Signature> for SigningKey {
    fn sign(&self, message: &[u8]) -> Signature {
        self.verifying_key().expected_signature(message)
    }
}

/// A verification (public) key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey {
    bytes: [u8; 32],
}

impl VerifyingKey {
    /// Parses a verification key from its 32-byte encoding.
    ///
    /// # Errors
    ///
    /// Never fails in the stand-in (real Ed25519 rejects non-curve
    /// points); the `Result` keeps the dalek signature shape.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<Self, SignatureError> {
        Ok(Self { bytes: *bytes })
    }

    /// The key's 32-byte encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.bytes
    }

    fn expected_signature(&self, message: &[u8]) -> Signature {
        let lo = hash3(DOMAIN_SIG1, &self.bytes, message);
        let hi = hash3(DOMAIN_SIG2, &self.bytes, message);
        let mut bytes = [0u8; 64];
        bytes[..32].copy_from_slice(&lo);
        bytes[32..].copy_from_slice(&hi);
        Signature { bytes }
    }
}

impl Verifier<Signature> for VerifyingKey {
    fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), SignatureError> {
        if self.expected_signature(message) == *signature {
            Ok(())
        } else {
            Err(SignatureError)
        }
    }
}

/// A 64-byte signature.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    bytes: [u8; 64],
}

impl Signature {
    /// Builds a signature from its 64-byte encoding (any bytes parse).
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        Self { bytes: *bytes }
    }

    /// The signature's 64-byte encoding.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.bytes
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({:02x}{:02x}..)", self.bytes[0], self.bytes[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let key = SigningKey::from_bytes(&[7u8; 32]);
        let sig = key.sign(b"msg");
        assert!(key.verifying_key().verify(b"msg", &sig).is_ok());
        assert!(key.verifying_key().verify(b"other", &sig).is_err());
    }

    #[test]
    fn wrong_key_rejects() {
        let a = SigningKey::from_bytes(&[1u8; 32]);
        let b = SigningKey::from_bytes(&[2u8; 32]);
        let sig = a.sign(b"msg");
        assert!(b.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn deterministic_and_distinct() {
        let a = SigningKey::from_bytes(&[1u8; 32]);
        assert_eq!(a.sign(b"m").to_bytes(), a.sign(b"m").to_bytes());
        assert_ne!(a.sign(b"m").to_bytes(), a.sign(b"n").to_bytes());
    }

    #[test]
    fn keys_round_trip() {
        let key = SigningKey::from_bytes(&[9u8; 32]).verifying_key();
        let back = VerifyingKey::from_bytes(&key.to_bytes()).unwrap();
        assert_eq!(key, back);
    }
}
