//! Multiple input sources (paper §III-C): nodes connected to several
//! buses — here an MVB *and* a ProfiNet-style bus — log the input of all
//! of them, through one consensus instance.

use zugchain::{NodeConfig, TrainNode as _, ZugchainNode};
use zugchain_crypto::Keystore;
use zugchain_mvb::profinet::ProfinetBus;
use zugchain_mvb::{
    Bus, BusConfig, Nsdb, PortAddress, SignalDescriptor, SignalGenerator, SignalKind,
};
use zugchain_pbft::NodeId;

/// A minimal synchronous router (mirror of the unit-test harness, but
/// built from public API only).
struct Router {
    nodes: Vec<ZugchainNode>,
    queue: std::collections::VecDeque<(usize, zugchain::NodeMessage)>,
    logged: Vec<Vec<(u64, NodeId)>>,
}

impl Router {
    fn new(n: usize, nsdb: Nsdb) -> Self {
        let (pairs, keystore) = Keystore::generate(n, 31);
        let nodes = pairs
            .into_iter()
            .enumerate()
            .map(|(id, key)| {
                let mut node = ZugchainNode::new(
                    id as u64,
                    NodeConfig::default_for_testing(),
                    nsdb.clone(),
                    key,
                    keystore.clone(),
                );
                let source = node.add_input_source();
                assert_eq!(source, 1, "second bus gets source index 1");
                node
            })
            .collect();
        Self {
            nodes,
            queue: Default::default(),
            logged: vec![Vec::new(); n],
        }
    }

    fn route(&mut self, index: usize) {
        for effect in self.nodes[index].drain_effects() {
            match effect {
                zugchain::NodeEffect::Broadcast { message } => {
                    for dest in 0..self.nodes.len() {
                        if dest != index {
                            self.queue.push_back((dest, message.clone()));
                        }
                    }
                }
                zugchain::NodeEffect::Send { to, message } => {
                    self.queue.push_back((to.0 as usize, message));
                }
                zugchain::NodeEffect::Output(zugchain::NodeEvent::Logged {
                    sn, origin, ..
                }) => {
                    self.logged[index].push((sn, origin));
                }
                _ => {}
            }
        }
    }

    fn pump(&mut self) {
        for index in 0..self.nodes.len() {
            self.route(index);
        }
        while let Some((dest, message)) = self.queue.pop_front() {
            self.nodes[dest].on_message(message);
            self.route(dest);
        }
    }
}

/// Distinct NSDBs so the two buses carry disjoint ports.
fn mvb_nsdb() -> Nsdb {
    Nsdb::jru_default()
}

fn profinet_nsdb() -> Nsdb {
    let mut nsdb = Nsdb::new();
    nsdb.add(SignalDescriptor {
        name: "hvac_temp".into(),
        port: PortAddress(0x500),
        kind: SignalKind::U16,
        period_cycles: 1,
    });
    nsdb
}

/// A device serving the ProfiNet-side port with changing values.
#[derive(Debug)]
struct TempSensor;

impl zugchain_mvb::Device for TempSensor {
    fn poll(&mut self, port: PortAddress, cycle: u64, _time_ms: u64) -> Option<Vec<u8>> {
        (port == PortAddress(0x500)).then(|| ((200 + cycle) as u16).to_le_bytes().to_vec())
    }

    fn ports(&self) -> Vec<PortAddress> {
        vec![PortAddress(0x500)]
    }
}

#[test]
fn both_buses_are_logged_through_one_consensus() {
    // Note: the node's NSDB is used per-source for parsing; use the MVB
    // catalogue — unknown ProfiNet ports still log as raw events, and
    // here we give the node the union so both decode.
    let mut union = mvb_nsdb();
    for descriptor in profinet_nsdb().iter() {
        union.add(descriptor.clone());
    }
    let mut router = Router::new(4, union);

    let mut mvb = Bus::new(BusConfig::jru_default(64), 4, 1);
    mvb.attach_device(Box::new(SignalGenerator::new(8)));
    let mut profinet = ProfinetBus::new(profinet_nsdb(), 64, 4, 2);
    profinet.attach_device(Box::new(TempSensor));

    for _ in 0..4 {
        let mvb_out = mvb.run_cycle();
        for obs in &mvb_out.observations {
            router.nodes[obs.tap].on_bus_cycle(0, mvb_out.cycle, mvb_out.time_ms, &obs.telegrams);
        }
        let pn_out = profinet.run_cycle();
        for obs in &pn_out.observations {
            router.nodes[obs.tap].on_bus_cycle(1, pn_out.cycle, pn_out.time_ms, &obs.telegrams);
        }
        router.pump();
    }

    // Every node logged requests from *both* sources: at least one
    // per-cycle request per bus after the first cycle (changing values).
    for (id, logged) in router.logged.iter().enumerate() {
        assert!(
            logged.len() >= 6,
            "node {id} logged only {} requests",
            logged.len()
        );
    }
    // Logs agree across nodes.
    let reference = &router.logged[0];
    for id in 1..4 {
        assert_eq!(&router.logged[id], reference, "node {id} log differs");
    }
    // Both buses' content is present in the blockchains.
    let chain = router.nodes[0].chain();
    let mut saw_speed = false;
    let mut saw_temp = false;
    let pending: Vec<u8> = Vec::new();
    let _ = pending;
    for block in chain.blocks() {
        for logged in &block.requests {
            if let Ok(request) =
                zugchain_wire::from_bytes::<zugchain_signals::Request>(&logged.payload)
            {
                for event in &request.events {
                    match event.name.as_str() {
                        "v_actual" => saw_speed = true,
                        "hvac_temp" => saw_temp = true,
                        _ => {}
                    }
                }
            }
        }
    }
    assert!(saw_speed, "MVB signals reached the chain");
    assert!(saw_temp, "ProfiNet signals reached the chain");
}

#[test]
fn per_source_filtering_is_independent() {
    // The same numeric value on the two buses must not suppress each
    // other: filters are per source (per consolidator), keyed by port.
    let mut nsdb = Nsdb::new();
    nsdb.add(SignalDescriptor {
        name: "a".into(),
        port: PortAddress(0x600),
        kind: SignalKind::U16,
        period_cycles: 1,
    });
    let mut router = Router::new(4, nsdb);

    let telegram =
        |cycle: u64| zugchain_mvb::Telegram::new(PortAddress(0x600), cycle, cycle * 64, vec![7, 0]);
    // Source 0 sees the value at cycle 0; source 1 sees the *same value*
    // at cycle 1. Different sources → both logged.
    for id in 0..4 {
        router.nodes[id].on_bus_cycle(0, 0, 0, &[telegram(0)]);
    }
    router.pump();
    for id in 0..4 {
        router.nodes[id].on_bus_cycle(1, 1, 64, &[telegram(1)]);
    }
    router.pump();
    assert_eq!(router.logged[0].len(), 2, "one request per source");
}
