//! Cross-runtime conformance: the same scenario — four nodes, six
//! payloads, the initial primary crashing halfway, exactly one view
//! change — runs on all three runtimes built on the generic
//! `zugchain_machine::Driver`:
//!
//! * the discrete-event simulator ([`zugchain_sim::run_scenario`]),
//! * the in-process threaded cluster ([`ThreadedCluster`]),
//! * the real-socket cluster ([`TcpCluster`]),
//!
//! and every node must decide the identical `(sn, digest)` sequence.
//! The suite also covers the timer-generation contract: soft timeouts
//! that were cancelled and re-armed while the crash was handled must
//! never cause a payload to be proposed (and thus decided) twice.
//!
//! Since the MAC authenticator fast path, the matrix has a second axis:
//! the same crash-and-view-change scenario must decide bit-identical
//! logs whether ordering traffic is signature-authenticated
//! ([`AuthMode::Sig`]) or MAC-authenticated with deferred signatures
//! ([`AuthMode::MacWithSigFallback`]) — and a mixed-mode group, where
//! some replicas speak MACs and others only signatures, must still
//! agree.

use std::time::{Duration, Instant};

use zugchain::NodeConfig;
use zugchain_crypto::Digest;
use zugchain_pbft::AuthMode;
use zugchain_sim::runtime::{ClusterEvent, ThreadedCluster};
use zugchain_sim::tcp::TcpCluster;
use zugchain_sim::{run_scenario, Mode, ScenarioConfig, Workload};

const N: usize = 4;
/// Index of the first payload fed after the primary crash.
const CRASH_AT: usize = 3;

/// The scripted payloads: spaced far enough apart that each one is
/// decided before the next arrives, on every runtime.
fn payloads() -> Vec<Vec<u8>> {
    (0..6u8)
        .map(|i| {
            let mut payload = vec![i; 96];
            payload[..4].copy_from_slice(b"CONF");
            payload
        })
        .collect()
}

/// The conformance node config at a given consensus batch size and
/// authentication mode. Batched configs get a short flush delay so a
/// partial batch (every batch, in the quiescent script) still proposes
/// promptly.
fn node_config(max_batch_size: usize, auth_mode: AuthMode) -> NodeConfig {
    let mut config = NodeConfig::default_for_testing();
    if max_batch_size > 1 {
        config.pbft = config
            .pbft
            .with_max_batch_size(max_batch_size)
            .with_batch_delay(10);
    }
    config.pbft = config.pbft.with_auth_mode(auth_mode);
    config
}

/// Runs the scenario on the discrete-event simulator and returns the
/// per-node decided logs.
fn sim_decided(node_config: NodeConfig) -> Vec<Vec<(u64, Digest)>> {
    let mut config = ScenarioConfig {
        mode: Mode::Zugchain,
        n_nodes: N,
        bus_cycle_ms: 64,
        duration_ms: 12_000,
        workload: Workload::Scripted {
            payloads: payloads()
                .into_iter()
                .enumerate()
                .map(|(i, payload)| (1_000 + 1_000 * i as u64, payload))
                .collect(),
        },
        node_config,
        ..ScenarioConfig::default()
    };
    // Crash the initial primary at a quiescent point: payloads 0..3 are
    // decided, payload 3 (at t=4 s) is the first the new primary orders.
    config.faults.crash = Some((0, 3_500));
    run_scenario(&config, 77).decided
}

/// Drives a live cluster (threaded or TCP — same API) through the same
/// scenario in real time and returns the per-node decided logs.
macro_rules! live_decided {
    ($cluster:expr) => {{
        let cluster = $cluster;
        let mut decided: Vec<Vec<(u64, Digest)>> = vec![Vec::new(); N];
        let drain = |decided: &mut Vec<Vec<(u64, Digest)>>| {
            while let Ok(event) = cluster.events().try_recv() {
                if let ClusterEvent::Logged {
                    node, sn, digest, ..
                } = event
                {
                    decided[node.0 as usize].push((sn, digest));
                }
            }
        };
        for (i, payload) in payloads().into_iter().enumerate() {
            if i == CRASH_AT {
                cluster.crash(0);
                std::thread::sleep(Duration::from_millis(100));
            }
            cluster.feed_bus_payload_all(payload);
            // Wait until every live node decided this payload before
            // feeding the next one — the quiescence the sim script has by
            // construction.
            let target = i + 1;
            let alive: &[usize] = if i >= CRASH_AT {
                &[1, 2, 3]
            } else {
                &[0, 1, 2, 3]
            };
            let deadline = Instant::now() + Duration::from_secs(20);
            while Instant::now() < deadline {
                drain(&mut decided);
                if alive.iter().all(|&node| decided[node].len() >= target) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        std::thread::sleep(Duration::from_millis(200));
        drain(&mut decided);
        cluster.shutdown();
        decided
    }};
}

/// Asserts the invariants every runtime's decided logs must satisfy.
fn check_one_runtime(decided: &[Vec<(u64, Digest)>], runtime: &str) {
    let expected: Vec<Digest> = payloads().iter().map(|p| Digest::of(p)).collect();
    // The crashed node decided exactly the pre-crash prefix.
    assert_eq!(
        decided[0].len(),
        CRASH_AT,
        "{runtime}: node 0 decided up to the crash"
    );
    for node in 1..N {
        let digests: Vec<Digest> = decided[node].iter().map(|(_, d)| *d).collect();
        assert_eq!(
            digests, expected,
            "{runtime}: node {node} decided all payloads in script order"
        );
        // Never double-proposed: no digest decided twice, and sequence
        // numbers strictly increase even across the view change.
        let sns: Vec<u64> = decided[node].iter().map(|(sn, _)| *sn).collect();
        assert!(
            sns.windows(2).all(|w| w[0] < w[1]),
            "{runtime}: node {node} sns strictly increase: {sns:?}"
        );
        assert_eq!(
            decided[node], decided[1],
            "{runtime}: node {node} agrees with node 1"
        );
    }
    assert_eq!(
        decided[0][..],
        decided[1][..CRASH_AT],
        "{runtime}: crashed node's prefix agrees"
    );
}

#[test]
fn all_three_runtimes_decide_the_identical_sequence() {
    let sim = sim_decided(node_config(1, AuthMode::Sig));
    check_one_runtime(&sim, "sim");

    let threaded = live_decided!(ThreadedCluster::start(N, node_config(1, AuthMode::Sig)));
    check_one_runtime(&threaded, "threaded");

    let tcp =
        live_decided!(TcpCluster::start(N, node_config(1, AuthMode::Sig))
            .expect("loopback sockets available"));
    check_one_runtime(&tcp, "tcp");

    // The tentpole claim: one driver, one behaviour. The full (sn,
    // digest) logs — not just the payload sets — line up across the
    // simulator, the threaded runtime, and real sockets.
    assert_eq!(sim, threaded, "sim and threaded decided identically");
    assert_eq!(threaded, tcp, "threaded and tcp decided identically");
}

/// The same scenario with consensus batching on (`max_batch_size` 16).
/// The quiescent script makes every batch a singleton flushed by the
/// batch timer, so the per-request decided logs must be bit-identical
/// across the three runtimes AND identical to the unbatched run —
/// batching changes when agreement happens, never what is agreed.
#[test]
fn batched_runtimes_decide_the_identical_per_request_sequence() {
    let sim_unbatched = sim_decided(node_config(1, AuthMode::Sig));
    let sim = sim_decided(node_config(16, AuthMode::Sig));
    check_one_runtime(&sim, "sim/batch16");
    assert_eq!(
        sim, sim_unbatched,
        "batch size must not change the decided log"
    );

    let threaded = live_decided!(ThreadedCluster::start(N, node_config(16, AuthMode::Sig)));
    check_one_runtime(&threaded, "threaded/batch16");

    let tcp =
        live_decided!(TcpCluster::start(N, node_config(16, AuthMode::Sig))
            .expect("loopback sockets available"));
    check_one_runtime(&tcp, "tcp/batch16");

    assert_eq!(sim, threaded, "sim and threaded decided identically");
    assert_eq!(threaded, tcp, "threaded and tcp decided identically");
}

/// The equivalence half of the authentication fast path's contract: the
/// crash-and-view-change scenario, at batch size 1 and 16, decides
/// **bit-identical** per-request `(sn, digest)` logs whether ordering
/// traffic is signature-authenticated or MAC-authenticated — on the
/// deterministic simulator and on both live runtimes. Authentication is
/// transport dressing; it must never reach the decided log.
#[test]
fn auth_mode_is_invisible_in_the_decided_logs() {
    for batch in [1usize, 16] {
        let sig = sim_decided(node_config(batch, AuthMode::Sig));
        let mac = sim_decided(node_config(batch, AuthMode::MacWithSigFallback));
        check_one_runtime(&mac, &format!("sim/mac/batch{batch}"));
        assert_eq!(
            sig, mac,
            "batch {batch}: sim decided logs must not depend on the auth mode"
        );

        let threaded = live_decided!(ThreadedCluster::start(
            N,
            node_config(batch, AuthMode::MacWithSigFallback)
        ));
        check_one_runtime(&threaded, &format!("threaded/mac/batch{batch}"));

        let tcp = live_decided!(TcpCluster::start(
            N,
            node_config(batch, AuthMode::MacWithSigFallback)
        )
        .expect("loopback sockets available"));
        check_one_runtime(&tcp, &format!("tcp/mac/batch{batch}"));

        assert_eq!(
            mac, threaded,
            "batch {batch}: sim and threaded agree under MACs"
        );
        assert_eq!(
            threaded, tcp,
            "batch {batch}: threaded and tcp agree under MACs"
        );
    }
}

/// The communication-mode half of the collector fast path's contract:
/// the crash-and-view-change scenario, at batch size 1 and 16, decides
/// **bit-identical** per-request `(sn, digest)` logs whether votes flow
/// all-to-all or through the per-slot collector — on the deterministic
/// simulator and on both live runtimes. How votes travel is transport
/// topology; it must never reach the decided log. (The scripted crash
/// of node 0 doubles as fallback coverage: node 0 is the collector for
/// every fourth slot, so post-crash slots it would have collected only
/// decide via the fallback timers.)
#[test]
fn comm_mode_is_invisible_in_the_decided_logs() {
    use zugchain_pbft::CommMode;
    let collector_config = |batch: usize| {
        let mut config = node_config(batch, AuthMode::Sig);
        config.pbft = config.pbft.with_comm_mode(CommMode::Collector);
        config
    };
    for batch in [1usize, 16] {
        let all_to_all = sim_decided(node_config(batch, AuthMode::Sig));
        let collector = sim_decided(collector_config(batch));
        check_one_runtime(&collector, &format!("sim/collector/batch{batch}"));
        assert_eq!(
            all_to_all, collector,
            "batch {batch}: sim decided logs must not depend on the comm mode"
        );

        let threaded = live_decided!(ThreadedCluster::start(N, collector_config(batch)));
        check_one_runtime(&threaded, &format!("threaded/collector/batch{batch}"));

        let tcp = live_decided!(
            TcpCluster::start(N, collector_config(batch)).expect("loopback sockets available")
        );
        check_one_runtime(&tcp, &format!("tcp/collector/batch{batch}"));

        assert_eq!(
            collector, threaded,
            "batch {batch}: sim and threaded agree in collector mode"
        );
        assert_eq!(
            threaded, tcp,
            "batch {batch}: threaded and tcp agree in collector mode"
        );
    }
}

/// Dedicated collector-crash fallback scenario: crash node 2 — never
/// the primary, but the collector for every fourth slot — mid-script.
/// Slots it would have collected can only decide via the per-phase
/// fallback timers degrading to all-to-all, and the surviving nodes'
/// decided logs must still be bit-identical to an all-to-all run under
/// the same crash.
#[test]
fn crashed_collector_slots_decide_identically_to_all_to_all() {
    use zugchain_pbft::CommMode;
    let run = |comm_mode: CommMode| {
        let mut node_config = node_config(1, AuthMode::Sig);
        node_config.pbft = node_config.pbft.with_comm_mode(comm_mode);
        let mut config = ScenarioConfig {
            mode: Mode::Zugchain,
            n_nodes: N,
            bus_cycle_ms: 64,
            duration_ms: 12_000,
            workload: Workload::Scripted {
                payloads: payloads()
                    .into_iter()
                    .enumerate()
                    .map(|(i, payload)| (1_000 + 1_000 * i as u64, payload))
                    .collect(),
            },
            node_config,
            ..ScenarioConfig::default()
        };
        // sn 2 (node 2's collector slot) decides before the crash; sn 6
        // after it, so the prepare and commit fallback timers carry it.
        config.faults.crash = Some((2, 2_500));
        run_scenario(&config, 77).decided
    };
    let all_to_all = run(CommMode::AllToAll);
    let collector = run(CommMode::Collector);
    let expected: Vec<Digest> = payloads().iter().map(|p| Digest::of(p)).collect();
    for node in [0usize, 1, 3] {
        let digests: Vec<Digest> = collector[node].iter().map(|(_, d)| *d).collect();
        assert_eq!(
            digests, expected,
            "node {node} decided the full script despite the dead collector"
        );
        assert_eq!(
            collector[node], all_to_all[node],
            "node {node}: collector-mode log matches all-to-all under the same crash"
        );
    }
}

/// A mixed-mode group: replicas 0 and 2 authenticate with signatures
/// only, replicas 1 and 3 speak session MACs (with the embedded
/// signature fallback). Receivers accept either form, so the group must
/// order a request stream exactly as a uniform group would — and the
/// MAC fast path must actually fire on the nodes receiving MAC traffic.
#[test]
fn mixed_mode_group_orders_identically() {
    use zugchain_crypto::Keystore;
    use zugchain_machine::Effect;
    use zugchain_pbft::{Config, NodeId, ProposedRequest, Replica, ReplicaEvent};

    let modes = [
        AuthMode::Sig,
        AuthMode::MacWithSigFallback,
        AuthMode::Sig,
        AuthMode::MacWithSigFallback,
    ];
    let (pairs, keystore) = Keystore::generate(N, 21);
    let mut replicas: Vec<Replica> = pairs
        .into_iter()
        .enumerate()
        .map(|(id, key)| {
            let config = Config::new(N).unwrap().with_auth_mode(modes[id]);
            Replica::new(NodeId(id as u64), config, key, keystore.clone())
        })
        .collect();

    let requests = 24usize;
    let mut logs: Vec<Vec<(u64, Digest)>> = vec![Vec::new(); N];
    for tag in 0..requests {
        let mut payload = vec![0u8; 64];
        payload[..8].copy_from_slice(&(tag as u64).to_le_bytes());
        replicas[0].propose(ProposedRequest::application(payload, NodeId(0)));
    }
    loop {
        let mut traffic = Vec::new();
        for (node, replica) in replicas.iter_mut().enumerate() {
            for effect in replica.drain_effects() {
                match effect {
                    Effect::Broadcast { message } => traffic.push(message),
                    Effect::Output(ReplicaEvent::Decide { sn, request }) => {
                        logs[node].push((sn, request.payload_digest()));
                    }
                    _ => {}
                }
            }
        }
        if traffic.is_empty() {
            break;
        }
        for message in traffic {
            for replica in replicas.iter_mut() {
                replica.on_message(message.clone());
            }
        }
    }

    for node in 0..N {
        assert_eq!(
            logs[node].len(),
            requests,
            "node {node} decided every request"
        );
        assert_eq!(logs[node], logs[0], "node {node} agrees with node 0");
    }
    // The fast path really fired: every replica received MAC-tagged
    // traffic from replicas 1 and 3 (commits at least), regardless of
    // its own sending mode.
    for (node, replica) in replicas.iter().enumerate() {
        assert!(
            replica.stats().auth_mac_hits > 0,
            "node {node} verified MAC-tagged messages on the fast path"
        );
        assert_eq!(
            replica.stats().invalid_signatures,
            0,
            "node {node} rejected nothing in a fault-free mixed-mode run"
        );
    }
}

/// Crash the primary *mid-batch*: a burst of eight payloads lands in the
/// primary's backlog (batch size 16, 96 ms flush delay) and the primary
/// dies before its flush timer fires. The view change must hand the
/// burst to the new primary, which proposes it as one batch; a second
/// burst after the view change checks ordering continues. Every payload
/// is decided exactly once on every survivor, batched or not, and both
/// runs decide the same requests in the same order.
#[test]
fn mid_batch_crash_and_view_change_decide_the_burst_exactly_once() {
    let bursts: Vec<(u64, Vec<u8>)> = (0..8u8)
        .map(|i| (1_000, vec![0xB0 + i; 80]))
        .chain((0..4u8).map(|i| (6_000, vec![0xC0 + i; 80])))
        .collect();
    let run = |node_config: NodeConfig| {
        let mut config = ScenarioConfig {
            mode: Mode::Zugchain,
            n_nodes: N,
            bus_cycle_ms: 64,
            duration_ms: 12_000,
            workload: Workload::Scripted {
                payloads: bursts.clone(),
            },
            node_config,
            ..ScenarioConfig::default()
        };
        // The burst is delivered at the 1 024 ms bus cycle; with a 96 ms
        // flush delay the batch would propose at ~1 120 ms, but the
        // primary crashes at the 1 088 ms cycle — the batch still open.
        config.faults.crash = Some((0, 1_030));
        run_scenario(&config, 41)
    };

    let mut batched_config = node_config(1, AuthMode::Sig);
    batched_config.pbft = batched_config
        .pbft
        .with_max_batch_size(16)
        .with_batch_delay(96);
    let batched = run(batched_config);
    let unbatched = run(NodeConfig::default_for_testing());

    let expected: std::collections::BTreeSet<Digest> =
        bursts.iter().map(|(_, p)| Digest::of(p)).collect();
    for (metrics, name) in [(&batched, "batch16"), (&unbatched, "batch1")] {
        assert!(
            metrics.view_changes >= 1,
            "{name}: the crash deposes the primary"
        );
        for node in 1..N {
            let digests: Vec<Digest> = metrics.decided[node].iter().map(|(_, d)| *d).collect();
            let unique: std::collections::BTreeSet<Digest> = digests.iter().copied().collect();
            assert_eq!(
                unique.len(),
                digests.len(),
                "{name}: node {node} decided no digest twice"
            );
            assert_eq!(
                unique, expected,
                "{name}: node {node} decided every burst payload"
            );
            assert_eq!(
                metrics.decided[node], metrics.decided[1],
                "{name}: node {node} agrees with node 1"
            );
        }
    }
    // The batched run really agreed in multi-request batches. (The
    // *relative order* of the burst can differ between the two runs: it
    // is fixed by the order the new primary's backlog was filled in, not
    // by the batch size — the protocol's promise is agreement,
    // completeness and exactly-once, all asserted above.)
    assert!(
        batched.mean_batch_occupancy() > 2.0,
        "occupancy {}",
        batched.mean_batch_occupancy()
    );
}

/// Soft timeouts fire on every request here (the primary's preprepares
/// are delayed past the soft timeout), so each request's timer is armed,
/// fired or cancelled, and re-armed repeatedly while ordering catches
/// up. With the generation handling unified in the driver, a
/// cancelled-then-refired soft timeout must never double-propose: every
/// payload is decided exactly once on every node, with no spurious view
/// change.
#[test]
fn cancelled_then_refired_soft_timeouts_never_double_propose() {
    let mut config = ScenarioConfig {
        mode: Mode::Zugchain,
        n_nodes: N,
        bus_cycle_ms: 64,
        duration_ms: 8_000,
        workload: Workload::SyntheticPayload { bytes: 256 },
        ..ScenarioConfig::default()
    };
    // Delay between the soft and hard timeout (250/250 ms defaults):
    // every request's soft timer fires and forwards, then the delayed
    // preprepare lands and cancels the hard timer.
    config.faults.primary_preprepare_delay_ms = Some(300);
    let metrics = run_scenario(&config, 99);

    assert_eq!(metrics.view_changes, 0, "soft timeouts alone never depose");
    assert!(metrics.logged_requests > 50, "ordering kept up");
    for (node, decided) in metrics.decided.iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        for (sn, digest) in decided {
            assert!(
                seen.insert(*digest),
                "node {node} decided digest twice (sn {sn})"
            );
        }
    }
}

/// The same no-double-propose property on a live runtime: crash the
/// primary with a request in flight, so the backups' soft and hard
/// timers fire, get cancelled by the view change, and are re-armed for
/// the re-proposal. The request must still be decided exactly once.
#[test]
fn live_runtime_decides_in_flight_request_exactly_once_across_view_change() {
    let cluster = ThreadedCluster::start(N, NodeConfig::default_for_testing());
    // A quiet payload first, so the cluster is warm.
    cluster.feed_bus_payload_all(vec![0xA0; 64]);
    std::thread::sleep(Duration::from_millis(150));
    // Crash the primary, then immediately feed: the request is in flight
    // with no primary, so every backup's soft timer fires, then the hard
    // timer, then the view change re-proposes it.
    cluster.crash(0);
    cluster.feed_bus_payload_all(vec![0xA1; 64]);

    let deadline = Instant::now() + Duration::from_secs(20);
    let mut decided: Vec<Vec<(u64, Digest)>> = vec![Vec::new(); N];
    while Instant::now() < deadline {
        while let Ok(event) = cluster.events().try_recv() {
            if let ClusterEvent::Logged {
                node, sn, digest, ..
            } = event
            {
                decided[node.0 as usize].push((sn, digest));
            }
        }
        if (1..N).all(|node| decided[node].len() >= 2) {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // Extra settle time: a buggy stale-timer path would re-propose now.
    std::thread::sleep(Duration::from_millis(400));
    while let Ok(event) = cluster.events().try_recv() {
        if let ClusterEvent::Logged {
            node, sn, digest, ..
        } = event
        {
            decided[node.0 as usize].push((sn, digest));
        }
    }
    cluster.shutdown();

    let in_flight = Digest::of(&[0xA1; 64]);
    for node in 1..N {
        let times = decided[node]
            .iter()
            .filter(|(_, digest)| *digest == in_flight)
            .count();
        assert_eq!(times, 1, "node {node} decided the in-flight request once");
        assert_eq!(decided[node], decided[1], "node {node} agrees with node 1");
    }
}
