//! The full juridical chain of custody, end to end: a live cluster logs
//! a scripted emergency-braking incident (with a backup crash mid-run),
//! an export round moves the checkpoint-certified blocks into a
//! data-center archive on disk, an indexed time-range query reconstructs
//! the incident timeline, and an audit bundle for the braking block
//! verifies offline against the replica public keys alone — and fails
//! against every single-byte mutation.
//!
//! When `ZUGCHAIN_AUDIT_OUT` is set, the test additionally writes the
//! bundle (`.zab`) and the replica key file so the CI `archive-smoke`
//! job can re-verify them with the standalone `zugchain-audit` binary.

use zugchain::NodeConfig;
use zugchain_archive::{keyfile, Archive, AuditBundle};
use zugchain_crypto::Keystore;
use zugchain_export::{
    DataCenter, DcAddr, DcConfig, DcEffect, DcId, ExportReplica, ReplicaExportConfig,
};
use zugchain_mvb::PortAddress;
use zugchain_pbft::NodeId;
use zugchain_signals::analysis::Finding;
use zugchain_signals::{Request, SignalValue, TrainEvent};
use zugchain_sim::runtime::{ClusterEvent, ThreadedCluster};
use zugchain_wire::TrainId;

/// Scripted incident time of the emergency braking (train-clock ms).
const BRAKE_MS: u64 = 5_500;
/// Last speed sample before the braking, in centi-km/h.
const SPEED_BEFORE_BRAKE: u16 = 2_500;
const REPLICA_QUORUM: usize = 3;

fn signal_payload(cycle: u64, time_ms: u64, name: &str, value: SignalValue) -> Vec<u8> {
    zugchain_wire::to_bytes(&Request {
        cycle,
        time_ms,
        events: vec![TrainEvent {
            name: name.to_string(),
            port: PortAddress(0x42),
            cycle,
            time_ms,
            value,
        }],
    })
}

/// The scripted journey: acceleration, an ATP intervention, emergency
/// braking at [`BRAKE_MS`], deceleration to standstill, doors released.
fn incident_script() -> Vec<(u64, &'static str, SignalValue)> {
    vec![
        (1_000, "v_actual", SignalValue::U16(2_200)),
        (2_000, "v_actual", SignalValue::U16(2_600)),
        (3_000, "v_actual", SignalValue::U16(3_000)),
        (4_000, "v_actual", SignalValue::U16(3_000)),
        (5_000, "v_actual", SignalValue::U16(2_800)),
        (5_300, "atp_intervention", SignalValue::Bool(true)),
        (5_400, "v_actual", SignalValue::U16(SPEED_BEFORE_BRAKE)),
        (BRAKE_MS, "emergency_brake", SignalValue::Bool(true)),
        (6_000, "v_actual", SignalValue::U16(1_200)),
        (7_000, "v_actual", SignalValue::U16(300)),
        (8_000, "v_actual", SignalValue::U16(0)),
        (9_000, "doors_released", SignalValue::Bool(true)),
    ]
}

/// Runs the cluster over the incident script (crashing backup 3 halfway
/// through) and returns the per-node chains, stable checkpoint proofs,
/// and replica keys.
fn record_incident() -> (
    Vec<zugchain_blockchain::ChainStore>,
    Vec<Vec<zugchain_pbft::CheckpointProof>>,
    Keystore,
    Vec<zugchain_crypto::KeyPair>,
) {
    let cluster = ThreadedCluster::start(4, NodeConfig::default_for_testing());
    let script = incident_script();
    let crash_after = script.len() / 2;
    for (i, (time_ms, name, value)) in script.into_iter().enumerate() {
        cluster.feed_bus_payload_all(signal_payload(i as u64 + 1, time_ms, name, value.clone()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        if i + 1 == crash_after {
            // f = 1: losing one backup must not stop the record.
            cluster.crash(3);
        }
    }

    // Wait (bounded) until the surviving majority has ordered every
    // scripted request: 12 requests at block size 3 → height 4.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut done = [false, false, false, true];
    while !done.iter().all(|d| *d) && std::time::Instant::now() < deadline {
        match cluster
            .events()
            .recv_timeout(std::time::Duration::from_millis(200))
        {
            Ok(ClusterEvent::BlockCreated { node, height, .. }) if height >= 4 => {
                done[node.0 as usize] = true;
            }
            _ => {}
        }
    }
    // Let the checkpoint round for the final block stabilize.
    std::thread::sleep(std::time::Duration::from_millis(400));

    let keystore = cluster.keystore.clone();
    let pairs = cluster.pairs.clone();
    let summaries = cluster.shutdown();
    let mut chains = Vec::new();
    let mut proofs = Vec::new();
    for summary in summaries {
        chains.push(summary.chain);
        proofs.push(summary.stable_proofs);
    }
    (chains, proofs, keystore, pairs)
}

/// Drives one synchronous export round and returns the certified
/// segments the data center queued for its archive.
fn export_round(
    chains: &mut [zugchain_blockchain::ChainStore],
    proofs: &[Vec<zugchain_pbft::CheckpointProof>],
    replica_keystore: &Keystore,
    pairs: &[zugchain_crypto::KeyPair],
) -> Vec<zugchain_export::CertifiedSegment> {
    let (dc_pairs, dc_keystore) = Keystore::generate(1, 7_000);
    let mut replicas: Vec<ExportReplica> = (0..4)
        .map(|id| {
            ExportReplica::new(
                NodeId(id as u64),
                pairs[id].clone(),
                dc_keystore.clone(),
                ReplicaExportConfig { delete_quorum: 1 },
            )
        })
        .collect();
    let mut dc = DataCenter::new(
        DcConfig {
            id: DcId(0),
            train: TrainId::DEFAULT,
            n_replicas: 4,
            replica_quorum: REPLICA_QUORUM,
            peers: vec![],
        },
        dc_pairs[0].clone(),
        replica_keystore.clone(),
        REPLICA_QUORUM,
    );

    let mut effects = dc.begin_export(NodeId(1));
    let mut exported = 0;
    while let Some(effect) = effects.pop() {
        match effect {
            DcEffect::Broadcast { message } => {
                for id in 0..4usize {
                    for reply in replicas[id].handle(message.clone(), &mut chains[id], &proofs[id])
                    {
                        effects.extend(dc.on_replica_message(NodeId(id as u64), reply));
                    }
                }
            }
            DcEffect::Send {
                to: DcAddr::Replica(to),
                message,
            } => {
                let id = to.0 as usize;
                for reply in replicas[id].handle(message, &mut chains[id], &proofs[id]) {
                    effects.extend(dc.on_replica_message(NodeId(id as u64), reply));
                }
            }
            DcEffect::Send {
                to: DcAddr::DataCenter(_),
                ..
            } => {}
            DcEffect::Output(outcome) => exported = outcome.exported_blocks,
            effect => panic!("unexpected effect {effect:?}"),
        }
    }
    assert!(exported >= 4, "export moved only {exported} blocks");
    assert!(dc.verify_archive());
    dc.drain_certified_segments()
}

#[test]
fn incident_is_archived_queried_and_court_verifiable() {
    let (mut chains, proofs, replica_keystore, pairs) = record_incident();
    assert!(
        chains[0].height() >= 4,
        "cluster stalled at height {}",
        chains[0].height()
    );
    let segments = export_round(&mut chains, &proofs, &replica_keystore, &pairs);
    assert!(!segments.is_empty(), "no certified segment was queued");

    // --- Ingest into a disk-backed archive. ---
    let dir = std::env::temp_dir().join(format!("zugchain-archive-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut archive, report) =
        Archive::open(&dir, replica_keystore.clone(), REPLICA_QUORUM).expect("open archive");
    assert_eq!(report.segments_recovered, 0);
    for segment in &segments {
        archive.ingest(segment).expect("certified segment ingests");
    }
    assert!(
        archive.request_count() >= incident_script().len(),
        "archive holds {} requests",
        archive.request_count()
    );

    // --- Indexed time-range query reconstructs the incident. ---
    let timeline = archive.timeline(4_900, 5_900);
    let brakings: Vec<&Finding> = timeline.emergency_brakings().collect();
    assert_eq!(brakings.len(), 1, "findings: {:?}", timeline.findings());
    assert_eq!(
        *brakings[0],
        Finding::EmergencyBraking {
            time_ms: BRAKE_MS,
            speed_ckmh: Some(SPEED_BEFORE_BRAKE),
        }
    );

    // --- The audit bundle for the braking block. ---
    let brake_height = archive
        .blocks()
        .find(|block| {
            block
                .requests
                .iter()
                .filter_map(|r| zugchain_wire::from_bytes::<Request>(&r.payload).ok())
                .any(|r| r.events.iter().any(|e| e.name == "emergency_brake"))
        })
        .map(zugchain_blockchain::Block::height)
        .expect("braking block is archived");
    let mut bundle = archive.audit_bundle(brake_height).expect("bundle built");

    // The court holds nothing but the replica public keys, rendered
    // through the plain-text key file a key ceremony would produce.
    let court_keystore =
        keyfile::parse_keys(&keyfile::keys_to_string(&replica_keystore)).expect("key file parses");
    let block = bundle
        .verify(&court_keystore, REPLICA_QUORUM)
        .expect("bundle verifies offline");
    assert_eq!(block.height(), brake_height);

    // A bare-quorum certificate (exactly 2f+1 signatures) must suffice —
    // and makes the mutation sweep below strict, because no signature is
    // spare.
    bundle.proof.signatures.truncate(REPLICA_QUORUM);
    bundle
        .verify(&court_keystore, REPLICA_QUORUM)
        .expect("bare-quorum bundle verifies");

    // --- Every single-byte mutation is rejected. ---
    let encoded = zugchain_wire::to_bytes(&bundle);
    for i in 0..encoded.len() {
        let mut tampered = encoded.clone();
        tampered[i] ^= 0x01;
        let verdict = zugchain_wire::from_bytes::<AuditBundle>(&tampered)
            .map_err(|_| ())
            .and_then(|b| b.verify(&court_keystore, REPLICA_QUORUM).map_err(|_| ()));
        assert!(
            verdict.is_err(),
            "flipping byte {i} of {} still verifies",
            encoded.len()
        );
    }

    // --- The archive survives a restart: same head, same answers. ---
    let head = archive.head();
    let count = archive.segment_count();
    drop(archive);
    let (reopened, report) =
        Archive::open(&dir, replica_keystore, REPLICA_QUORUM).expect("reopen archive");
    assert_eq!(report.segments_recovered, count);
    assert!(report.segments_discarded.is_empty());
    assert_eq!(reopened.head(), head);
    assert_eq!(
        reopened.timeline(4_900, 5_900).emergency_brakings().count(),
        1
    );

    // --- Export artifacts for the standalone auditor (CI smoke job). ---
    if let Ok(out) = std::env::var("ZUGCHAIN_AUDIT_OUT") {
        let out = std::path::PathBuf::from(out);
        std::fs::create_dir_all(&out).expect("create audit-out dir");
        bundle
            .write_to(&out.join("brake-block.zab"))
            .expect("write bundle");
        for extra in reopened.audit_bundles_in(0, 10_000) {
            let block = zugchain_wire::from_bytes::<zugchain_blockchain::Block>(&extra.block_bytes)
                .expect("archived block decodes");
            extra
                .write_to(&out.join(format!("block-{:04}.zab", block.height())))
                .expect("write bundle");
        }
        keyfile::write_keys(&out.join("replica-keys.txt"), &court_keystore)
            .expect("write key file");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
