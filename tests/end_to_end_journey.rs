//! End-to-end integration: a full synthetic train journey flows from the
//! simulated MVB through parsing, filtering, the ZugChain layer, PBFT,
//! and into identical blockchains on every node.

use zugchain::NodeConfig;
use zugchain_sim::runtime::{ClusterEvent, ThreadedCluster};
use zugchain_sim::{run_scenario, Mode, ScenarioConfig, Workload};

#[test]
fn simulated_journey_logs_consistently_on_all_nodes() {
    let config = ScenarioConfig {
        mode: Mode::Zugchain,
        duration_ms: 30_000,
        workload: Workload::JruSignals {
            generator_seed: 99,
            background_faults: true,
        },
        ..ScenarioConfig::default()
    };
    let metrics = run_scenario(&config, 123);
    // An accelerating train changes speed/odometer every cycle: most of
    // the ~469 cycles must be logged.
    assert!(
        metrics.logged_requests > 300,
        "logged {}",
        metrics.logged_requests
    );
    assert!(
        metrics.blocks_created >= 30,
        "blocks {}",
        metrics.blocks_created
    );
    assert_eq!(metrics.view_changes, 0, "no faults, no view changes");
    assert!(
        metrics.latency.mean_ms() < 50.0,
        "latency {}",
        metrics.latency.mean_ms()
    );
}

#[test]
fn synthetic_sweep_meets_jru_requirements() {
    // The §V-B requirement: 10 events/s stored within 500 ms.
    let config = ScenarioConfig {
        mode: Mode::Zugchain,
        duration_ms: 30_000,
        bus_cycle_ms: 64,
        workload: Workload::SyntheticPayload { bytes: 1024 },
        ..ScenarioConfig::default()
    };
    let metrics = run_scenario(&config, 7);
    assert!(metrics.events_per_second() > 10.0);
    assert!(metrics.latency.quantile_ms(0.99) < 500.0);
    assert!(
        metrics.cpu_percent_of_total < 25.0,
        "cpu {}",
        metrics.cpu_percent_of_total
    );
}

#[test]
fn threaded_cluster_builds_identical_chains() {
    // Paper-scale timeouts (250 ms soft/hard) so scheduling jitter under
    // a loaded test machine cannot trigger spurious view changes.
    let config = NodeConfig::evaluation_default().with_block_size(3);
    let cluster = ThreadedCluster::start(4, config);
    for tag in 0..9u8 {
        cluster.feed_bus_payload_all(vec![tag; 128]);
        std::thread::sleep(std::time::Duration::from_millis(25));
    }

    // Wait (bounded) until every node reported block #3.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut done = [false; 4];
    while !done.iter().all(|d| *d) && std::time::Instant::now() < deadline {
        match cluster
            .events()
            .recv_timeout(std::time::Duration::from_millis(200))
        {
            Ok(ClusterEvent::BlockCreated { node, height, .. }) if height >= 3 => {
                done[node.0 as usize] = true;
            }
            _ => {}
        }
    }
    let summaries = cluster.shutdown();
    let head = summaries[0].chain.head_hash();
    for summary in &summaries {
        assert_eq!(summary.chain.height(), 3, "node {}", summary.id.0);
        assert_eq!(summary.chain.head_hash(), head, "chains agree");
        assert!(zugchain_blockchain::verify_chain(summary.chain.blocks(), None).is_ok());
        // One checkpoint per block.
        assert_eq!(summary.stable_proofs.len(), 3);
    }
}

#[test]
fn diverging_bus_reception_loses_nothing() {
    let cluster = ThreadedCluster::start(4, NodeConfig::default_for_testing());
    // Three payloads, each seen by a different single node.
    cluster.feed_bus_payload(1, b"seen-by-1".to_vec());
    cluster.feed_bus_payload(2, b"seen-by-2".to_vec());
    cluster.feed_bus_payload(3, b"seen-by-3".to_vec());
    // Soft timeouts (50 ms in the test config) fire, requests get
    // broadcast and ordered.
    std::thread::sleep(std::time::Duration::from_millis(600));
    let summaries = cluster.shutdown();
    for summary in &summaries {
        assert_eq!(
            summary.stats.logged, 3,
            "node {} logged {}",
            summary.id.0, summary.stats.logged
        );
    }
}
