//! Property-based integration tests over the signal→request→block
//! pipeline: invariants that must hold for *any* bus traffic, not just
//! the scripted scenarios.

use proptest::prelude::*;
use zugchain_blockchain::{verify_chain, BlockBuilder, ChainStore, LoggedRequest};
use zugchain_crypto::Digest;
use zugchain_mvb::{Nsdb, PortAddress, Telegram};
use zugchain_signals::{CycleConsolidator, Request, SignalParser};

/// Strategy: an arbitrary telegram on one of the JRU ports (possibly with
/// a corrupted width) or an unconfigured port.
fn telegram_strategy() -> impl Strategy<Value = Telegram> {
    let ports = prop_oneof![
        Just(0x100u16),
        Just(0x102),
        Just(0x111),
        Just(0x112),
        Just(0x120),
        Just(0x130),
        0x300u16..0x400, // unconfigured
    ];
    (
        ports,
        proptest::collection::vec(any::<u8>(), 0..6),
        0u64..100,
    )
        .prop_map(|(port, payload, cycle)| {
            Telegram::new(PortAddress(port), cycle, cycle * 64, payload)
        })
}

proptest! {
    /// The parser never drops a telegram: everything on the bus becomes
    /// an event (decoded or raw).
    #[test]
    fn parser_is_total(telegrams in proptest::collection::vec(telegram_strategy(), 0..50)) {
        let parser = SignalParser::new(Nsdb::jru_default());
        for telegram in &telegrams {
            let (event, _) = parser.parse(telegram);
            prop_assert_eq!(event.port, telegram.port);
            prop_assert_eq!(event.cycle, telegram.cycle);
        }
    }

    /// Consolidation is deterministic: two nodes observing the same
    /// telegrams in the same order produce bit-identical requests.
    #[test]
    fn consolidation_is_deterministic(
        cycles in proptest::collection::vec(
            proptest::collection::vec(telegram_strategy(), 0..10), 1..10)
    ) {
        let mut node_a = CycleConsolidator::new(Nsdb::jru_default());
        let mut node_b = CycleConsolidator::new(Nsdb::jru_default());
        for (i, telegrams) in cycles.iter().enumerate() {
            let cycle = i as u64;
            let a = node_a.consolidate(cycle, cycle * 64, telegrams);
            let b = node_b.consolidate(cycle, cycle * 64, telegrams);
            prop_assert_eq!(&a, &b);
            if let (Some(a), Some(b)) = (a, b) {
                prop_assert_eq!(a.digest(), b.digest());
            }
        }
    }

    /// Requests survive the wire round-trip with identical digests —
    /// the property the content-based duplicate filter relies on.
    #[test]
    fn request_digest_is_stable_across_encoding(
        cycles in proptest::collection::vec(
            proptest::collection::vec(telegram_strategy(), 1..10), 1..5)
    ) {
        let mut consolidator = CycleConsolidator::new(Nsdb::jru_default());
        for (i, telegrams) in cycles.iter().enumerate() {
            let cycle = i as u64;
            if let Some(request) = consolidator.consolidate(cycle, cycle * 64, telegrams) {
                let bytes = zugchain_wire::to_bytes(&request);
                let back: Request = zugchain_wire::from_bytes(&bytes).unwrap();
                prop_assert_eq!(back.digest(), request.digest());
                prop_assert_eq!(Digest::of(&zugchain_wire::to_bytes(&back)), Digest::of(&bytes));
            }
        }
    }

    /// Any ordered request stream bundles into a chain that verifies, and
    /// tampering with any single payload byte breaks verification.
    #[test]
    fn chains_verify_and_detect_tampering(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..64), 4..40),
        flip_block in 0usize..8,
        flip_byte in 0usize..64,
    ) {
        let mut builder = BlockBuilder::new(4);
        let mut store = ChainStore::new();
        for (i, payload) in payloads.iter().enumerate() {
            if let Some(block) = builder.push(
                LoggedRequest { sn: i as u64 + 1, origin: (i % 4) as u64, payload: payload.clone() },
                i as u64 * 64,
            ) {
                store.append(block).unwrap();
            }
        }
        prop_assume!(!store.is_empty());
        prop_assert!(verify_chain(store.blocks(), None).is_ok());

        // Tamper with one byte of one payload.
        let mut tampered: Vec<_> = store.blocks().to_vec();
        let block = flip_block % tampered.len();
        let request = flip_byte % tampered[block].requests.len();
        let payload = &mut tampered[block].requests[request].payload;
        let byte = flip_byte % payload.len();
        payload[byte] ^= 0x01;
        prop_assert!(verify_chain(&tampered, None).is_err());
    }

    /// The on-change filter is sound: it only ever suppresses an event
    /// whose value equals the last logged value on that port.
    #[test]
    fn filter_suppression_is_sound(
        cycles in proptest::collection::vec(
            proptest::collection::vec(telegram_strategy(), 1..8), 1..20)
    ) {
        use std::collections::HashMap;
        let parser = SignalParser::new(Nsdb::jru_default());
        let mut consolidator = CycleConsolidator::new(Nsdb::jru_default());
        let mut last_logged: HashMap<PortAddress, zugchain_signals::SignalValue> = HashMap::new();

        for (i, telegrams) in cycles.iter().enumerate() {
            let cycle = i as u64;
            let admitted = consolidator
                .consolidate(cycle, cycle * 64, telegrams)
                .map(|r| r.events)
                .unwrap_or_default();
            let mut admitted_iter = admitted.iter().peekable();
            for telegram in telegrams {
                let (event, _) = parser.parse(telegram);
                let was_admitted = admitted_iter
                    .peek()
                    .is_some_and(|e| e.port == event.port && e.value == event.value);
                if was_admitted {
                    admitted_iter.next();
                    last_logged.insert(event.port, event.value);
                } else {
                    // Suppressed: must equal the last logged value.
                    prop_assert_eq!(
                        last_logged.get(&event.port),
                        Some(&event.value),
                        "suppressed a changed value on {}", event.port
                    );
                }
            }
        }
    }
}
