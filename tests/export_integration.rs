//! Integration of ordering and export: blocks produced by a live cluster
//! are exported to multiple data centers, verified, synchronized, and
//! pruned from the nodes with signed acknowledgements.

use zugchain::NodeConfig;
use zugchain_crypto::Keystore;
use zugchain_export::{
    DataCenter, DcAddr, DcConfig, DcEffect, DcId, ExportMessage, ExportReplica, ReplicaExportConfig,
};
use zugchain_pbft::NodeId;
use zugchain_sim::runtime::ThreadedCluster;
use zugchain_wire::TrainId;

/// Runs a small cluster, returns per-node `(chain, proofs)` plus the
/// replica keystore and key pairs.
fn produce_blocks() -> (
    Vec<zugchain_blockchain::ChainStore>,
    Vec<Vec<zugchain_pbft::CheckpointProof>>,
    Keystore,
    Vec<zugchain_crypto::KeyPair>,
) {
    let cluster = ThreadedCluster::start(4, NodeConfig::default_for_testing());
    for tag in 0..12u8 {
        cluster.feed_bus_payload_all(vec![tag; 100]);
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    std::thread::sleep(std::time::Duration::from_millis(500));
    let keystore = cluster.keystore.clone();
    let pairs = cluster.pairs.clone();
    let summaries = cluster.shutdown();
    let mut chains = Vec::new();
    let mut proofs = Vec::new();
    for summary in summaries {
        chains.push(summary.chain);
        proofs.push(summary.stable_proofs);
    }
    (chains, proofs, keystore, pairs)
}

#[test]
fn full_export_round_against_live_chains() {
    let (mut chains, proofs, replica_keystore, pairs) = produce_blocks();
    assert!(chains[0].height() >= 3, "cluster produced blocks");

    // Two company data centers.
    let (dc_pairs, dc_keystore) = Keystore::generate(2, 7_000);
    let mut replicas: Vec<ExportReplica> = (0..4)
        .map(|id| {
            ExportReplica::new(
                NodeId(id as u64),
                pairs[id].clone(),
                dc_keystore.clone(),
                ReplicaExportConfig { delete_quorum: 2 },
            )
        })
        .collect();
    let mut dc0 = DataCenter::new(
        DcConfig {
            id: DcId(0),
            train: TrainId::DEFAULT,
            n_replicas: 4,
            replica_quorum: 3,
            peers: vec![DcId(1)],
        },
        dc_pairs[0].clone(),
        replica_keystore.clone(),
        3,
    );
    let mut dc1 = DataCenter::new(
        DcConfig {
            id: DcId(1),
            train: TrainId::DEFAULT,
            n_replicas: 4,
            replica_quorum: 3,
            peers: vec![DcId(0)],
        },
        dc_pairs[1].clone(),
        replica_keystore,
        3,
    );

    // Route DC effects against the replicas synchronously.
    let mut effects = dc0.begin_export(NodeId(2));
    let mut delete_acks = 0;
    while let Some(effect) = effects.pop() {
        match effect {
            DcEffect::Broadcast { message } => {
                for id in 0..4usize {
                    for reply in replicas[id].handle(message.clone(), &mut chains[id], &proofs[id])
                    {
                        if matches!(reply, ExportMessage::Ack(_)) {
                            delete_acks += 1;
                            dc0.on_replica_message(NodeId(id as u64), reply.clone());
                            dc1.on_replica_message(NodeId(id as u64), reply);
                        } else {
                            effects.extend(dc0.on_replica_message(NodeId(id as u64), reply));
                        }
                    }
                }
            }
            DcEffect::Send {
                to: DcAddr::Replica(to),
                message,
            } => {
                let id = to.0 as usize;
                for reply in replicas[id].handle(message, &mut chains[id], &proofs[id]) {
                    effects.extend(dc0.on_replica_message(NodeId(id as u64), reply));
                }
            }
            DcEffect::Send {
                to: DcAddr::DataCenter(to),
                message,
            } => {
                assert_eq!(to, DcId(1));
                // dc1 verifies the sync and contributes its own signed
                // delete — required for the replicas' quorum of 2.
                effects.extend(dc1.on_dc_sync(message));
            }
            DcEffect::Output(outcome) => {
                assert!(outcome.exported_blocks >= 3);
                assert!(outcome.delete_issued);
            }
            effect => panic!("unexpected effect {effect:?}"),
        }
    }

    // Every replica pruned and acknowledged; both DCs hold verified,
    // identical archives.
    assert_eq!(delete_acks, 4);
    assert!(dc0.verify_archive());
    assert!(dc1.verify_archive());
    assert_eq!(dc0.archive_height(), dc1.archive_height());
    for (id, chain) in chains.iter().enumerate() {
        assert!(
            chain.len() <= 1,
            "replica {id} kept {} blocks after pruning",
            chain.len()
        );
        assert!(
            chain.pruned_base().is_some(),
            "replica {id} has a prune proof"
        );
    }
    assert_eq!(
        dc0.acks_for(
            dc0.archive_height(),
            dc0.archive()[dc0.archive().len() - 1].hash()
        ),
        4
    );
}

#[test]
fn second_export_continues_from_pruned_chains() {
    let (mut chains, proofs, replica_keystore, pairs) = produce_blocks();
    let (dc_pairs, dc_keystore) = Keystore::generate(2, 7_000);
    let mut replicas: Vec<ExportReplica> = (0..4)
        .map(|id| {
            ExportReplica::new(
                NodeId(id as u64),
                pairs[id].clone(),
                dc_keystore.clone(),
                ReplicaExportConfig { delete_quorum: 1 },
            )
        })
        .collect();
    let mut dc = DataCenter::new(
        DcConfig {
            id: DcId(0),
            train: TrainId::DEFAULT,
            n_replicas: 4,
            replica_quorum: 3,
            peers: vec![],
        },
        dc_pairs[0].clone(),
        replica_keystore,
        3,
    );

    // Round 1.
    let round = |dc: &mut DataCenter,
                 replicas: &mut Vec<ExportReplica>,
                 chains: &mut Vec<zugchain_blockchain::ChainStore>| {
        let mut effects = dc.begin_export(NodeId(1));
        let mut exported = 0;
        while let Some(effect) = effects.pop() {
            match effect {
                DcEffect::Broadcast { message } => {
                    for id in 0..4usize {
                        for reply in
                            replicas[id].handle(message.clone(), &mut chains[id], &proofs[id])
                        {
                            effects.extend(dc.on_replica_message(NodeId(id as u64), reply));
                        }
                    }
                }
                DcEffect::Send {
                    to: DcAddr::Replica(to),
                    message,
                } => {
                    let id = to.0 as usize;
                    for reply in replicas[id].handle(message, &mut chains[id], &proofs[id]) {
                        effects.extend(dc.on_replica_message(NodeId(id as u64), reply));
                    }
                }
                DcEffect::Send {
                    to: DcAddr::DataCenter(_),
                    ..
                } => {}
                DcEffect::Output(outcome) => exported = outcome.exported_blocks,
                effect => panic!("unexpected effect {effect:?}"),
            }
        }
        exported
    };

    let first = round(&mut dc, &mut replicas, &mut chains);
    assert!(first >= 3);
    let height_after_first = dc.archive_height();

    // Nothing new: the second export round is empty but must not fail or
    // re-export old blocks.
    let second = round(&mut dc, &mut replicas, &mut chains);
    assert_eq!(second, 0);
    assert_eq!(dc.archive_height(), height_after_first);
    assert!(dc.verify_archive());
}
