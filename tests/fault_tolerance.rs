//! Fault-tolerance integration: the behaviours §III-B/§V-B promise under
//! crashes and Byzantine behaviour, exercised through the deterministic
//! simulator.

use zugchain_sim::{run_scenario, Mode, ScenarioConfig, Workload};

fn base(mode: Mode) -> ScenarioConfig {
    ScenarioConfig {
        mode,
        duration_ms: 20_000,
        bus_cycle_ms: 64,
        workload: Workload::SyntheticPayload { bytes: 512 },
        ..ScenarioConfig::default()
    }
}

#[test]
fn primary_crash_recovers_within_the_timeout_budget() {
    let mut config = base(Mode::Zugchain);
    config.faults.crash = Some((0, 5_000));
    let metrics = run_scenario(&config, 21);
    assert!(metrics.view_changes >= 1, "view change happened");

    // Requests born just after the crash pay the soft+hard timeout and
    // the view change (≤ ~1 s); afterwards latency returns to normal.
    let worst_during = metrics
        .latency
        .samples
        .iter()
        .filter(|(birth, _)| (5_000.0..6_500.0).contains(birth))
        .map(|(_, l)| *l)
        .fold(0.0, f64::max);
    assert!(
        (300.0..3_000.0).contains(&worst_during),
        "crash-window latency {worst_during}"
    );

    let after: Vec<f64> = metrics
        .latency
        .samples
        .iter()
        .filter(|(birth, _)| *birth > 8_000.0)
        .map(|(_, l)| *l)
        .collect();
    assert!(!after.is_empty(), "ordering resumed after the view change");
    let mean_after = after.iter().sum::<f64>() / after.len() as f64;
    assert!(mean_after < 60.0, "stabilized at {mean_after} ms");
}

#[test]
fn backup_crash_is_harmless() {
    let mut config = base(Mode::Zugchain);
    config.faults.crash = Some((3, 5_000));
    let metrics = run_scenario(&config, 22);
    assert_eq!(metrics.view_changes, 0, "no view change for a dead backup");
    assert_eq!(metrics.unlogged_requests, 0, "nothing is lost");
}

#[test]
fn fabrication_at_full_rate_stays_within_bounds() {
    // Fig. 9: even at 100 % fabrication the system keeps ordering within
    // JRU bounds thanks to the per-origin rate limit.
    let mut config = base(Mode::Zugchain);
    config.faults.fabricate = Some((3, 1.0));
    let metrics = run_scenario(&config, 23);
    let clean = run_scenario(&base(Mode::Zugchain), 23);
    assert!(metrics.latency.mean_ms() < 500.0, "within JRU bounds");
    assert!(metrics.latency.mean_ms() > clean.latency.mean_ms());
    // Legit requests are still all logged.
    assert!(metrics.logged_requests >= clean.logged_requests);
}

#[test]
fn preprepare_delay_stalls_but_never_escalates() {
    let mut config = base(Mode::Zugchain);
    config.faults.primary_preprepare_delay_ms = Some(200);
    // Keep the delay below the soft timeout: stalling, not suspicion.
    config.node_config = config.node_config.with_timeouts(250, 250);
    let metrics = run_scenario(&config, 24);
    assert_eq!(metrics.view_changes, 0);
    assert!(metrics.latency.mean_ms() > 150.0);
    assert_eq!(metrics.unlogged_requests, 0);
}

#[test]
fn preprepare_delay_beyond_hard_timeout_changes_view() {
    let mut config = base(Mode::Zugchain);
    // Delay longer than soft+hard: backups escalate.
    config.faults.primary_preprepare_delay_ms = Some(800);
    let metrics = run_scenario(&config, 25);
    assert!(metrics.view_changes >= 1);
}

#[test]
fn baseline_and_zugchain_survive_the_same_crash() {
    for mode in [Mode::Zugchain, Mode::Baseline] {
        let mut config = base(mode);
        config.faults.crash = Some((0, 5_000));
        let metrics = run_scenario(&config, 26);
        assert!(metrics.view_changes >= 1, "{mode:?}");
        let late_logged = metrics
            .latency
            .samples
            .iter()
            .filter(|(birth, _)| *birth > 10_000.0)
            .count();
        assert!(late_logged > 50, "{mode:?} kept ordering: {late_logged}");
    }
}

#[test]
fn deterministic_fault_runs_are_reproducible() {
    let mut config = base(Mode::Zugchain);
    config.faults.crash = Some((0, 4_000));
    config.faults.fabricate = Some((2, 0.5));
    let a = run_scenario(&config, 99);
    let b = run_scenario(&config, 99);
    assert_eq!(a.logged_requests, b.logged_requests);
    assert_eq!(a.view_changes, b.view_changes);
    assert_eq!(a.latency.samples, b.latency.samples);
}
