//! End-to-end causal-tracing acceptance: a deterministic simulation's
//! decided chain driven through export → archive → HTTP serving, with
//! the `/v1/trains/<id>/trace/<sn>` endpoint answering a complete,
//! monotonically-timestamped span lifecycle for every archived request.

use zugchain_sim::{run_traced_pipeline, Mode, ScenarioConfig, TracedPipelineOutcome, Workload};

/// The canonical stage order every served lifecycle must pass through.
const STAGE_ORDER: [&str; 10] = [
    "\"stage\":\"record\"",
    "\"stage\":\"submit\"",
    "\"stage\":\"batch_flush\"",
    "\"stage\":\"preprepare\"",
    "\"stage\":\"prepare\"",
    "\"stage\":\"commit\"",
    "\"stage\":\"decide\"",
    "\"stage\":\"export\"",
    "\"stage\":\"ingest\"",
    "\"stage\":\"servable\"",
];

fn quick() -> ScenarioConfig {
    ScenarioConfig {
        mode: Mode::Zugchain,
        duration_ms: 2_000,
        bus_cycle_ms: 64,
        workload: Workload::SyntheticPayload { bytes: 256 },
        ..ScenarioConfig::default()
    }
}

fn assert_complete(outcome: &TracedPipelineOutcome) {
    assert!(
        !outcome.archived_sns.is_empty(),
        "the pipeline must archive requests"
    );
    for (sn, status, body) in &outcome.trace_responses {
        assert_eq!(*status, 200, "sn {sn}: {body}");
        assert!(
            body.contains("\"chain\":\"Complete\""),
            "sn {sn} lifecycle incomplete: {body}"
        );
        // The assembled lifecycle lists the stages in canonical
        // pipeline order: each stage's first occurrence must come
        // after the previous stage's.
        let mut last = 0;
        for stage in STAGE_ORDER {
            let at = body[last..]
                .find(stage)
                .unwrap_or_else(|| panic!("sn {sn}: {stage} missing after offset {last}: {body}"));
            last += at;
        }
    }
}

#[test]
fn every_archived_request_serves_a_complete_span_chain() {
    let outcome = run_traced_pipeline(&quick(), 42);
    assert_complete(&outcome);
    assert_eq!(
        outcome.record_to_servable_count, outcome.archived_requests as u64,
        "record_to_servable must observe exactly one latency per archived request"
    );
    assert!(
        outcome
            .exposition
            .contains("zugchain_record_to_servable_ms_count"),
        "end-to-end histogram missing from the exposition"
    );
    assert!(
        outcome
            .exposition
            .contains("zugchain_stage_latency_ms_bucket"),
        "per-stage latency histograms missing from the exposition"
    );
}

#[test]
fn same_seed_runs_serve_identical_trace_bytes() {
    let a = run_traced_pipeline(&quick(), 77);
    let b = run_traced_pipeline(&quick(), 77);
    assert_complete(&a);
    assert_eq!(a.archived_sns, b.archived_sns);
    assert_eq!(
        a.trace_fingerprint(),
        b.trace_fingerprint(),
        "trace bodies must be byte-identical for a fixed (config, seed)"
    );
    assert_eq!(a.record_to_servable_count, b.record_to_servable_count);
}
