//! Integration of state transfer (paper §III-D scenario (ii)): a
//! recovering or lagging replica installs a transferred chain segment,
//! including the signed-delete anchoring of pruned bases, and continues
//! appending.

use zugchain_blockchain::{BlockBuilder, ChainStore, LoggedRequest};
use zugchain_crypto::Keystore;
use zugchain_export::{
    install_transfer, DcId, DeleteCmd, ExportReplica, ReplicaExportConfig, SignedDelete,
    TransferPackage,
};
use zugchain_pbft::{Checkpoint, CheckpointProof, Message, NodeId};

fn build_chain(n_blocks: u64) -> Vec<zugchain_blockchain::Block> {
    let mut builder = BlockBuilder::new(5);
    let mut blocks = Vec::new();
    for sn in 1..=n_blocks * 5 {
        if let Some(block) = builder.push(
            LoggedRequest {
                sn,
                origin: sn % 4,
                payload: vec![(sn % 251) as u8; 120],
            },
            sn * 64,
        ) {
            blocks.push(block);
        }
    }
    blocks
}

fn proof_for(
    block: &zugchain_blockchain::Block,
    pairs: &[zugchain_crypto::KeyPair],
) -> CheckpointProof {
    let checkpoint = Checkpoint {
        sn: block.header.last_sn,
        state_digest: block.hash(),
    };
    let message = zugchain_wire::to_bytes(&Message::Checkpoint(checkpoint));
    CheckpointProof {
        checkpoint,
        signatures: (0..3)
            .map(|id| (NodeId(id as u64), pairs[id].sign(&message)))
            .collect(),
    }
}

#[test]
fn recovered_replica_continues_the_chain_after_transfer() {
    let (pairs, keystore) = Keystore::generate(4, 900);
    let (_, dc_keystore) = Keystore::generate(2, 901);
    let blocks = build_chain(6);

    let package = TransferPackage {
        proof: proof_for(&blocks[5], &pairs),
        blocks: blocks.clone(),
        base_deletes: vec![],
    };
    let mut store = install_transfer(&package, &keystore, &dc_keystore, 3, 2).unwrap();
    assert_eq!(store.height(), 6);

    // The recovered replica keeps ordering: blocks append seamlessly.
    let mut builder = BlockBuilder::resume(5, store.height(), store.head_hash());
    for sn in 31..=35u64 {
        if let Some(block) = builder.push(
            LoggedRequest {
                sn,
                origin: 0,
                payload: vec![1; 64],
            },
            sn * 64,
        ) {
            store.append(block).unwrap();
        }
    }
    assert_eq!(store.height(), 7);
    assert!(zugchain_blockchain::verify_chain(store.blocks(), None).is_ok());
}

#[test]
fn transfer_after_pruning_round_trips_through_export_state() {
    let (pairs, keystore) = Keystore::generate(4, 902);
    let (dc_pairs, dc_keystore) = Keystore::generate(2, 903);
    let blocks = build_chain(8);

    // A healthy replica holds the full chain and prunes blocks 1..=4
    // after an export.
    let mut healthy = ChainStore::new();
    for block in &blocks {
        healthy.append(block.clone()).unwrap();
    }
    let mut export = ExportReplica::new(
        NodeId(0),
        pairs[0].clone(),
        dc_keystore.clone(),
        ReplicaExportConfig { delete_quorum: 2 },
    );
    let cmd = DeleteCmd {
        height: 4,
        hash: blocks[3].hash(),
    };
    let deletes: Vec<SignedDelete> = (0..2u64)
        .map(|dc| SignedDelete::sign(cmd, DcId(dc), &dc_pairs[dc as usize]))
        .collect();
    for delete in &deletes {
        export.process_delete(delete.clone(), &mut healthy);
    }
    assert_eq!(healthy.base().0, 4, "healthy replica pruned");

    // Transfer the healthy replica's (pruned) suffix to a recovering one,
    // anchored by the very deletes that authorized the prune.
    let package = TransferPackage {
        proof: proof_for(&blocks[7], &pairs),
        blocks: healthy.blocks().to_vec(),
        base_deletes: deletes,
    };
    let recovered = install_transfer(&package, &keystore, &dc_keystore, 3, 2).unwrap();
    assert_eq!(recovered.base(), healthy.base());
    assert_eq!(recovered.height(), healthy.height());
    assert_eq!(recovered.head_hash(), healthy.head_hash());
}

#[test]
fn transfer_rejects_chain_with_missing_middle_block() {
    let (pairs, keystore) = Keystore::generate(4, 904);
    let (_, dc_keystore) = Keystore::generate(2, 905);
    let blocks = build_chain(5);
    let mut holey = blocks.clone();
    holey.remove(2);
    let package = TransferPackage {
        proof: proof_for(&blocks[4], &pairs),
        blocks: holey,
        base_deletes: vec![],
    };
    assert!(install_transfer(&package, &keystore, &dc_keystore, 3, 2).is_err());
}

#[test]
fn emergency_header_retention_keeps_chain_verifiable() {
    let (pairs, _) = Keystore::generate(4, 906);
    let (_, dc_keystore) = Keystore::generate(2, 907);
    let blocks = build_chain(6);
    let mut store = ChainStore::new();
    for block in &blocks {
        store.append(block.clone()).unwrap();
    }
    let mut export = ExportReplica::new(
        NodeId(2),
        pairs[2].clone(),
        dc_keystore,
        ReplicaExportConfig::default(),
    );
    let record = export
        .emergency_reclaim(&mut store, 3)
        .expect("payloads reclaimed");
    assert_eq!(record.first_height, 1);
    assert_eq!(record.last_height, 3);
    // Headers remain: linkage from the stubs into the resident suffix is
    // intact, so a later analyst can still verify integrity.
    assert_eq!(store.header_stubs().len(), 3);
    assert_eq!(
        store.blocks()[0].header.prev_hash,
        store.header_stubs()[2].hash()
    );
    assert!(zugchain_blockchain::verify_chain(store.blocks(), None).is_ok());
    // The consensus record is non-empty and encodes the range.
    assert!(!record.to_payload().is_empty());
}
