/root/repo/target/release/deps/sha2-290a6fc68782f2d6.d: shims/sha2/src/lib.rs

/root/repo/target/release/deps/libsha2-290a6fc68782f2d6.rlib: shims/sha2/src/lib.rs

/root/repo/target/release/deps/libsha2-290a6fc68782f2d6.rmeta: shims/sha2/src/lib.rs

shims/sha2/src/lib.rs:
