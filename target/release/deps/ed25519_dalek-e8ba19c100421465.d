/root/repo/target/release/deps/ed25519_dalek-e8ba19c100421465.d: shims/ed25519-dalek/src/lib.rs

/root/repo/target/release/deps/libed25519_dalek-e8ba19c100421465.rlib: shims/ed25519-dalek/src/lib.rs

/root/repo/target/release/deps/libed25519_dalek-e8ba19c100421465.rmeta: shims/ed25519-dalek/src/lib.rs

shims/ed25519-dalek/src/lib.rs:
