/root/repo/target/release/deps/zugchain_machine-272a0e530a4c4c77.d: crates/machine/src/lib.rs

/root/repo/target/release/deps/libzugchain_machine-272a0e530a4c4c77.rlib: crates/machine/src/lib.rs

/root/repo/target/release/deps/libzugchain_machine-272a0e530a4c4c77.rmeta: crates/machine/src/lib.rs

crates/machine/src/lib.rs:
