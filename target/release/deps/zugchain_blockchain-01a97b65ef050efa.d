/root/repo/target/release/deps/zugchain_blockchain-01a97b65ef050efa.d: crates/blockchain/src/lib.rs crates/blockchain/src/block.rs crates/blockchain/src/builder.rs crates/blockchain/src/disk.rs crates/blockchain/src/store.rs crates/blockchain/src/verify.rs

/root/repo/target/release/deps/libzugchain_blockchain-01a97b65ef050efa.rlib: crates/blockchain/src/lib.rs crates/blockchain/src/block.rs crates/blockchain/src/builder.rs crates/blockchain/src/disk.rs crates/blockchain/src/store.rs crates/blockchain/src/verify.rs

/root/repo/target/release/deps/libzugchain_blockchain-01a97b65ef050efa.rmeta: crates/blockchain/src/lib.rs crates/blockchain/src/block.rs crates/blockchain/src/builder.rs crates/blockchain/src/disk.rs crates/blockchain/src/store.rs crates/blockchain/src/verify.rs

crates/blockchain/src/lib.rs:
crates/blockchain/src/block.rs:
crates/blockchain/src/builder.rs:
crates/blockchain/src/disk.rs:
crates/blockchain/src/store.rs:
crates/blockchain/src/verify.rs:
