/root/repo/target/release/deps/zugchain_blockchain-473a4f48b5c54b50.d: crates/blockchain/src/lib.rs crates/blockchain/src/block.rs crates/blockchain/src/builder.rs crates/blockchain/src/disk.rs crates/blockchain/src/store.rs crates/blockchain/src/verify.rs

/root/repo/target/release/deps/libzugchain_blockchain-473a4f48b5c54b50.rlib: crates/blockchain/src/lib.rs crates/blockchain/src/block.rs crates/blockchain/src/builder.rs crates/blockchain/src/disk.rs crates/blockchain/src/store.rs crates/blockchain/src/verify.rs

/root/repo/target/release/deps/libzugchain_blockchain-473a4f48b5c54b50.rmeta: crates/blockchain/src/lib.rs crates/blockchain/src/block.rs crates/blockchain/src/builder.rs crates/blockchain/src/disk.rs crates/blockchain/src/store.rs crates/blockchain/src/verify.rs

crates/blockchain/src/lib.rs:
crates/blockchain/src/block.rs:
crates/blockchain/src/builder.rs:
crates/blockchain/src/disk.rs:
crates/blockchain/src/store.rs:
crates/blockchain/src/verify.rs:
