/root/repo/target/release/deps/sha2-52c5a39aecea7edc.d: shims/sha2/src/lib.rs

/root/repo/target/release/deps/libsha2-52c5a39aecea7edc.rlib: shims/sha2/src/lib.rs

/root/repo/target/release/deps/libsha2-52c5a39aecea7edc.rmeta: shims/sha2/src/lib.rs

shims/sha2/src/lib.rs:
