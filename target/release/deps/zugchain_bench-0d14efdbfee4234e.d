/root/repo/target/release/deps/zugchain_bench-0d14efdbfee4234e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libzugchain_bench-0d14efdbfee4234e.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libzugchain_bench-0d14efdbfee4234e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
