/root/repo/target/release/deps/zugchain_export-86b4e76662f930a6.d: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

/root/repo/target/release/deps/libzugchain_export-86b4e76662f930a6.rlib: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

/root/repo/target/release/deps/libzugchain_export-86b4e76662f930a6.rmeta: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

crates/export/src/lib.rs:
crates/export/src/datacenter.rs:
crates/export/src/messages.rs:
crates/export/src/replica.rs:
crates/export/src/transfer.rs:
