/root/repo/target/release/deps/zugchain-a15e3335bc05bfb1.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs

/root/repo/target/release/deps/libzugchain-a15e3335bc05bfb1.rlib: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs

/root/repo/target/release/deps/libzugchain-a15e3335bc05bfb1.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/config.rs:
crates/core/src/dedup.rs:
crates/core/src/messages.rs:
crates/core/src/node.rs:
