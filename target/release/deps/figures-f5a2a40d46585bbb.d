/root/repo/target/release/deps/figures-f5a2a40d46585bbb.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-f5a2a40d46585bbb: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
