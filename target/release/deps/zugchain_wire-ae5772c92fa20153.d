/root/repo/target/release/deps/zugchain_wire-ae5772c92fa20153.d: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/writer.rs

/root/repo/target/release/deps/libzugchain_wire-ae5772c92fa20153.rlib: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/writer.rs

/root/repo/target/release/deps/libzugchain_wire-ae5772c92fa20153.rmeta: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/writer.rs

crates/wire/src/lib.rs:
crates/wire/src/error.rs:
crates/wire/src/reader.rs:
crates/wire/src/traits.rs:
crates/wire/src/writer.rs:
