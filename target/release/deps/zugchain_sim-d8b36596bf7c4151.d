/root/repo/target/release/deps/zugchain_sim-d8b36596bf7c4151.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/export_sim.rs crates/sim/src/metrics.rs crates/sim/src/network.rs crates/sim/src/scenario.rs crates/sim/src/sim.rs crates/sim/src/runtime.rs crates/sim/src/tcp.rs

/root/repo/target/release/deps/libzugchain_sim-d8b36596bf7c4151.rlib: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/export_sim.rs crates/sim/src/metrics.rs crates/sim/src/network.rs crates/sim/src/scenario.rs crates/sim/src/sim.rs crates/sim/src/runtime.rs crates/sim/src/tcp.rs

/root/repo/target/release/deps/libzugchain_sim-d8b36596bf7c4151.rmeta: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/export_sim.rs crates/sim/src/metrics.rs crates/sim/src/network.rs crates/sim/src/scenario.rs crates/sim/src/sim.rs crates/sim/src/runtime.rs crates/sim/src/tcp.rs

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/export_sim.rs:
crates/sim/src/metrics.rs:
crates/sim/src/network.rs:
crates/sim/src/scenario.rs:
crates/sim/src/sim.rs:
crates/sim/src/runtime.rs:
crates/sim/src/tcp.rs:
