/root/repo/target/release/deps/broadcast_fanout-e6b2b54c1e292b44.d: crates/bench/benches/broadcast_fanout.rs

/root/repo/target/release/deps/broadcast_fanout-e6b2b54c1e292b44: crates/bench/benches/broadcast_fanout.rs

crates/bench/benches/broadcast_fanout.rs:
