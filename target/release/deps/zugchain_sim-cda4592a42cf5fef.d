/root/repo/target/release/deps/zugchain_sim-cda4592a42cf5fef.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/export_sim.rs crates/sim/src/metrics.rs crates/sim/src/network.rs crates/sim/src/node_loop.rs crates/sim/src/runtime.rs crates/sim/src/scenario.rs crates/sim/src/sim.rs crates/sim/src/tcp.rs

/root/repo/target/release/deps/libzugchain_sim-cda4592a42cf5fef.rlib: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/export_sim.rs crates/sim/src/metrics.rs crates/sim/src/network.rs crates/sim/src/node_loop.rs crates/sim/src/runtime.rs crates/sim/src/scenario.rs crates/sim/src/sim.rs crates/sim/src/tcp.rs

/root/repo/target/release/deps/libzugchain_sim-cda4592a42cf5fef.rmeta: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/export_sim.rs crates/sim/src/metrics.rs crates/sim/src/network.rs crates/sim/src/node_loop.rs crates/sim/src/runtime.rs crates/sim/src/scenario.rs crates/sim/src/sim.rs crates/sim/src/tcp.rs

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/export_sim.rs:
crates/sim/src/metrics.rs:
crates/sim/src/network.rs:
crates/sim/src/node_loop.rs:
crates/sim/src/runtime.rs:
crates/sim/src/scenario.rs:
crates/sim/src/sim.rs:
crates/sim/src/tcp.rs:
