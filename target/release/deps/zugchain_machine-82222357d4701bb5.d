/root/repo/target/release/deps/zugchain_machine-82222357d4701bb5.d: crates/machine/src/lib.rs

/root/repo/target/release/deps/libzugchain_machine-82222357d4701bb5.rlib: crates/machine/src/lib.rs

/root/repo/target/release/deps/libzugchain_machine-82222357d4701bb5.rmeta: crates/machine/src/lib.rs

crates/machine/src/lib.rs:
