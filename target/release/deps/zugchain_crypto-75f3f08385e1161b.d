/root/repo/target/release/deps/zugchain_crypto-75f3f08385e1161b.d: crates/crypto/src/lib.rs crates/crypto/src/digest.rs crates/crypto/src/keys.rs crates/crypto/src/keystore.rs

/root/repo/target/release/deps/libzugchain_crypto-75f3f08385e1161b.rlib: crates/crypto/src/lib.rs crates/crypto/src/digest.rs crates/crypto/src/keys.rs crates/crypto/src/keystore.rs

/root/repo/target/release/deps/libzugchain_crypto-75f3f08385e1161b.rmeta: crates/crypto/src/lib.rs crates/crypto/src/digest.rs crates/crypto/src/keys.rs crates/crypto/src/keystore.rs

crates/crypto/src/lib.rs:
crates/crypto/src/digest.rs:
crates/crypto/src/keys.rs:
crates/crypto/src/keystore.rs:
