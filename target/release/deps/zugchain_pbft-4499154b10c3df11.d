/root/repo/target/release/deps/zugchain_pbft-4499154b10c3df11.d: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs

/root/repo/target/release/deps/libzugchain_pbft-4499154b10c3df11.rlib: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs

/root/repo/target/release/deps/libzugchain_pbft-4499154b10c3df11.rmeta: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs

crates/pbft/src/lib.rs:
crates/pbft/src/config.rs:
crates/pbft/src/messages.rs:
crates/pbft/src/replica.rs:
crates/pbft/src/types.rs:
