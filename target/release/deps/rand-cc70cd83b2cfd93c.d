/root/repo/target/release/deps/rand-cc70cd83b2cfd93c.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-cc70cd83b2cfd93c.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-cc70cd83b2cfd93c.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
