/root/repo/target/release/deps/zugchain_bench-de7becc91766f58a.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libzugchain_bench-de7becc91766f58a.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libzugchain_bench-de7becc91766f58a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
