/root/repo/target/release/deps/ed25519_dalek-ebc2fd2efc67199e.d: shims/ed25519-dalek/src/lib.rs

/root/repo/target/release/deps/libed25519_dalek-ebc2fd2efc67199e.rlib: shims/ed25519-dalek/src/lib.rs

/root/repo/target/release/deps/libed25519_dalek-ebc2fd2efc67199e.rmeta: shims/ed25519-dalek/src/lib.rs

shims/ed25519-dalek/src/lib.rs:
