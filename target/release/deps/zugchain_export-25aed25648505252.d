/root/repo/target/release/deps/zugchain_export-25aed25648505252.d: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

/root/repo/target/release/deps/libzugchain_export-25aed25648505252.rlib: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

/root/repo/target/release/deps/libzugchain_export-25aed25648505252.rmeta: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

crates/export/src/lib.rs:
crates/export/src/datacenter.rs:
crates/export/src/messages.rs:
crates/export/src/replica.rs:
crates/export/src/transfer.rs:
