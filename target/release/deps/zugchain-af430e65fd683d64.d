/root/repo/target/release/deps/zugchain-af430e65fd683d64.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs

/root/repo/target/release/deps/libzugchain-af430e65fd683d64.rlib: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs

/root/repo/target/release/deps/libzugchain-af430e65fd683d64.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/config.rs:
crates/core/src/dedup.rs:
crates/core/src/messages.rs:
crates/core/src/node.rs:
