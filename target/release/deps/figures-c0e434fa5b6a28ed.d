/root/repo/target/release/deps/figures-c0e434fa5b6a28ed.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-c0e434fa5b6a28ed: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
