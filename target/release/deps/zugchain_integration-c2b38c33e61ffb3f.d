/root/repo/target/release/deps/zugchain_integration-c2b38c33e61ffb3f.d: crates/integration/src/lib.rs

/root/repo/target/release/deps/libzugchain_integration-c2b38c33e61ffb3f.rlib: crates/integration/src/lib.rs

/root/repo/target/release/deps/libzugchain_integration-c2b38c33e61ffb3f.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
