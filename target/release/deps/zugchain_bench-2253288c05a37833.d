/root/repo/target/release/deps/zugchain_bench-2253288c05a37833.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libzugchain_bench-2253288c05a37833.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libzugchain_bench-2253288c05a37833.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
