/root/repo/target/release/deps/zugchain_wire-bc3f87c2a6b25ea1.d: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/writer.rs

/root/repo/target/release/deps/libzugchain_wire-bc3f87c2a6b25ea1.rlib: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/writer.rs

/root/repo/target/release/deps/libzugchain_wire-bc3f87c2a6b25ea1.rmeta: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/writer.rs

crates/wire/src/lib.rs:
crates/wire/src/error.rs:
crates/wire/src/reader.rs:
crates/wire/src/traits.rs:
crates/wire/src/writer.rs:
