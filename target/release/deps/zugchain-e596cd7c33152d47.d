/root/repo/target/release/deps/zugchain-e596cd7c33152d47.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs

/root/repo/target/release/deps/libzugchain-e596cd7c33152d47.rlib: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs

/root/repo/target/release/deps/libzugchain-e596cd7c33152d47.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/config.rs:
crates/core/src/dedup.rs:
crates/core/src/messages.rs:
crates/core/src/node.rs:
