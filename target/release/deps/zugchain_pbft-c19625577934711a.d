/root/repo/target/release/deps/zugchain_pbft-c19625577934711a.d: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs

/root/repo/target/release/deps/libzugchain_pbft-c19625577934711a.rlib: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs

/root/repo/target/release/deps/libzugchain_pbft-c19625577934711a.rmeta: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs

crates/pbft/src/lib.rs:
crates/pbft/src/config.rs:
crates/pbft/src/messages.rs:
crates/pbft/src/replica.rs:
crates/pbft/src/types.rs:
