/root/repo/target/release/deps/zugchain_mvb-3b849fc6232cd3a4.d: crates/mvb/src/lib.rs crates/mvb/src/bus.rs crates/mvb/src/device.rs crates/mvb/src/fault.rs crates/mvb/src/nsdb.rs crates/mvb/src/profinet.rs crates/mvb/src/telegram.rs

/root/repo/target/release/deps/libzugchain_mvb-3b849fc6232cd3a4.rlib: crates/mvb/src/lib.rs crates/mvb/src/bus.rs crates/mvb/src/device.rs crates/mvb/src/fault.rs crates/mvb/src/nsdb.rs crates/mvb/src/profinet.rs crates/mvb/src/telegram.rs

/root/repo/target/release/deps/libzugchain_mvb-3b849fc6232cd3a4.rmeta: crates/mvb/src/lib.rs crates/mvb/src/bus.rs crates/mvb/src/device.rs crates/mvb/src/fault.rs crates/mvb/src/nsdb.rs crates/mvb/src/profinet.rs crates/mvb/src/telegram.rs

crates/mvb/src/lib.rs:
crates/mvb/src/bus.rs:
crates/mvb/src/device.rs:
crates/mvb/src/fault.rs:
crates/mvb/src/nsdb.rs:
crates/mvb/src/profinet.rs:
crates/mvb/src/telegram.rs:
