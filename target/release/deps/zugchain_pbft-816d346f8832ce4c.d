/root/repo/target/release/deps/zugchain_pbft-816d346f8832ce4c.d: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs

/root/repo/target/release/deps/libzugchain_pbft-816d346f8832ce4c.rlib: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs

/root/repo/target/release/deps/libzugchain_pbft-816d346f8832ce4c.rmeta: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs

crates/pbft/src/lib.rs:
crates/pbft/src/config.rs:
crates/pbft/src/messages.rs:
crates/pbft/src/replica.rs:
crates/pbft/src/types.rs:
