/root/repo/target/release/deps/criterion-3a8c17f84bf070e6.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3a8c17f84bf070e6.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3a8c17f84bf070e6.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
