/root/repo/target/release/deps/criterion-040c83e88b7be00c.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-040c83e88b7be00c.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-040c83e88b7be00c.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
