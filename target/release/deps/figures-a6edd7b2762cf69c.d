/root/repo/target/release/deps/figures-a6edd7b2762cf69c.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-a6edd7b2762cf69c: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
