/root/repo/target/release/deps/zugchain_signals-7a368bcd1f39b81e.d: crates/signals/src/lib.rs crates/signals/src/analysis.rs crates/signals/src/event.rs crates/signals/src/filter.rs crates/signals/src/parser.rs crates/signals/src/request.rs

/root/repo/target/release/deps/libzugchain_signals-7a368bcd1f39b81e.rlib: crates/signals/src/lib.rs crates/signals/src/analysis.rs crates/signals/src/event.rs crates/signals/src/filter.rs crates/signals/src/parser.rs crates/signals/src/request.rs

/root/repo/target/release/deps/libzugchain_signals-7a368bcd1f39b81e.rmeta: crates/signals/src/lib.rs crates/signals/src/analysis.rs crates/signals/src/event.rs crates/signals/src/filter.rs crates/signals/src/parser.rs crates/signals/src/request.rs

crates/signals/src/lib.rs:
crates/signals/src/analysis.rs:
crates/signals/src/event.rs:
crates/signals/src/filter.rs:
crates/signals/src/parser.rs:
crates/signals/src/request.rs:
