/root/repo/target/release/deps/zugchain_export-022062d844d8c582.d: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

/root/repo/target/release/deps/libzugchain_export-022062d844d8c582.rlib: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

/root/repo/target/release/deps/libzugchain_export-022062d844d8c582.rmeta: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

crates/export/src/lib.rs:
crates/export/src/datacenter.rs:
crates/export/src/messages.rs:
crates/export/src/replica.rs:
crates/export/src/transfer.rs:
