/root/repo/target/release/deps/zugchain_crypto-7a36ede2d6f69dd4.d: crates/crypto/src/lib.rs crates/crypto/src/digest.rs crates/crypto/src/keys.rs crates/crypto/src/keystore.rs

/root/repo/target/release/deps/libzugchain_crypto-7a36ede2d6f69dd4.rlib: crates/crypto/src/lib.rs crates/crypto/src/digest.rs crates/crypto/src/keys.rs crates/crypto/src/keystore.rs

/root/repo/target/release/deps/libzugchain_crypto-7a36ede2d6f69dd4.rmeta: crates/crypto/src/lib.rs crates/crypto/src/digest.rs crates/crypto/src/keys.rs crates/crypto/src/keystore.rs

crates/crypto/src/lib.rs:
crates/crypto/src/digest.rs:
crates/crypto/src/keys.rs:
crates/crypto/src/keystore.rs:
