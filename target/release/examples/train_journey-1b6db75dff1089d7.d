/root/repo/target/release/examples/train_journey-1b6db75dff1089d7.d: crates/core/../../examples/train_journey.rs

/root/repo/target/release/examples/train_journey-1b6db75dff1089d7: crates/core/../../examples/train_journey.rs

crates/core/../../examples/train_journey.rs:
