/root/repo/target/release/examples/quickstart-85b2bcf11954b15b.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-85b2bcf11954b15b: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
