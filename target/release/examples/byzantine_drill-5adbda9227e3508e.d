/root/repo/target/release/examples/byzantine_drill-5adbda9227e3508e.d: crates/core/../../examples/byzantine_drill.rs

/root/repo/target/release/examples/byzantine_drill-5adbda9227e3508e: crates/core/../../examples/byzantine_drill.rs

crates/core/../../examples/byzantine_drill.rs:
