/root/repo/target/release/libsha2.rlib: /root/repo/shims/sha2/src/lib.rs
