/root/repo/target/release/libzugchain_machine.rlib: /root/repo/crates/machine/src/lib.rs
