/root/repo/target/release/libzugchain_integration.rlib: /root/repo/crates/integration/src/lib.rs
