/root/repo/target/debug/libzugchain_machine.rlib: /root/repo/crates/machine/src/lib.rs
