/root/repo/target/debug/deps/request_filtering-dab1bd358ec904bf.d: crates/bench/benches/request_filtering.rs Cargo.toml

/root/repo/target/debug/deps/librequest_filtering-dab1bd358ec904bf.rmeta: crates/bench/benches/request_filtering.rs Cargo.toml

crates/bench/benches/request_filtering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
