/root/repo/target/debug/deps/fault_tolerance-f29971e948374731.d: crates/integration/../../tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-f29971e948374731: crates/integration/../../tests/fault_tolerance.rs

crates/integration/../../tests/fault_tolerance.rs:
