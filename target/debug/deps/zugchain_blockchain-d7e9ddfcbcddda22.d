/root/repo/target/debug/deps/zugchain_blockchain-d7e9ddfcbcddda22.d: crates/blockchain/src/lib.rs crates/blockchain/src/block.rs crates/blockchain/src/builder.rs crates/blockchain/src/disk.rs crates/blockchain/src/store.rs crates/blockchain/src/verify.rs

/root/repo/target/debug/deps/zugchain_blockchain-d7e9ddfcbcddda22: crates/blockchain/src/lib.rs crates/blockchain/src/block.rs crates/blockchain/src/builder.rs crates/blockchain/src/disk.rs crates/blockchain/src/store.rs crates/blockchain/src/verify.rs

crates/blockchain/src/lib.rs:
crates/blockchain/src/block.rs:
crates/blockchain/src/builder.rs:
crates/blockchain/src/disk.rs:
crates/blockchain/src/store.rs:
crates/blockchain/src/verify.rs:
