/root/repo/target/debug/deps/zugchain_wire-9f9a20256fb6bc4b.d: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain_wire-9f9a20256fb6bc4b.rmeta: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/writer.rs Cargo.toml

crates/wire/src/lib.rs:
crates/wire/src/error.rs:
crates/wire/src/reader.rs:
crates/wire/src/traits.rs:
crates/wire/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
