/root/repo/target/debug/deps/wire_codec-12b3449c01de9cde.d: crates/bench/benches/wire_codec.rs Cargo.toml

/root/repo/target/debug/deps/libwire_codec-12b3449c01de9cde.rmeta: crates/bench/benches/wire_codec.rs Cargo.toml

crates/bench/benches/wire_codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
