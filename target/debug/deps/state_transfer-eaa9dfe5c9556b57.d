/root/repo/target/debug/deps/state_transfer-eaa9dfe5c9556b57.d: crates/integration/../../tests/state_transfer.rs

/root/repo/target/debug/deps/state_transfer-eaa9dfe5c9556b57: crates/integration/../../tests/state_transfer.rs

crates/integration/../../tests/state_transfer.rs:
