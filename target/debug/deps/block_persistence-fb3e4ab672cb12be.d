/root/repo/target/debug/deps/block_persistence-fb3e4ab672cb12be.d: crates/bench/benches/block_persistence.rs Cargo.toml

/root/repo/target/debug/deps/libblock_persistence-fb3e4ab672cb12be.rmeta: crates/bench/benches/block_persistence.rs Cargo.toml

crates/bench/benches/block_persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
