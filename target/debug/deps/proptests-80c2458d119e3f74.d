/root/repo/target/debug/deps/proptests-80c2458d119e3f74.d: crates/wire/tests/proptests.rs

/root/repo/target/debug/deps/proptests-80c2458d119e3f74: crates/wire/tests/proptests.rs

crates/wire/tests/proptests.rs:
