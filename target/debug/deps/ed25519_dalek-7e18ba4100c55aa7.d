/root/repo/target/debug/deps/ed25519_dalek-7e18ba4100c55aa7.d: shims/ed25519-dalek/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libed25519_dalek-7e18ba4100c55aa7.rmeta: shims/ed25519-dalek/src/lib.rs Cargo.toml

shims/ed25519-dalek/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
