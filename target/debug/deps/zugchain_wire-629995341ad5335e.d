/root/repo/target/debug/deps/zugchain_wire-629995341ad5335e.d: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/writer.rs

/root/repo/target/debug/deps/libzugchain_wire-629995341ad5335e.rlib: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/writer.rs

/root/repo/target/debug/deps/libzugchain_wire-629995341ad5335e.rmeta: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/writer.rs

crates/wire/src/lib.rs:
crates/wire/src/error.rs:
crates/wire/src/reader.rs:
crates/wire/src/traits.rs:
crates/wire/src/writer.rs:
