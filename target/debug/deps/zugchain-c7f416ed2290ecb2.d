/root/repo/target/debug/deps/zugchain-c7f416ed2290ecb2.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs crates/core/src/node/tests.rs crates/core/src/node/testutil.rs

/root/repo/target/debug/deps/zugchain-c7f416ed2290ecb2: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs crates/core/src/node/tests.rs crates/core/src/node/testutil.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/config.rs:
crates/core/src/dedup.rs:
crates/core/src/messages.rs:
crates/core/src/node.rs:
crates/core/src/node/tests.rs:
crates/core/src/node/testutil.rs:
