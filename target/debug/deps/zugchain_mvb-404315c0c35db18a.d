/root/repo/target/debug/deps/zugchain_mvb-404315c0c35db18a.d: crates/mvb/src/lib.rs crates/mvb/src/bus.rs crates/mvb/src/device.rs crates/mvb/src/fault.rs crates/mvb/src/nsdb.rs crates/mvb/src/profinet.rs crates/mvb/src/telegram.rs

/root/repo/target/debug/deps/libzugchain_mvb-404315c0c35db18a.rlib: crates/mvb/src/lib.rs crates/mvb/src/bus.rs crates/mvb/src/device.rs crates/mvb/src/fault.rs crates/mvb/src/nsdb.rs crates/mvb/src/profinet.rs crates/mvb/src/telegram.rs

/root/repo/target/debug/deps/libzugchain_mvb-404315c0c35db18a.rmeta: crates/mvb/src/lib.rs crates/mvb/src/bus.rs crates/mvb/src/device.rs crates/mvb/src/fault.rs crates/mvb/src/nsdb.rs crates/mvb/src/profinet.rs crates/mvb/src/telegram.rs

crates/mvb/src/lib.rs:
crates/mvb/src/bus.rs:
crates/mvb/src/device.rs:
crates/mvb/src/fault.rs:
crates/mvb/src/nsdb.rs:
crates/mvb/src/profinet.rs:
crates/mvb/src/telegram.rs:
