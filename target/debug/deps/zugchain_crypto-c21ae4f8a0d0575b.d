/root/repo/target/debug/deps/zugchain_crypto-c21ae4f8a0d0575b.d: crates/crypto/src/lib.rs crates/crypto/src/digest.rs crates/crypto/src/keys.rs crates/crypto/src/keystore.rs

/root/repo/target/debug/deps/zugchain_crypto-c21ae4f8a0d0575b: crates/crypto/src/lib.rs crates/crypto/src/digest.rs crates/crypto/src/keys.rs crates/crypto/src/keystore.rs

crates/crypto/src/lib.rs:
crates/crypto/src/digest.rs:
crates/crypto/src/keys.rs:
crates/crypto/src/keystore.rs:
