/root/repo/target/debug/deps/zugchain_signals-2b3ecded1d268475.d: crates/signals/src/lib.rs crates/signals/src/analysis.rs crates/signals/src/event.rs crates/signals/src/filter.rs crates/signals/src/parser.rs crates/signals/src/request.rs

/root/repo/target/debug/deps/zugchain_signals-2b3ecded1d268475: crates/signals/src/lib.rs crates/signals/src/analysis.rs crates/signals/src/event.rs crates/signals/src/filter.rs crates/signals/src/parser.rs crates/signals/src/request.rs

crates/signals/src/lib.rs:
crates/signals/src/analysis.rs:
crates/signals/src/event.rs:
crates/signals/src/filter.rs:
crates/signals/src/parser.rs:
crates/signals/src/request.rs:
