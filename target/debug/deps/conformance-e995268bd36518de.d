/root/repo/target/debug/deps/conformance-e995268bd36518de.d: crates/integration/../../tests/conformance.rs Cargo.toml

/root/repo/target/debug/deps/libconformance-e995268bd36518de.rmeta: crates/integration/../../tests/conformance.rs Cargo.toml

crates/integration/../../tests/conformance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
