/root/repo/target/debug/deps/figures-7b8fbaa2de868a06.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-7b8fbaa2de868a06: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
