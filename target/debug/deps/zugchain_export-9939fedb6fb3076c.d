/root/repo/target/debug/deps/zugchain_export-9939fedb6fb3076c.d: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

/root/repo/target/debug/deps/zugchain_export-9939fedb6fb3076c: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

crates/export/src/lib.rs:
crates/export/src/datacenter.rs:
crates/export/src/messages.rs:
crates/export/src/replica.rs:
crates/export/src/transfer.rs:
