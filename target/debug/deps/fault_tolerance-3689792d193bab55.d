/root/repo/target/debug/deps/fault_tolerance-3689792d193bab55.d: crates/integration/../../tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-3689792d193bab55: crates/integration/../../tests/fault_tolerance.rs

crates/integration/../../tests/fault_tolerance.rs:
