/root/repo/target/debug/deps/multi_bus-3edff1554fadbe68.d: crates/integration/../../tests/multi_bus.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_bus-3edff1554fadbe68.rmeta: crates/integration/../../tests/multi_bus.rs Cargo.toml

crates/integration/../../tests/multi_bus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
