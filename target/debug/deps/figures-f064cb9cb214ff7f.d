/root/repo/target/debug/deps/figures-f064cb9cb214ff7f.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-f064cb9cb214ff7f: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
