/root/repo/target/debug/deps/zugchain_machine-4c2a6aa0850d1bcb.d: crates/machine/src/lib.rs

/root/repo/target/debug/deps/zugchain_machine-4c2a6aa0850d1bcb: crates/machine/src/lib.rs

crates/machine/src/lib.rs:
