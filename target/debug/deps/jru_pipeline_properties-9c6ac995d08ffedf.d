/root/repo/target/debug/deps/jru_pipeline_properties-9c6ac995d08ffedf.d: crates/integration/../../tests/jru_pipeline_properties.rs Cargo.toml

/root/repo/target/debug/deps/libjru_pipeline_properties-9c6ac995d08ffedf.rmeta: crates/integration/../../tests/jru_pipeline_properties.rs Cargo.toml

crates/integration/../../tests/jru_pipeline_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
