/root/repo/target/debug/deps/figures-2e609de3f3266c2e.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-2e609de3f3266c2e: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
