/root/repo/target/debug/deps/proptest_safety-0b28e2d722d3c9da.d: crates/pbft/tests/proptest_safety.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_safety-0b28e2d722d3c9da.rmeta: crates/pbft/tests/proptest_safety.rs Cargo.toml

crates/pbft/tests/proptest_safety.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
