/root/repo/target/debug/deps/sha2-c4b2aafc0ce52bb0.d: shims/sha2/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsha2-c4b2aafc0ce52bb0.rmeta: shims/sha2/src/lib.rs Cargo.toml

shims/sha2/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
