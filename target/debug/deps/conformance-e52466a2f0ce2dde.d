/root/repo/target/debug/deps/conformance-e52466a2f0ce2dde.d: crates/integration/../../tests/conformance.rs

/root/repo/target/debug/deps/conformance-e52466a2f0ce2dde: crates/integration/../../tests/conformance.rs

crates/integration/../../tests/conformance.rs:
