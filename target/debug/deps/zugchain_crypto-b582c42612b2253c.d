/root/repo/target/debug/deps/zugchain_crypto-b582c42612b2253c.d: crates/crypto/src/lib.rs crates/crypto/src/digest.rs crates/crypto/src/keys.rs crates/crypto/src/keystore.rs

/root/repo/target/debug/deps/libzugchain_crypto-b582c42612b2253c.rlib: crates/crypto/src/lib.rs crates/crypto/src/digest.rs crates/crypto/src/keys.rs crates/crypto/src/keystore.rs

/root/repo/target/debug/deps/libzugchain_crypto-b582c42612b2253c.rmeta: crates/crypto/src/lib.rs crates/crypto/src/digest.rs crates/crypto/src/keys.rs crates/crypto/src/keystore.rs

crates/crypto/src/lib.rs:
crates/crypto/src/digest.rs:
crates/crypto/src/keys.rs:
crates/crypto/src/keystore.rs:
