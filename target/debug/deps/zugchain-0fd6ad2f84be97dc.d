/root/repo/target/debug/deps/zugchain-0fd6ad2f84be97dc.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs crates/core/src/node/tests.rs crates/core/src/node/testutil.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain-0fd6ad2f84be97dc.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs crates/core/src/node/tests.rs crates/core/src/node/testutil.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/config.rs:
crates/core/src/dedup.rs:
crates/core/src/messages.rs:
crates/core/src/node.rs:
crates/core/src/node/tests.rs:
crates/core/src/node/testutil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
