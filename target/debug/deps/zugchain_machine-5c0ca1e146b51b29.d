/root/repo/target/debug/deps/zugchain_machine-5c0ca1e146b51b29.d: crates/machine/src/lib.rs

/root/repo/target/debug/deps/libzugchain_machine-5c0ca1e146b51b29.rlib: crates/machine/src/lib.rs

/root/repo/target/debug/deps/libzugchain_machine-5c0ca1e146b51b29.rmeta: crates/machine/src/lib.rs

crates/machine/src/lib.rs:
