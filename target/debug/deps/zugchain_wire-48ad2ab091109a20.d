/root/repo/target/debug/deps/zugchain_wire-48ad2ab091109a20.d: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/writer.rs

/root/repo/target/debug/deps/zugchain_wire-48ad2ab091109a20: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/writer.rs

crates/wire/src/lib.rs:
crates/wire/src/error.rs:
crates/wire/src/reader.rs:
crates/wire/src/traits.rs:
crates/wire/src/writer.rs:
