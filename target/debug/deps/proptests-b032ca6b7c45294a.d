/root/repo/target/debug/deps/proptests-b032ca6b7c45294a.d: crates/wire/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-b032ca6b7c45294a.rmeta: crates/wire/tests/proptests.rs Cargo.toml

crates/wire/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
