/root/repo/target/debug/deps/multi_bus-c11685aaf4cbb523.d: crates/integration/../../tests/multi_bus.rs

/root/repo/target/debug/deps/multi_bus-c11685aaf4cbb523: crates/integration/../../tests/multi_bus.rs

crates/integration/../../tests/multi_bus.rs:
