/root/repo/target/debug/deps/state_transfer-ef6cb82cf417a5ff.d: crates/integration/../../tests/state_transfer.rs Cargo.toml

/root/repo/target/debug/deps/libstate_transfer-ef6cb82cf417a5ff.rmeta: crates/integration/../../tests/state_transfer.rs Cargo.toml

crates/integration/../../tests/state_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
