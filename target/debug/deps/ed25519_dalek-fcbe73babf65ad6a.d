/root/repo/target/debug/deps/ed25519_dalek-fcbe73babf65ad6a.d: shims/ed25519-dalek/src/lib.rs

/root/repo/target/debug/deps/ed25519_dalek-fcbe73babf65ad6a: shims/ed25519-dalek/src/lib.rs

shims/ed25519-dalek/src/lib.rs:
