/root/repo/target/debug/deps/zugchain_pbft-c205fadfae16a75d.d: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/replica/tests.rs crates/pbft/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain_pbft-c205fadfae16a75d.rmeta: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/replica/tests.rs crates/pbft/src/types.rs Cargo.toml

crates/pbft/src/lib.rs:
crates/pbft/src/config.rs:
crates/pbft/src/messages.rs:
crates/pbft/src/replica.rs:
crates/pbft/src/replica/tests.rs:
crates/pbft/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
