/root/repo/target/debug/deps/zugchain_signals-e807285a6abbd1e2.d: crates/signals/src/lib.rs crates/signals/src/analysis.rs crates/signals/src/event.rs crates/signals/src/filter.rs crates/signals/src/parser.rs crates/signals/src/request.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain_signals-e807285a6abbd1e2.rmeta: crates/signals/src/lib.rs crates/signals/src/analysis.rs crates/signals/src/event.rs crates/signals/src/filter.rs crates/signals/src/parser.rs crates/signals/src/request.rs Cargo.toml

crates/signals/src/lib.rs:
crates/signals/src/analysis.rs:
crates/signals/src/event.rs:
crates/signals/src/filter.rs:
crates/signals/src/parser.rs:
crates/signals/src/request.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
