/root/repo/target/debug/deps/zugchain_export-c2ddfe4e0ebf8559.d: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain_export-c2ddfe4e0ebf8559.rmeta: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs Cargo.toml

crates/export/src/lib.rs:
crates/export/src/datacenter.rs:
crates/export/src/messages.rs:
crates/export/src/replica.rs:
crates/export/src/transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
