/root/repo/target/debug/deps/zugchain_sim-1d2bb35e77127a29.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/export_sim.rs crates/sim/src/metrics.rs crates/sim/src/network.rs crates/sim/src/scenario.rs crates/sim/src/sim.rs crates/sim/src/runtime.rs crates/sim/src/tcp.rs

/root/repo/target/debug/deps/libzugchain_sim-1d2bb35e77127a29.rlib: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/export_sim.rs crates/sim/src/metrics.rs crates/sim/src/network.rs crates/sim/src/scenario.rs crates/sim/src/sim.rs crates/sim/src/runtime.rs crates/sim/src/tcp.rs

/root/repo/target/debug/deps/libzugchain_sim-1d2bb35e77127a29.rmeta: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/export_sim.rs crates/sim/src/metrics.rs crates/sim/src/network.rs crates/sim/src/scenario.rs crates/sim/src/sim.rs crates/sim/src/runtime.rs crates/sim/src/tcp.rs

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/export_sim.rs:
crates/sim/src/metrics.rs:
crates/sim/src/network.rs:
crates/sim/src/scenario.rs:
crates/sim/src/sim.rs:
crates/sim/src/runtime.rs:
crates/sim/src/tcp.rs:
