/root/repo/target/debug/deps/zugchain_sim-5cdea95dade633b8.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/export_sim.rs crates/sim/src/metrics.rs crates/sim/src/network.rs crates/sim/src/node_loop.rs crates/sim/src/runtime.rs crates/sim/src/scenario.rs crates/sim/src/sim.rs crates/sim/src/tcp.rs

/root/repo/target/debug/deps/zugchain_sim-5cdea95dade633b8: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/export_sim.rs crates/sim/src/metrics.rs crates/sim/src/network.rs crates/sim/src/node_loop.rs crates/sim/src/runtime.rs crates/sim/src/scenario.rs crates/sim/src/sim.rs crates/sim/src/tcp.rs

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/export_sim.rs:
crates/sim/src/metrics.rs:
crates/sim/src/network.rs:
crates/sim/src/node_loop.rs:
crates/sim/src/runtime.rs:
crates/sim/src/scenario.rs:
crates/sim/src/sim.rs:
crates/sim/src/tcp.rs:
