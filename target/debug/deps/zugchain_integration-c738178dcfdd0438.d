/root/repo/target/debug/deps/zugchain_integration-c738178dcfdd0438.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/zugchain_integration-c738178dcfdd0438: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
