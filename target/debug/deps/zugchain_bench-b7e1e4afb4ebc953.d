/root/repo/target/debug/deps/zugchain_bench-b7e1e4afb4ebc953.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libzugchain_bench-b7e1e4afb4ebc953.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libzugchain_bench-b7e1e4afb4ebc953.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
