/root/repo/target/debug/deps/zugchain_pbft-e1c60b71d8e2c3f9.d: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/replica/tests.rs crates/pbft/src/types.rs

/root/repo/target/debug/deps/zugchain_pbft-e1c60b71d8e2c3f9: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/replica/tests.rs crates/pbft/src/types.rs

crates/pbft/src/lib.rs:
crates/pbft/src/config.rs:
crates/pbft/src/messages.rs:
crates/pbft/src/replica.rs:
crates/pbft/src/replica/tests.rs:
crates/pbft/src/types.rs:
