/root/repo/target/debug/deps/export_integration-04c48fd343b9e909.d: crates/integration/../../tests/export_integration.rs

/root/repo/target/debug/deps/export_integration-04c48fd343b9e909: crates/integration/../../tests/export_integration.rs

crates/integration/../../tests/export_integration.rs:
