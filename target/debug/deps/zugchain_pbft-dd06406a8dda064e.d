/root/repo/target/debug/deps/zugchain_pbft-dd06406a8dda064e.d: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain_pbft-dd06406a8dda064e.rmeta: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs Cargo.toml

crates/pbft/src/lib.rs:
crates/pbft/src/config.rs:
crates/pbft/src/messages.rs:
crates/pbft/src/replica.rs:
crates/pbft/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
