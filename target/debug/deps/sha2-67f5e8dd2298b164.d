/root/repo/target/debug/deps/sha2-67f5e8dd2298b164.d: shims/sha2/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsha2-67f5e8dd2298b164.rmeta: shims/sha2/src/lib.rs Cargo.toml

shims/sha2/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
