/root/repo/target/debug/deps/zugchain_pbft-9ebf70a7dc2c029b.d: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs

/root/repo/target/debug/deps/libzugchain_pbft-9ebf70a7dc2c029b.rlib: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs

/root/repo/target/debug/deps/libzugchain_pbft-9ebf70a7dc2c029b.rmeta: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs

crates/pbft/src/lib.rs:
crates/pbft/src/config.rs:
crates/pbft/src/messages.rs:
crates/pbft/src/replica.rs:
crates/pbft/src/types.rs:
