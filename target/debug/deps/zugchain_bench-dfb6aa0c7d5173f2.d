/root/repo/target/debug/deps/zugchain_bench-dfb6aa0c7d5173f2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/zugchain_bench-dfb6aa0c7d5173f2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
