/root/repo/target/debug/deps/zugchain_machine-8e4bea77304014cc.d: crates/machine/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain_machine-8e4bea77304014cc.rmeta: crates/machine/src/lib.rs Cargo.toml

crates/machine/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
