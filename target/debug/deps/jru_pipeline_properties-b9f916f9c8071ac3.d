/root/repo/target/debug/deps/jru_pipeline_properties-b9f916f9c8071ac3.d: crates/integration/../../tests/jru_pipeline_properties.rs

/root/repo/target/debug/deps/jru_pipeline_properties-b9f916f9c8071ac3: crates/integration/../../tests/jru_pipeline_properties.rs

crates/integration/../../tests/jru_pipeline_properties.rs:
