/root/repo/target/debug/deps/zugchain_pbft-976b62dc092b4740.d: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/replica/tests.rs crates/pbft/src/types.rs

/root/repo/target/debug/deps/zugchain_pbft-976b62dc092b4740: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/replica/tests.rs crates/pbft/src/types.rs

crates/pbft/src/lib.rs:
crates/pbft/src/config.rs:
crates/pbft/src/messages.rs:
crates/pbft/src/replica.rs:
crates/pbft/src/replica/tests.rs:
crates/pbft/src/types.rs:
