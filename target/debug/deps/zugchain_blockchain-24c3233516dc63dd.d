/root/repo/target/debug/deps/zugchain_blockchain-24c3233516dc63dd.d: crates/blockchain/src/lib.rs crates/blockchain/src/block.rs crates/blockchain/src/builder.rs crates/blockchain/src/disk.rs crates/blockchain/src/store.rs crates/blockchain/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain_blockchain-24c3233516dc63dd.rmeta: crates/blockchain/src/lib.rs crates/blockchain/src/block.rs crates/blockchain/src/builder.rs crates/blockchain/src/disk.rs crates/blockchain/src/store.rs crates/blockchain/src/verify.rs Cargo.toml

crates/blockchain/src/lib.rs:
crates/blockchain/src/block.rs:
crates/blockchain/src/builder.rs:
crates/blockchain/src/disk.rs:
crates/blockchain/src/store.rs:
crates/blockchain/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
