/root/repo/target/debug/deps/zugchain_mvb-30c92b80d8544a0c.d: crates/mvb/src/lib.rs crates/mvb/src/bus.rs crates/mvb/src/device.rs crates/mvb/src/fault.rs crates/mvb/src/nsdb.rs crates/mvb/src/profinet.rs crates/mvb/src/telegram.rs

/root/repo/target/debug/deps/zugchain_mvb-30c92b80d8544a0c: crates/mvb/src/lib.rs crates/mvb/src/bus.rs crates/mvb/src/device.rs crates/mvb/src/fault.rs crates/mvb/src/nsdb.rs crates/mvb/src/profinet.rs crates/mvb/src/telegram.rs

crates/mvb/src/lib.rs:
crates/mvb/src/bus.rs:
crates/mvb/src/device.rs:
crates/mvb/src/fault.rs:
crates/mvb/src/nsdb.rs:
crates/mvb/src/profinet.rs:
crates/mvb/src/telegram.rs:
