/root/repo/target/debug/deps/zugchain_bench-dc2860afe8ba2029.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libzugchain_bench-dc2860afe8ba2029.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libzugchain_bench-dc2860afe8ba2029.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
