/root/repo/target/debug/deps/zugchain_export-5a0a7fd3fff9eb22.d: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

/root/repo/target/debug/deps/zugchain_export-5a0a7fd3fff9eb22: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

crates/export/src/lib.rs:
crates/export/src/datacenter.rs:
crates/export/src/messages.rs:
crates/export/src/replica.rs:
crates/export/src/transfer.rs:
