/root/repo/target/debug/deps/proptest_safety-b162a10d07a1cb10.d: crates/pbft/tests/proptest_safety.rs

/root/repo/target/debug/deps/proptest_safety-b162a10d07a1cb10: crates/pbft/tests/proptest_safety.rs

crates/pbft/tests/proptest_safety.rs:
