/root/repo/target/debug/deps/end_to_end_journey-08fd31f3b87f5489.d: crates/integration/../../tests/end_to_end_journey.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_journey-08fd31f3b87f5489.rmeta: crates/integration/../../tests/end_to_end_journey.rs Cargo.toml

crates/integration/../../tests/end_to_end_journey.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
