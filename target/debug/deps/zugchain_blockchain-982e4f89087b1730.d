/root/repo/target/debug/deps/zugchain_blockchain-982e4f89087b1730.d: crates/blockchain/src/lib.rs crates/blockchain/src/block.rs crates/blockchain/src/builder.rs crates/blockchain/src/disk.rs crates/blockchain/src/store.rs crates/blockchain/src/verify.rs

/root/repo/target/debug/deps/libzugchain_blockchain-982e4f89087b1730.rlib: crates/blockchain/src/lib.rs crates/blockchain/src/block.rs crates/blockchain/src/builder.rs crates/blockchain/src/disk.rs crates/blockchain/src/store.rs crates/blockchain/src/verify.rs

/root/repo/target/debug/deps/libzugchain_blockchain-982e4f89087b1730.rmeta: crates/blockchain/src/lib.rs crates/blockchain/src/block.rs crates/blockchain/src/builder.rs crates/blockchain/src/disk.rs crates/blockchain/src/store.rs crates/blockchain/src/verify.rs

crates/blockchain/src/lib.rs:
crates/blockchain/src/block.rs:
crates/blockchain/src/builder.rs:
crates/blockchain/src/disk.rs:
crates/blockchain/src/store.rs:
crates/blockchain/src/verify.rs:
