/root/repo/target/debug/deps/zugchain_mvb-201b2991deeb822e.d: crates/mvb/src/lib.rs crates/mvb/src/bus.rs crates/mvb/src/device.rs crates/mvb/src/fault.rs crates/mvb/src/nsdb.rs crates/mvb/src/profinet.rs crates/mvb/src/telegram.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain_mvb-201b2991deeb822e.rmeta: crates/mvb/src/lib.rs crates/mvb/src/bus.rs crates/mvb/src/device.rs crates/mvb/src/fault.rs crates/mvb/src/nsdb.rs crates/mvb/src/profinet.rs crates/mvb/src/telegram.rs Cargo.toml

crates/mvb/src/lib.rs:
crates/mvb/src/bus.rs:
crates/mvb/src/device.rs:
crates/mvb/src/fault.rs:
crates/mvb/src/nsdb.rs:
crates/mvb/src/profinet.rs:
crates/mvb/src/telegram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
