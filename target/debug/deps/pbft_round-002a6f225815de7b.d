/root/repo/target/debug/deps/pbft_round-002a6f225815de7b.d: crates/bench/benches/pbft_round.rs Cargo.toml

/root/repo/target/debug/deps/libpbft_round-002a6f225815de7b.rmeta: crates/bench/benches/pbft_round.rs Cargo.toml

crates/bench/benches/pbft_round.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
