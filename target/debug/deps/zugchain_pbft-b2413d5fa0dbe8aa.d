/root/repo/target/debug/deps/zugchain_pbft-b2413d5fa0dbe8aa.d: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs

/root/repo/target/debug/deps/libzugchain_pbft-b2413d5fa0dbe8aa.rlib: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs

/root/repo/target/debug/deps/libzugchain_pbft-b2413d5fa0dbe8aa.rmeta: crates/pbft/src/lib.rs crates/pbft/src/config.rs crates/pbft/src/messages.rs crates/pbft/src/replica.rs crates/pbft/src/types.rs

crates/pbft/src/lib.rs:
crates/pbft/src/config.rs:
crates/pbft/src/messages.rs:
crates/pbft/src/replica.rs:
crates/pbft/src/types.rs:
