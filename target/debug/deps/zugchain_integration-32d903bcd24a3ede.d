/root/repo/target/debug/deps/zugchain_integration-32d903bcd24a3ede.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain_integration-32d903bcd24a3ede.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
