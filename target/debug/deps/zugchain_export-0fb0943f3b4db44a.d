/root/repo/target/debug/deps/zugchain_export-0fb0943f3b4db44a.d: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain_export-0fb0943f3b4db44a.rmeta: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs Cargo.toml

crates/export/src/lib.rs:
crates/export/src/datacenter.rs:
crates/export/src/messages.rs:
crates/export/src/replica.rs:
crates/export/src/transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
