/root/repo/target/debug/deps/zugchain_sim-ec9ce319fdce63d8.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/export_sim.rs crates/sim/src/metrics.rs crates/sim/src/network.rs crates/sim/src/node_loop.rs crates/sim/src/runtime.rs crates/sim/src/scenario.rs crates/sim/src/sim.rs crates/sim/src/tcp.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain_sim-ec9ce319fdce63d8.rmeta: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/export_sim.rs crates/sim/src/metrics.rs crates/sim/src/network.rs crates/sim/src/node_loop.rs crates/sim/src/runtime.rs crates/sim/src/scenario.rs crates/sim/src/sim.rs crates/sim/src/tcp.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/export_sim.rs:
crates/sim/src/metrics.rs:
crates/sim/src/network.rs:
crates/sim/src/node_loop.rs:
crates/sim/src/runtime.rs:
crates/sim/src/scenario.rs:
crates/sim/src/sim.rs:
crates/sim/src/tcp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
