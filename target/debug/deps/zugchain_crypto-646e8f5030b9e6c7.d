/root/repo/target/debug/deps/zugchain_crypto-646e8f5030b9e6c7.d: crates/crypto/src/lib.rs crates/crypto/src/digest.rs crates/crypto/src/keys.rs crates/crypto/src/keystore.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain_crypto-646e8f5030b9e6c7.rmeta: crates/crypto/src/lib.rs crates/crypto/src/digest.rs crates/crypto/src/keys.rs crates/crypto/src/keystore.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/digest.rs:
crates/crypto/src/keys.rs:
crates/crypto/src/keystore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
