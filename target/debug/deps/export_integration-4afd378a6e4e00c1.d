/root/repo/target/debug/deps/export_integration-4afd378a6e4e00c1.d: crates/integration/../../tests/export_integration.rs Cargo.toml

/root/repo/target/debug/deps/libexport_integration-4afd378a6e4e00c1.rmeta: crates/integration/../../tests/export_integration.rs Cargo.toml

crates/integration/../../tests/export_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
