/root/repo/target/debug/deps/zugchain_signals-a26e3a2d44aec8f1.d: crates/signals/src/lib.rs crates/signals/src/analysis.rs crates/signals/src/event.rs crates/signals/src/filter.rs crates/signals/src/parser.rs crates/signals/src/request.rs

/root/repo/target/debug/deps/libzugchain_signals-a26e3a2d44aec8f1.rlib: crates/signals/src/lib.rs crates/signals/src/analysis.rs crates/signals/src/event.rs crates/signals/src/filter.rs crates/signals/src/parser.rs crates/signals/src/request.rs

/root/repo/target/debug/deps/libzugchain_signals-a26e3a2d44aec8f1.rmeta: crates/signals/src/lib.rs crates/signals/src/analysis.rs crates/signals/src/event.rs crates/signals/src/filter.rs crates/signals/src/parser.rs crates/signals/src/request.rs

crates/signals/src/lib.rs:
crates/signals/src/analysis.rs:
crates/signals/src/event.rs:
crates/signals/src/filter.rs:
crates/signals/src/parser.rs:
crates/signals/src/request.rs:
