/root/repo/target/debug/deps/export_verify-2b94a8cabad71f39.d: crates/bench/benches/export_verify.rs Cargo.toml

/root/repo/target/debug/deps/libexport_verify-2b94a8cabad71f39.rmeta: crates/bench/benches/export_verify.rs Cargo.toml

crates/bench/benches/export_verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
