/root/repo/target/debug/deps/zugchain_crypto-3e029aad6e8428ea.d: crates/crypto/src/lib.rs crates/crypto/src/digest.rs crates/crypto/src/keys.rs crates/crypto/src/keystore.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain_crypto-3e029aad6e8428ea.rmeta: crates/crypto/src/lib.rs crates/crypto/src/digest.rs crates/crypto/src/keys.rs crates/crypto/src/keystore.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/digest.rs:
crates/crypto/src/keys.rs:
crates/crypto/src/keystore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
