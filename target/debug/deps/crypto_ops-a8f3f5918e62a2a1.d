/root/repo/target/debug/deps/crypto_ops-a8f3f5918e62a2a1.d: crates/bench/benches/crypto_ops.rs Cargo.toml

/root/repo/target/debug/deps/libcrypto_ops-a8f3f5918e62a2a1.rmeta: crates/bench/benches/crypto_ops.rs Cargo.toml

crates/bench/benches/crypto_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
