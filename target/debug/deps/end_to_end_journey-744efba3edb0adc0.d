/root/repo/target/debug/deps/end_to_end_journey-744efba3edb0adc0.d: crates/integration/../../tests/end_to_end_journey.rs

/root/repo/target/debug/deps/end_to_end_journey-744efba3edb0adc0: crates/integration/../../tests/end_to_end_journey.rs

crates/integration/../../tests/end_to_end_journey.rs:
