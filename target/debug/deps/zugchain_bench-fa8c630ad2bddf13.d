/root/repo/target/debug/deps/zugchain_bench-fa8c630ad2bddf13.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/zugchain_bench-fa8c630ad2bddf13: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
