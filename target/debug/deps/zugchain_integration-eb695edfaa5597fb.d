/root/repo/target/debug/deps/zugchain_integration-eb695edfaa5597fb.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain_integration-eb695edfaa5597fb.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
