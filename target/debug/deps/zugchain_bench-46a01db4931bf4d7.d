/root/repo/target/debug/deps/zugchain_bench-46a01db4931bf4d7.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain_bench-46a01db4931bf4d7.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
