/root/repo/target/debug/deps/export_integration-80e094daecfeb9cd.d: crates/integration/../../tests/export_integration.rs

/root/repo/target/debug/deps/export_integration-80e094daecfeb9cd: crates/integration/../../tests/export_integration.rs

crates/integration/../../tests/export_integration.rs:
