/root/repo/target/debug/deps/jru_pipeline_properties-7771c01fc08fdd83.d: crates/integration/../../tests/jru_pipeline_properties.rs

/root/repo/target/debug/deps/jru_pipeline_properties-7771c01fc08fdd83: crates/integration/../../tests/jru_pipeline_properties.rs

crates/integration/../../tests/jru_pipeline_properties.rs:
