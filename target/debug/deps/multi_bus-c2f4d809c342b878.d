/root/repo/target/debug/deps/multi_bus-c2f4d809c342b878.d: crates/integration/../../tests/multi_bus.rs

/root/repo/target/debug/deps/multi_bus-c2f4d809c342b878: crates/integration/../../tests/multi_bus.rs

crates/integration/../../tests/multi_bus.rs:
