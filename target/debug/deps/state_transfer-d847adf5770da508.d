/root/repo/target/debug/deps/state_transfer-d847adf5770da508.d: crates/integration/../../tests/state_transfer.rs

/root/repo/target/debug/deps/state_transfer-d847adf5770da508: crates/integration/../../tests/state_transfer.rs

crates/integration/../../tests/state_transfer.rs:
