/root/repo/target/debug/deps/zugchain-f2a4c0a5751a3dda.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs crates/core/src/node/testutil.rs crates/core/src/node/tests.rs

/root/repo/target/debug/deps/zugchain-f2a4c0a5751a3dda: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs crates/core/src/node/testutil.rs crates/core/src/node/tests.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/config.rs:
crates/core/src/dedup.rs:
crates/core/src/messages.rs:
crates/core/src/node.rs:
crates/core/src/node/testutil.rs:
crates/core/src/node/tests.rs:
