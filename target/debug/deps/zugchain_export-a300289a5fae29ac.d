/root/repo/target/debug/deps/zugchain_export-a300289a5fae29ac.d: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

/root/repo/target/debug/deps/libzugchain_export-a300289a5fae29ac.rlib: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

/root/repo/target/debug/deps/libzugchain_export-a300289a5fae29ac.rmeta: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

crates/export/src/lib.rs:
crates/export/src/datacenter.rs:
crates/export/src/messages.rs:
crates/export/src/replica.rs:
crates/export/src/transfer.rs:
