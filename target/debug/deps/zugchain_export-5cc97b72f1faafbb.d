/root/repo/target/debug/deps/zugchain_export-5cc97b72f1faafbb.d: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

/root/repo/target/debug/deps/libzugchain_export-5cc97b72f1faafbb.rlib: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

/root/repo/target/debug/deps/libzugchain_export-5cc97b72f1faafbb.rmeta: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

crates/export/src/lib.rs:
crates/export/src/datacenter.rs:
crates/export/src/messages.rs:
crates/export/src/replica.rs:
crates/export/src/transfer.rs:
