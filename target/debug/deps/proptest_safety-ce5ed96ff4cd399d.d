/root/repo/target/debug/deps/proptest_safety-ce5ed96ff4cd399d.d: crates/pbft/tests/proptest_safety.rs

/root/repo/target/debug/deps/proptest_safety-ce5ed96ff4cd399d: crates/pbft/tests/proptest_safety.rs

crates/pbft/tests/proptest_safety.rs:
