/root/repo/target/debug/deps/zugchain-ca7c3ce6ea6c9cbd.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs Cargo.toml

/root/repo/target/debug/deps/libzugchain-ca7c3ce6ea6c9cbd.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/config.rs:
crates/core/src/dedup.rs:
crates/core/src/messages.rs:
crates/core/src/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
