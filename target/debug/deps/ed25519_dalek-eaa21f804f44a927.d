/root/repo/target/debug/deps/ed25519_dalek-eaa21f804f44a927.d: shims/ed25519-dalek/src/lib.rs

/root/repo/target/debug/deps/libed25519_dalek-eaa21f804f44a927.rlib: shims/ed25519-dalek/src/lib.rs

/root/repo/target/debug/deps/libed25519_dalek-eaa21f804f44a927.rmeta: shims/ed25519-dalek/src/lib.rs

shims/ed25519-dalek/src/lib.rs:
