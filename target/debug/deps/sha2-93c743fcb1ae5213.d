/root/repo/target/debug/deps/sha2-93c743fcb1ae5213.d: shims/sha2/src/lib.rs

/root/repo/target/debug/deps/libsha2-93c743fcb1ae5213.rlib: shims/sha2/src/lib.rs

/root/repo/target/debug/deps/libsha2-93c743fcb1ae5213.rmeta: shims/sha2/src/lib.rs

shims/sha2/src/lib.rs:
