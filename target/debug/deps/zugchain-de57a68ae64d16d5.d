/root/repo/target/debug/deps/zugchain-de57a68ae64d16d5.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs

/root/repo/target/debug/deps/libzugchain-de57a68ae64d16d5.rlib: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs

/root/repo/target/debug/deps/libzugchain-de57a68ae64d16d5.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/config.rs:
crates/core/src/dedup.rs:
crates/core/src/messages.rs:
crates/core/src/node.rs:
