/root/repo/target/debug/deps/zugchain-7b435122323335ba.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs

/root/repo/target/debug/deps/libzugchain-7b435122323335ba.rlib: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs

/root/repo/target/debug/deps/libzugchain-7b435122323335ba.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/dedup.rs crates/core/src/messages.rs crates/core/src/node.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/config.rs:
crates/core/src/dedup.rs:
crates/core/src/messages.rs:
crates/core/src/node.rs:
