/root/repo/target/debug/deps/zugchain_integration-67574d2462af1239.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/zugchain_integration-67574d2462af1239: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
