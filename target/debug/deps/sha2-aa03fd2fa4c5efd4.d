/root/repo/target/debug/deps/sha2-aa03fd2fa4c5efd4.d: shims/sha2/src/lib.rs

/root/repo/target/debug/deps/sha2-aa03fd2fa4c5efd4: shims/sha2/src/lib.rs

shims/sha2/src/lib.rs:
