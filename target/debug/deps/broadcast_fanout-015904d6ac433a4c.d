/root/repo/target/debug/deps/broadcast_fanout-015904d6ac433a4c.d: crates/bench/benches/broadcast_fanout.rs Cargo.toml

/root/repo/target/debug/deps/libbroadcast_fanout-015904d6ac433a4c.rmeta: crates/bench/benches/broadcast_fanout.rs Cargo.toml

crates/bench/benches/broadcast_fanout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
