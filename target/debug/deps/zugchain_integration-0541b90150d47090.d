/root/repo/target/debug/deps/zugchain_integration-0541b90150d47090.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libzugchain_integration-0541b90150d47090.rlib: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libzugchain_integration-0541b90150d47090.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
