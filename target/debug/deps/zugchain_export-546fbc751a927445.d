/root/repo/target/debug/deps/zugchain_export-546fbc751a927445.d: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

/root/repo/target/debug/deps/libzugchain_export-546fbc751a927445.rlib: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

/root/repo/target/debug/deps/libzugchain_export-546fbc751a927445.rmeta: crates/export/src/lib.rs crates/export/src/datacenter.rs crates/export/src/messages.rs crates/export/src/replica.rs crates/export/src/transfer.rs

crates/export/src/lib.rs:
crates/export/src/datacenter.rs:
crates/export/src/messages.rs:
crates/export/src/replica.rs:
crates/export/src/transfer.rs:
