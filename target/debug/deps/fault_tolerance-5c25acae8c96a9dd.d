/root/repo/target/debug/deps/fault_tolerance-5c25acae8c96a9dd.d: crates/integration/../../tests/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfault_tolerance-5c25acae8c96a9dd.rmeta: crates/integration/../../tests/fault_tolerance.rs Cargo.toml

crates/integration/../../tests/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
