/root/repo/target/debug/deps/end_to_end_journey-3168da5a17d3d2e4.d: crates/integration/../../tests/end_to_end_journey.rs

/root/repo/target/debug/deps/end_to_end_journey-3168da5a17d3d2e4: crates/integration/../../tests/end_to_end_journey.rs

crates/integration/../../tests/end_to_end_journey.rs:
