/root/repo/target/debug/examples/quickstart-8b1b4efd200f056b.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8b1b4efd200f056b: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
