/root/repo/target/debug/examples/train_journey-3f853ed2823940ce.d: crates/core/../../examples/train_journey.rs

/root/repo/target/debug/examples/train_journey-3f853ed2823940ce: crates/core/../../examples/train_journey.rs

crates/core/../../examples/train_journey.rs:
