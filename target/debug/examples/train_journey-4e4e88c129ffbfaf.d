/root/repo/target/debug/examples/train_journey-4e4e88c129ffbfaf.d: crates/core/../../examples/train_journey.rs Cargo.toml

/root/repo/target/debug/examples/libtrain_journey-4e4e88c129ffbfaf.rmeta: crates/core/../../examples/train_journey.rs Cargo.toml

crates/core/../../examples/train_journey.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
