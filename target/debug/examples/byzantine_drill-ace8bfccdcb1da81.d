/root/repo/target/debug/examples/byzantine_drill-ace8bfccdcb1da81.d: crates/core/../../examples/byzantine_drill.rs

/root/repo/target/debug/examples/byzantine_drill-ace8bfccdcb1da81: crates/core/../../examples/byzantine_drill.rs

crates/core/../../examples/byzantine_drill.rs:
