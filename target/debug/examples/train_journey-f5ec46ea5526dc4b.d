/root/repo/target/debug/examples/train_journey-f5ec46ea5526dc4b.d: crates/core/../../examples/train_journey.rs

/root/repo/target/debug/examples/train_journey-f5ec46ea5526dc4b: crates/core/../../examples/train_journey.rs

crates/core/../../examples/train_journey.rs:
