/root/repo/target/debug/examples/accident_forensics-445da7eac62932d2.d: crates/core/../../examples/accident_forensics.rs

/root/repo/target/debug/examples/accident_forensics-445da7eac62932d2: crates/core/../../examples/accident_forensics.rs

crates/core/../../examples/accident_forensics.rs:
