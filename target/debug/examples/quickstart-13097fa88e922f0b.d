/root/repo/target/debug/examples/quickstart-13097fa88e922f0b.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-13097fa88e922f0b: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
