/root/repo/target/debug/examples/accident_forensics-3fd2cb9e8eb4a274.d: crates/core/../../examples/accident_forensics.rs Cargo.toml

/root/repo/target/debug/examples/libaccident_forensics-3fd2cb9e8eb4a274.rmeta: crates/core/../../examples/accident_forensics.rs Cargo.toml

crates/core/../../examples/accident_forensics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
