/root/repo/target/debug/examples/byzantine_drill-b0b92cf811412b87.d: crates/core/../../examples/byzantine_drill.rs

/root/repo/target/debug/examples/byzantine_drill-b0b92cf811412b87: crates/core/../../examples/byzantine_drill.rs

crates/core/../../examples/byzantine_drill.rs:
