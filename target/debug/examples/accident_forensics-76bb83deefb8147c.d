/root/repo/target/debug/examples/accident_forensics-76bb83deefb8147c.d: crates/core/../../examples/accident_forensics.rs

/root/repo/target/debug/examples/accident_forensics-76bb83deefb8147c: crates/core/../../examples/accident_forensics.rs

crates/core/../../examples/accident_forensics.rs:
