/root/repo/target/debug/examples/byzantine_drill-d8e41c33b351f819.d: crates/core/../../examples/byzantine_drill.rs Cargo.toml

/root/repo/target/debug/examples/libbyzantine_drill-d8e41c33b351f819.rmeta: crates/core/../../examples/byzantine_drill.rs Cargo.toml

crates/core/../../examples/byzantine_drill.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
