/root/repo/target/debug/libed25519_dalek.rlib: /root/repo/shims/ed25519-dalek/src/lib.rs /root/repo/shims/sha2/src/lib.rs
