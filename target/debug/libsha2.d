/root/repo/target/debug/libsha2.rlib: /root/repo/shims/sha2/src/lib.rs
