/root/repo/target/debug/libzugchain_integration.rlib: /root/repo/crates/integration/src/lib.rs
