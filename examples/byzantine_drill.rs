//! Byzantine drill: the deterministic simulator under attack.
//!
//! Reproduces the paper's §V-B Byzantine evaluation interactively — a
//! fabricating backup, a stalling primary, and a primary crash — and
//! prints how latency, CPU and view changes respond.
//!
//! ```text
//! cargo run --release --example byzantine_drill
//! ```

use zugchain_sim::{run_scenario, Mode, ScenarioConfig, SimFaults, Workload};

fn scenario(faults: SimFaults) -> ScenarioConfig {
    ScenarioConfig {
        mode: Mode::Zugchain,
        duration_ms: 20_000,
        bus_cycle_ms: 64,
        workload: Workload::SyntheticPayload { bytes: 1024 },
        faults,
        ..ScenarioConfig::default()
    }
}

fn main() {
    println!("ZugChain Byzantine drill — 4 nodes, f = 1, 64 ms bus cycle\n");

    let clean = run_scenario(&scenario(SimFaults::default()), 1);
    println!("baseline (no faults):");
    println!(
        "  latency {:.1} ms | cpu {:.1}% of total | {} requests logged | {} view changes\n",
        clean.latency.mean_ms(),
        clean.cpu_percent_of_total,
        clean.logged_requests,
        clean.view_changes
    );

    println!("attack 1: backup node 3 fabricates a request every cycle");
    let fabricate = run_scenario(
        &scenario(SimFaults {
            fabricate: Some((3, 1.0)),
            ..SimFaults::default()
        }),
        1,
    );
    println!(
        "  latency {:.1} ms (+{:.0}%) | cpu {:.1}% (+{:.0}%) | logged {} (incl. fabricated, attributed to node 3)",
        fabricate.latency.mean_ms(),
        (fabricate.latency.mean_ms() / clean.latency.mean_ms() - 1.0) * 100.0,
        fabricate.cpu_percent_of_total,
        (fabricate.cpu_percent_of_total / clean.cpu_percent_of_total - 1.0) * 100.0,
        fabricate.logged_requests,
    );
    println!("  → rate limiting keeps ordering within JRU bounds\n");

    println!("attack 2: primary delays its preprepares by 250 ms");
    let mut stall_config = scenario(SimFaults {
        primary_preprepare_delay_ms: Some(250),
        ..SimFaults::default()
    });
    stall_config.node_config = stall_config.node_config.with_timeouts(300, 300);
    let stall = run_scenario(&stall_config, 1);
    println!(
        "  latency {:.1} ms | view changes {} (soft timeouts absorb the stall)\n",
        stall.latency.mean_ms(),
        stall.view_changes
    );

    println!("attack 3: primary crashes at t = 8 s");
    let crash = run_scenario(
        &scenario(SimFaults {
            crash: Some((0, 8_000)),
            ..SimFaults::default()
        }),
        1,
    );
    let worst = crash
        .latency
        .samples
        .iter()
        .filter(|(birth, _)| (8_000.0..10_000.0).contains(birth))
        .map(|(_, l)| *l)
        .fold(0.0, f64::max);
    let after: Vec<f64> = crash
        .latency
        .samples
        .iter()
        .filter(|(birth, _)| *birth > 11_000.0)
        .map(|(_, l)| *l)
        .collect();
    let stabilized = after.iter().sum::<f64>() / after.len().max(1) as f64;
    println!(
        "  view changes {} | worst latency during fail-over {:.0} ms | stabilized at {:.1} ms",
        crash.view_changes, worst, stabilized
    );
    println!(
        "  → no request was lost: {} unlogged",
        crash.unlogged_requests
    );
}
