//! Accident forensics: the scenario the JRU exists for.
//!
//! A train brakes hard; moments later three of the four ZugChain nodes
//! are destroyed in the crash. The single surviving node's blockchain is
//! salvaged, its integrity is verified externally, and the recorded
//! events are reconstructed — including a tamper check demonstrating why
//! a blockchain beats independent log files.
//!
//! ```text
//! cargo run --example accident_forensics
//! ```

use std::time::Duration;

use zugchain::NodeConfig;
use zugchain_mvb::{Bus, BusConfig, SignalGenerator};
use zugchain_signals::analysis::Timeline;
use zugchain_signals::Request;
use zugchain_sim::runtime::ThreadedCluster;

fn main() {
    println!("» Regular operation: recording ATP data");
    let config = NodeConfig::evaluation_default().with_block_size(4);
    let cluster = ThreadedCluster::start(4, config);

    let mut bus = Bus::new(BusConfig::jru_default(64), 4, 3);
    // The drill scripts an emergency braking 4 s into the run; the
    // "impact" follows while the train is still decelerating.
    bus.attach_device(Box::new(SignalGenerator::with_emergency_at(1337, 4_000)));

    for _ in 0..100 {
        let out = bus.run_cycle();
        for obs in out.observations {
            cluster.feed_telegrams(obs.tap, out.cycle, out.time_ms, obs.telegrams);
        }
        std::thread::sleep(Duration::from_millis(4));
    }
    std::thread::sleep(Duration::from_millis(400));

    println!("» IMPACT — nodes 0, 2 and 3 are destroyed");
    cluster.crash(0);
    cluster.crash(2);
    cluster.crash(3);
    std::thread::sleep(Duration::from_millis(100));

    let summaries = cluster.shutdown();
    // Salvage the single surviving node (node 1).
    let survivor = &summaries[1];
    println!(
        "» Salvage: node {} recovered with chain height {}",
        survivor.id.0,
        survivor.chain.height()
    );

    // --- Lab analysis -------------------------------------------------------
    // 1. Integrity: the chain verifies from genesis without trusting the
    //    salvaged device.
    zugchain_blockchain::verify_chain(survivor.chain.blocks(), None)
        .expect("salvaged chain must verify");
    println!("  chain integrity: VERIFIED (hash-linked from genesis)");

    // 2. Checkpoint signatures: each block is backed by 2f+1 replica
    //    signatures, so even one surviving copy is trustworthy evidence.
    let verified_proofs = survivor
        .stable_proofs
        .iter()
        .filter(|proof| proof.verify(&summaries_keystore(), 3))
        .count();
    println!(
        "  {} of {} per-block checkpoints carry valid 2f+1 signatures",
        verified_proofs,
        survivor.stable_proofs.len()
    );

    // 3. Event reconstruction: decode the logged requests back into JRU
    //    events and run the post-operational analysis (§III-B's "lab
    //    analysis") over the salvaged chain.
    let decoded = survivor.chain.blocks().iter().flat_map(|block| {
        block.requests.iter().filter_map(|logged| {
            let request = zugchain_wire::from_bytes::<Request>(&logged.payload).ok()?;
            Some((logged.sn, logged.origin, request))
        })
    });
    let timeline = Timeline::from_requests(decoded);
    for finding in timeline.findings() {
        println!("  finding: {finding}");
    }
    let last_speed = timeline
        .speed_profile()
        .last()
        .map(|(_, s)| *s)
        .unwrap_or(0);
    println!(
        "  reconstruction: {} events, max speed {:.1} km/h, last recorded speed {:.1} km/h",
        timeline.events().len(),
        f64::from(timeline.max_speed_ckmh().unwrap_or(0)) / 100.0,
        f64::from(last_speed) / 100.0
    );
    println!(
        "  events per origin node: {:?} (attribution survives the crash)",
        timeline.events_by_origin()
    );
    assert!(
        timeline.emergency_brakings().count() >= 1,
        "the emergency braking must be on the chain"
    );

    // 4. Tamper demonstration: altering a single recorded byte after the
    //    fact is detected immediately.
    let mut tampered: Vec<_> = survivor.chain.blocks().to_vec();
    if let Some(first) = tampered.iter_mut().find(|block| !block.requests.is_empty()) {
        first.requests[0].payload[0] ^= 0xFF;
    }
    assert!(
        zugchain_blockchain::verify_chain(&tampered, None).is_err(),
        "tampering must be detected"
    );
    println!("  tamper check: single-byte manipulation detected ✓");
    println!("» Forensics complete: juridical record intact despite losing 3 of 4 nodes");
}

/// The cluster keystore is deterministic (seed 0xC10C in the runtime);
/// rebuild it for verification, as an external analyst would load the
/// registered public keys.
fn summaries_keystore() -> zugchain_crypto::Keystore {
    let (_, keystore) = zugchain_crypto::Keystore::generate(4, 0xC10C);
    keystore
}
