//! Quickstart: a 4-node ZugChain cluster in one process.
//!
//! Starts the threaded runtime, feeds a few bus cycles, and shows the
//! resulting identical, verified blockchains on every node.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use zugchain::NodeConfig;
use zugchain_sim::runtime::{ClusterEvent, ThreadedCluster};

fn main() {
    println!("Starting a 4-node ZugChain cluster (n=4, f=1)…");
    let config = NodeConfig::evaluation_default().with_block_size(5);
    let cluster = ThreadedCluster::start(4, config);

    // Simulate 15 bus cycles: every node reads the same consolidated
    // cycle data, as on a real MVB.
    for cycle in 0u64..15 {
        let payload = format!("cycle {cycle}: v_actual={} km/h", 80 + cycle);
        cluster.feed_bus_payload_all(payload.into_bytes());
        std::thread::sleep(Duration::from_millis(40));
    }
    std::thread::sleep(Duration::from_millis(400));

    // Show what happened.
    let mut logged = 0;
    let mut blocks = 0;
    while let Ok(event) = cluster.events().try_recv() {
        match event {
            ClusterEvent::Logged {
                node, sn, origin, ..
            } if node.0 == 0 => {
                logged += 1;
                println!("  logged sn {sn} (origin {origin})");
            }
            ClusterEvent::BlockCreated { node, height, hash } if node.0 == 0 => {
                blocks += 1;
                println!("  block #{height} created: {hash}");
            }
            ClusterEvent::CheckpointStable { node, sn } if node.0 == 0 => {
                println!("  checkpoint stable at sn {sn} (2f+1 signatures)");
            }
            _ => {}
        }
    }

    let summaries = cluster.shutdown();
    println!("\nPer-node results:");
    for summary in &summaries {
        println!(
            "  node {}: {} requests logged, chain height {}, head {}",
            summary.id.0,
            summary.stats.logged,
            summary.chain.height(),
            summary.chain.head_hash().short(),
        );
        assert!(
            zugchain_blockchain::verify_chain(summary.chain.blocks(), None).is_ok(),
            "chain verifies"
        );
    }
    let head = summaries[0].chain.head_hash();
    assert!(
        summaries.iter().all(|s| s.chain.head_hash() == head),
        "all nodes hold the identical chain"
    );
    println!("\n{logged} requests ordered, {blocks} blocks, all chains identical & verified ✓");
}
