//! A realistic train journey: the ATP signal generator drives the
//! simulated MVB; ZugChain nodes parse, filter, and order the JRU events;
//! blocks are exported to two company data centers and pruned on-train.
//!
//! This is the paper's Fig. 2 end to end: bus → blockchain → export.
//!
//! ```text
//! cargo run --example train_journey
//! ```

use std::time::Duration;

use zugchain::NodeConfig;
use zugchain_crypto::Keystore;
use zugchain_export::{
    DataCenter, DcAddr, DcConfig, DcEffect, DcId, ExportMessage, ExportReplica, ReplicaExportConfig,
};
use zugchain_mvb::{Bus, BusConfig, SignalGenerator};
use zugchain_pbft::NodeId;
use zugchain_sim::runtime::{ClusterEvent, ThreadedCluster};
use zugchain_wire::TrainId;

fn main() {
    // --- On the train -----------------------------------------------------
    println!("» Train departs: MVB at 64 ms cycles, ATP generator running");
    let config = NodeConfig::evaluation_default().with_block_size(5);
    let cluster = ThreadedCluster::start(4, config);

    let bus_config = BusConfig::jru_default(64);
    let mut bus = Bus::new(bus_config, 4, 7);
    bus.attach_device(Box::new(SignalGenerator::new(2026)));

    // Drive 120 bus cycles (~7.7 s of train time, accelerating phase).
    for _ in 0..120 {
        let out = bus.run_cycle();
        for obs in out.observations {
            cluster.feed_telegrams(obs.tap, out.cycle, out.time_ms, obs.telegrams);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(500));

    let mut speed_events = 0u32;
    let mut blocks = 0u32;
    while let Ok(event) = cluster.events().try_recv() {
        match event {
            ClusterEvent::Logged { node, .. } if node.0 == 0 => speed_events += 1,
            ClusterEvent::BlockCreated { node, .. } if node.0 == 0 => blocks += 1,
            _ => {}
        }
    }
    println!("  {speed_events} juridical events ordered into {blocks} blocks");

    let replica_keystore = cluster.keystore.clone();
    let pairs = cluster.pairs.clone();
    let summaries = cluster.shutdown();
    let mut chains: Vec<_> = summaries.iter().map(|s| s.chain.clone()).collect();
    let proofs: Vec<_> = summaries.iter().map(|s| s.stable_proofs.clone()).collect();
    println!(
        "  on-train chain height: {} ({} KiB resident)",
        chains[0].height(),
        chains[0].resident_bytes() / 1024
    );

    // --- In range of a cell tower ------------------------------------------
    println!("» LTE connectivity: two company data centers start the export");
    let (dc_pairs, dc_keystore) = Keystore::generate(2, 4_242);
    let mut replicas: Vec<ExportReplica> = (0..4)
        .map(|id| {
            ExportReplica::new(
                NodeId(id as u64),
                pairs[id].clone(),
                dc_keystore.clone(),
                ReplicaExportConfig { delete_quorum: 2 },
            )
        })
        .collect();
    let mut dc0 = DataCenter::new(
        DcConfig {
            id: DcId(0),
            train: TrainId::DEFAULT,
            n_replicas: 4,
            replica_quorum: 3,
            peers: vec![DcId(1)],
        },
        dc_pairs[0].clone(),
        replica_keystore.clone(),
        3,
    );
    let mut dc1 = DataCenter::new(
        DcConfig {
            id: DcId(1),
            train: TrainId::DEFAULT,
            n_replicas: 4,
            replica_quorum: 3,
            peers: vec![DcId(0)],
        },
        dc_pairs[1].clone(),
        replica_keystore,
        3,
    );

    let mut effects = dc0.begin_export(NodeId(1));
    while let Some(effect) = effects.pop() {
        match effect {
            DcEffect::Broadcast { message } => {
                for id in 0..4usize {
                    for reply in replicas[id].handle(message.clone(), &mut chains[id], &proofs[id])
                    {
                        if matches!(reply, ExportMessage::Ack(_)) {
                            dc0.on_replica_message(NodeId(id as u64), reply.clone());
                            dc1.on_replica_message(NodeId(id as u64), reply);
                        } else {
                            effects.extend(dc0.on_replica_message(NodeId(id as u64), reply));
                        }
                    }
                }
            }
            DcEffect::Send {
                to: DcAddr::Replica(to),
                message,
            } => {
                let id = to.0 as usize;
                for reply in replicas[id].handle(message, &mut chains[id], &proofs[id]) {
                    effects.extend(dc0.on_replica_message(NodeId(id as u64), reply));
                }
            }
            DcEffect::Send {
                to: DcAddr::DataCenter(_),
                message,
            } => {
                effects.extend(dc1.on_dc_sync(message));
            }
            DcEffect::Output(outcome) => {
                println!(
                    "  exported {} blocks (archive height {}), delete issued: {}",
                    outcome.exported_blocks, outcome.new_height, outcome.delete_issued
                );
            }
            effect => panic!("unexpected effect {effect:?}"),
        }
    }

    assert!(dc0.verify_archive() && dc1.verify_archive());
    println!(
        "  both data centers verified the chain independently (heights {} / {})",
        dc0.archive_height(),
        dc1.archive_height()
    );
    println!(
        "  on-train store pruned to {} resident blocks ({} KiB)",
        chains[0].len(),
        chains[0].resident_bytes() / 1024
    );
    println!("» Journey complete: juridical record safe in two data centers ✓");
}
