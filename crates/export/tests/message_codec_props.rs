//! Property tests for the export-protocol wire codec: every
//! [`ExportMessage`] variant must survive an encode/decode roundtrip
//! unchanged, every strict prefix of an encoding must be rejected (a
//! torn TCP read never yields a phantom protocol step), and trailing
//! garbage after a valid encoding must be rejected.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use zugchain_blockchain::{Block, BlockBuilder, LoggedRequest};
use zugchain_crypto::{Digest, KeyPair, Keystore};
use zugchain_export::{CheckpointReply, DcId, DeleteCmd, ExportMessage, SignedAck, SignedDelete};
use zugchain_pbft::{Checkpoint, CheckpointProof, NodeId};
use zugchain_wire::{from_bytes, to_bytes, TrainId};

/// Roundtrip + truncation + trailing-garbage checks for one message.
fn check_codec(message: &ExportMessage, garbage: &[u8]) -> Result<(), TestCaseError> {
    let bytes = to_bytes(message);

    let decoded: ExportMessage = match from_bytes(&bytes) {
        Ok(decoded) => decoded,
        Err(e) => return Err(TestCaseError::fail(format!("decode failed: {e:?}"))),
    };
    prop_assert_eq!(&decoded, message);

    for cut in 0..bytes.len() {
        prop_assert!(
            from_bytes::<ExportMessage>(&bytes[..cut]).is_err(),
            "prefix of length {} of a {}-byte encoding decoded",
            cut,
            bytes.len(),
        );
    }

    let mut extended = bytes;
    extended.extend_from_slice(garbage);
    prop_assert!(
        from_bytes::<ExportMessage>(&extended).is_err(),
        "encoding with {} trailing garbage bytes decoded",
        garbage.len(),
    );
    Ok(())
}

/// Builds a valid chain of single-request blocks from the payloads.
fn sample_blocks(payloads: &[Vec<u8>]) -> Vec<Block> {
    let mut builder = BlockBuilder::new(1);
    let mut blocks = Vec::new();
    for (index, payload) in payloads.iter().enumerate() {
        let request = LoggedRequest {
            sn: index as u64 + 1,
            origin: index as u64 % 4,
            payload: payload.clone(),
        };
        if let Some(block) = builder.push(request, 10 * (index as u64 + 1)) {
            blocks.push(block);
        }
    }
    blocks
}

/// A checkpoint proof over `digest`, signed by every replica key.
fn sample_proof(sn: u64, digest: Digest, keys: &[KeyPair]) -> CheckpointProof {
    let checkpoint = Checkpoint {
        sn,
        state_digest: digest,
    };
    CheckpointProof {
        signatures: keys
            .iter()
            .enumerate()
            .map(|(id, key)| (NodeId(id as u64), key.sign(&to_bytes(&checkpoint))))
            .collect(),
        checkpoint,
    }
}

/// One exemplar of every [`ExportMessage`] variant (the optional
/// checkpoint reply gets both its populated and empty form).
fn export_messages(
    train: TrainId,
    height: u64,
    sn: u64,
    payloads: &[Vec<u8>],
    replica_keys: &[KeyPair],
    dc_key: &KeyPair,
) -> Vec<ExportMessage> {
    let blocks = sample_blocks(payloads);
    let head_hash = blocks.last().map_or(Digest::ZERO, Block::hash);
    let proof = sample_proof(sn, head_hash, replica_keys);
    let cmd = DeleteCmd {
        height,
        hash: head_hash,
    };
    vec![
        ExportMessage::Read {
            train,
            last_height: height,
            blocks_from: NodeId(height % 4),
        },
        ExportMessage::Checkpoint(CheckpointReply {
            proof: Some(proof.clone()),
            block_height: height,
            block_hash: head_hash,
        }),
        ExportMessage::Checkpoint(CheckpointReply {
            proof: None,
            block_height: 0,
            block_hash: Digest::ZERO,
        }),
        ExportMessage::Blocks {
            blocks: blocks.clone(),
        },
        ExportMessage::BlockRange {
            from_height: height,
            to_height: height + payloads.len() as u64,
        },
        ExportMessage::Delete(SignedDelete::sign(cmd, DcId(0), dc_key)),
        ExportMessage::Ack(SignedAck::sign(cmd, NodeId(1), &replica_keys[1])),
        ExportMessage::DcSync {
            train,
            proof,
            blocks,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    /// All eight export-protocol message shapes roundtrip and reject
    /// torn or padded encodings.
    fn export_message_codec_is_exact(
        train in any::<u64>(),
        height in 0u64..100_000,
        sn in 0u64..100_000,
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..32),
            0..4,
        ),
        garbage in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        let (replica_keys, _) = Keystore::generate(4, 0xE1);
        let (dc_keys, _) = Keystore::generate(1, 0xDC);
        let messages = export_messages(
            TrainId(train), height, sn, &payloads, &replica_keys, &dc_keys[0],
        );
        for message in messages {
            check_codec(&message, &garbage)?;
        }
    }
}
