use std::fmt;

use zugchain_blockchain::Block;
use zugchain_blockchain::{verify_chain, ChainStore, ChainViolation, PrunedBase};
use zugchain_crypto::Keystore;
use zugchain_pbft::CheckpointProof;

use crate::SignedDelete;

/// The state package transferred to a lagging or recovering replica
/// (paper §III-D, error scenario (ii)).
///
/// Because replicas prune after export, verification cannot start at the
/// genesis block: the package therefore includes the signed deletes that
/// authorize — and cryptographically anchor — the base of the pruned
/// chain.
#[derive(Debug, Clone)]
pub struct TransferPackage {
    /// The stable checkpoint the transfer ends at.
    pub proof: CheckpointProof,
    /// Blocks from the (pruned) base up to the checkpointed block.
    pub blocks: Vec<Block>,
    /// The signed deletes anchoring the first block's predecessor, empty
    /// if the chain still starts at genesis.
    pub base_deletes: Vec<SignedDelete>,
}

/// Why a transfer package was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StateTransferError {
    /// The checkpoint proof did not verify.
    BadCheckpointProof,
    /// The chain segment is internally inconsistent.
    BadChain(ChainViolation),
    /// The last block does not match the checkpoint digest.
    CheckpointMismatch,
    /// The base is not anchored: deletes missing, unverifiable, or not
    /// matching the first block's `prev_hash`.
    UnanchoredBase,
}

impl fmt::Display for StateTransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateTransferError::BadCheckpointProof => write!(f, "checkpoint proof does not verify"),
            StateTransferError::BadChain(v) => write!(f, "invalid chain segment: {v}"),
            StateTransferError::CheckpointMismatch => {
                write!(f, "last block does not match the checkpoint digest")
            }
            StateTransferError::UnanchoredBase => {
                write!(f, "pruned base is not anchored by signed deletes")
            }
        }
    }
}

impl std::error::Error for StateTransferError {}

/// Verifies a transfer package and installs it as the replica's chain.
///
/// Checks, in order: the 2f+1-signed checkpoint proof, the chain segment's
/// internal integrity, that the segment ends at the checkpointed block,
/// and — when the segment does not start at genesis — that its base is
/// anchored by at least `delete_quorum` valid data-center deletes for
/// exactly the first block's predecessor.
///
/// # Errors
///
/// A [`StateTransferError`] naming the first failed check; the returned
/// store is only produced when everything verifies.
pub fn install_transfer(
    package: &TransferPackage,
    replica_keystore: &Keystore,
    dc_keystore: &Keystore,
    checkpoint_quorum: usize,
    delete_quorum: usize,
) -> Result<ChainStore, StateTransferError> {
    if !package.proof.verify(replica_keystore, checkpoint_quorum) {
        return Err(StateTransferError::BadCheckpointProof);
    }
    let first = package
        .blocks
        .first()
        .ok_or(StateTransferError::BadChain(ChainViolation::Empty))?;

    let genesis = Block::genesis();
    let mut store = if first.header.prev_hash == genesis.hash() {
        ChainStore::new()
    } else {
        // Pruned chain: the base must be anchored by signed deletes for
        // the block the segment chains onto.
        let base_height = first.height() - 1;
        let base_hash = first.header.prev_hash;
        let mut distinct = std::collections::BTreeSet::new();
        for delete in &package.base_deletes {
            if delete.cmd.height == base_height
                && delete.cmd.hash == base_hash
                && delete.verify(dc_keystore)
            {
                distinct.insert(delete.dc.0);
            }
        }
        if distinct.len() < delete_quorum {
            return Err(StateTransferError::UnanchoredBase);
        }
        ChainStore::resume(PrunedBase {
            height: base_height,
            hash: base_hash,
            delete_proof: zugchain_wire::to_bytes(&{
                let mut w = zugchain_wire::Writer::new();
                zugchain_wire::encode_seq(&package.base_deletes, &mut w);
                w.into_bytes()
            }),
        })
    };

    verify_chain(&package.blocks, Some(first.header.prev_hash))
        .map_err(StateTransferError::BadChain)?;

    let last = package.blocks.last().expect("nonempty checked above");
    if last.hash() != package.proof.checkpoint.state_digest
        || last.header.last_sn != package.proof.checkpoint.sn
    {
        return Err(StateTransferError::CheckpointMismatch);
    }

    for block in &package.blocks {
        store
            .append(block.clone())
            .map_err(|_| StateTransferError::BadChain(ChainViolation::Empty))?;
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DcId, DeleteCmd};
    use zugchain_blockchain::{BlockBuilder, LoggedRequest};
    use zugchain_pbft::{Checkpoint, NodeId};

    fn chain(n_blocks: u64) -> Vec<Block> {
        let mut builder = BlockBuilder::new(2);
        let mut blocks = Vec::new();
        for sn in 1..=n_blocks * 2 {
            if let Some(block) = builder.push(
                LoggedRequest {
                    sn,
                    origin: 0,
                    payload: vec![sn as u8; 8],
                },
                sn * 64,
            ) {
                blocks.push(block);
            }
        }
        blocks
    }

    fn proof_for(block: &Block, pairs: &[zugchain_crypto::KeyPair]) -> CheckpointProof {
        let checkpoint = Checkpoint {
            sn: block.header.last_sn,
            state_digest: block.hash(),
        };
        let message = zugchain_wire::to_bytes(&zugchain_pbft::Message::Checkpoint(checkpoint));
        CheckpointProof {
            checkpoint,
            signatures: (0..3)
                .map(|id| (NodeId(id as u64), pairs[id].sign(&message)))
                .collect(),
        }
    }

    #[test]
    fn transfer_from_genesis_installs() {
        let (pairs, keystore) = Keystore::generate(4, 80);
        let (_, dc_keystore) = Keystore::generate(2, 81);
        let blocks = chain(3);
        let package = TransferPackage {
            proof: proof_for(&blocks[2], &pairs),
            blocks: blocks.clone(),
            base_deletes: vec![],
        };
        let store = install_transfer(&package, &keystore, &dc_keystore, 3, 2).unwrap();
        assert_eq!(store.height(), 3);
        assert_eq!(store.head_hash(), blocks[2].hash());
    }

    #[test]
    fn pruned_transfer_requires_anchoring_deletes() {
        let (pairs, keystore) = Keystore::generate(4, 80);
        let (dc_pairs, dc_keystore) = Keystore::generate(2, 81);
        let blocks = chain(5);
        // Transfer blocks 3..=5; base is block 2.
        let cmd = DeleteCmd {
            height: 2,
            hash: blocks[1].hash(),
        };
        let package = TransferPackage {
            proof: proof_for(&blocks[4], &pairs),
            blocks: blocks[2..].to_vec(),
            base_deletes: vec![
                SignedDelete::sign(cmd, DcId(0), &dc_pairs[0]),
                SignedDelete::sign(cmd, DcId(1), &dc_pairs[1]),
            ],
        };
        let store = install_transfer(&package, &keystore, &dc_keystore, 3, 2).unwrap();
        assert_eq!(store.base(), (2, blocks[1].hash()));
        assert_eq!(store.height(), 5);

        // Without the deletes the base is unanchored.
        let unanchored = TransferPackage {
            base_deletes: vec![],
            ..package
        };
        assert_eq!(
            install_transfer(&unanchored, &keystore, &dc_keystore, 3, 2).unwrap_err(),
            StateTransferError::UnanchoredBase
        );
    }

    #[test]
    fn tampered_segment_is_rejected() {
        let (pairs, keystore) = Keystore::generate(4, 80);
        let (_, dc_keystore) = Keystore::generate(2, 81);
        let mut blocks = chain(3);
        let proof = proof_for(&blocks[2], &pairs);
        blocks[1].requests[0].payload = vec![0xAB];
        let package = TransferPackage {
            proof,
            blocks,
            base_deletes: vec![],
        };
        assert!(matches!(
            install_transfer(&package, &keystore, &dc_keystore, 3, 2),
            Err(StateTransferError::BadChain(_))
        ));
    }

    #[test]
    fn checkpoint_mismatch_is_rejected() {
        let (pairs, keystore) = Keystore::generate(4, 80);
        let (_, dc_keystore) = Keystore::generate(2, 81);
        let blocks = chain(3);
        // The proof certifies block 2 but the segment ends at block 3.
        let package = TransferPackage {
            proof: proof_for(&blocks[1], &pairs),
            blocks: blocks.clone(),
            base_deletes: vec![],
        };
        assert_eq!(
            install_transfer(&package, &keystore, &dc_keystore, 3, 2).unwrap_err(),
            StateTransferError::CheckpointMismatch
        );
    }

    #[test]
    fn underquorum_proof_is_rejected() {
        let (pairs, keystore) = Keystore::generate(4, 80);
        let (_, dc_keystore) = Keystore::generate(2, 81);
        let blocks = chain(2);
        let mut proof = proof_for(&blocks[1], &pairs);
        proof.signatures.truncate(2);
        let package = TransferPackage {
            proof,
            blocks,
            base_deletes: vec![],
        };
        assert_eq!(
            install_transfer(&package, &keystore, &dc_keystore, 3, 2).unwrap_err(),
            StateTransferError::BadCheckpointProof
        );
    }
}
