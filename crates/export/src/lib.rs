//! Secure data-center export for ZugChain blocks (paper §III-D, Fig. 4).
//!
//! Newer JRU data is of higher interest, but a blockchain needs its
//! history for verification — so ZugChain continuously extracts blocks to
//! one or more private data centers and only then prunes them on the
//! train. The protocol is deliberately **decoupled from agreement**:
//! export reads bypass consensus and are answered from stable-checkpoint
//! state, so exporting can never delay ordering.
//!
//! The guarantees (paper §III-D):
//!
//! 1. only blocks logged by correct nodes are exported — every exported
//!    block is covered by a stable checkpoint carrying 2f+1 replica
//!    signatures;
//! 2. all blocks up to the most recent stable checkpoint are exported —
//!    the data center waits for 2f+1 checkpoint replies, so at least one
//!    reply is both honest and recent;
//! 3. exported blocks are deleted from the nodes — a configurable quorum
//!    of signed *delete* messages authorizes pruning, and replicas
//!    acknowledge with their own signatures.
//!
//! The message flow mirrors Fig. 4: ① `read` broadcast → ② checkpoint
//! replies from every replica plus full blocks from one → ③ synchronize
//! between data centers → ④ validate signatures and chain → ⑤ signed
//! `delete` broadcast → ⑥ replicas prune → ⑦ signed acknowledgements.
//!
//! Error scenarios (i)–(v) of the paper are all handled; see
//! [`ExportReplica`] (early deletes, delete quorums, emergency
//! header-only retention) and [`DataCenter`] (late data centers, second
//! read rounds), plus [`install_transfer`] for checkpoint transfer to a
//! lagging replica.
//!
//! Everything here is sans-io, like the rest of ZugChain: handlers take
//! messages and return effects/replies (the [`DataCenter`] implements
//! `zugchain_machine::Machine`); the simulator and the threaded runtime
//! provide transport.

#![warn(missing_docs)]

mod datacenter;
mod messages;
mod replica;
mod transfer;

pub use datacenter::{
    CertifiedSegment, DataCenter, DcAddr, DcConfig, DcEffect, DcInput, ExportOutcome,
};
pub use messages::{
    CheckpointReply, DcId, DeleteCmd, DeleteStatus, ExportMessage, SignedAck, SignedDelete,
};
pub use replica::{EmergencyPrune, ExportReplica, ReplicaExportConfig};
pub use transfer::{install_transfer, StateTransferError, TransferPackage};
