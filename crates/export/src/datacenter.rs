use std::collections::{BTreeMap, BTreeSet, HashMap};

use zugchain_blockchain::{verify_chain, Block};
use zugchain_crypto::{Digest, KeyPair, Keystore};
use zugchain_machine::{Effect, Machine, NoTimer};
use zugchain_pbft::{CheckpointProof, NodeId};
use zugchain_wire::TrainId;

use zugchain_telemetry::{Counter, Gauge, Telemetry};

use crate::{CheckpointReply, DcId, DeleteCmd, ExportMessage, SignedAck, SignedDelete};

/// Cached metric handles for a data center (see DESIGN.md §12).
/// Resolved once in [`DataCenter::set_telemetry`]; all handles are inert
/// until then.
#[derive(Debug, Default)]
struct DcMetrics {
    /// `zugchain_export_rounds_total`: export rounds started.
    rounds: Counter,
    /// `zugchain_export_checkpoint_replies_total`: checkpoint replies
    /// received from replicas (step ②).
    checkpoint_replies: Counter,
    /// `zugchain_export_certified_segments_total`: checkpoint-certified
    /// segments adopted (from the train or via DC sync).
    certified_segments: Counter,
    /// `zugchain_export_blocks_total`: blocks adopted into the archive.
    blocks: Counter,
    /// `zugchain_export_range_fetches_total`: second-round block-range
    /// fetches — each one is a retry against the best-checkpoint replica.
    range_fetches: Counter,
    /// `zugchain_export_failed_rounds_total`: rounds abandoned without
    /// adopting blocks (empty, stale, or corrupt segment); the caller
    /// retries with a different block source.
    failed_rounds: Counter,
    /// `zugchain_export_archive_height`: height of the newest archived
    /// block.
    archive_height: Gauge,
}

impl DcMetrics {
    fn resolve(telemetry: &Telemetry) -> Self {
        Self {
            rounds: telemetry.counter("zugchain_export_rounds_total"),
            checkpoint_replies: telemetry.counter("zugchain_export_checkpoint_replies_total"),
            certified_segments: telemetry.counter("zugchain_export_certified_segments_total"),
            blocks: telemetry.counter("zugchain_export_blocks_total"),
            range_fetches: telemetry.counter("zugchain_export_range_fetches_total"),
            failed_rounds: telemetry.counter("zugchain_export_failed_rounds_total"),
            archive_height: telemetry.gauge("zugchain_export_archive_height"),
        }
    }
}

/// Configuration of a data center.
#[derive(Debug, Clone)]
pub struct DcConfig {
    /// This data center's id (key id in the data-center keystore).
    pub id: DcId,
    /// The train this data center exports: its reads are addressed to
    /// that train's replica group, its certified segments are tagged with
    /// it, and DC syncs for any other train are rejected. A fleet data
    /// center runs one [`DataCenter`] machine per train, each against
    /// that train's replica keyset.
    pub train: TrainId,
    /// Number of replicas on the train.
    pub n_replicas: usize,
    /// Checkpoint replies to await before finalizing: 2f+1, so at least
    /// one reply is both honest and recent (paper step ③).
    pub replica_quorum: usize,
    /// The other data centers to synchronize with.
    pub peers: Vec<DcId>,
}

/// One contiguous, checkpoint-certified chain extension adopted by a
/// data center — the unit of ingestion for the juridical archive.
///
/// Every certified segment the data center emits satisfies, at emission
/// time: `blocks` is non-empty, chains onto `(base_height, base_hash)`
/// via [`verify_chain`], and `proof` is a 2f+1 checkpoint certificate
/// whose state digest equals the last block's hash. The archive
/// re-verifies all of this on ingest — it does not trust the data-center
/// process that handed the segment over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifiedSegment {
    /// Origin train of the blocks; the archive routes the segment to that
    /// train's shard and verifies it against that train's replica keyset.
    pub train: TrainId,
    /// Height of the archived block this segment extends.
    pub base_height: u64,
    /// Hash of that block (the first new block's `prev_hash`).
    pub base_hash: Digest,
    /// The newly adopted blocks, oldest first.
    pub blocks: Vec<Block>,
    /// The 2f+1 checkpoint certificate covering the last block.
    pub proof: CheckpointProof,
}

/// Result of a completed export round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportOutcome {
    /// Blocks newly added to the archive in this round.
    pub exported_blocks: usize,
    /// Archive height after the round.
    pub new_height: u64,
    /// Whether a delete was issued (false when nothing new was exported).
    pub delete_issued: bool,
}

/// Address space of the export protocol: replicas on the train and peer
/// data centers share one [`Effect::Send`] vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DcAddr {
    /// A replica on the train.
    Replica(NodeId),
    /// A peer data center.
    DataCenter(DcId),
}

/// Effects a data center emits. `Broadcast` addresses every replica on
/// the train (data centers are reached point-to-point via
/// [`DcAddr::DataCenter`]); the export protocol has no timers.
pub type DcEffect = Effect<DcAddr, ExportMessage, NoTimer, ExportOutcome>;

/// Inputs driving a [`DataCenter`] when used through the
/// [`Machine`] interface.
#[derive(Debug, Clone)]
pub enum DcInput {
    /// Step ①: start an export round, fetching blocks from `blocks_from`.
    BeginExport {
        /// Replica asked for the full blocks.
        blocks_from: NodeId,
    },
    /// A message arriving from a replica on the train.
    FromReplica {
        /// Sending replica.
        from: NodeId,
        /// The message.
        message: ExportMessage,
    },
    /// A synchronization message from a peer data center.
    FromDataCenter {
        /// The message (only [`ExportMessage::DcSync`] is meaningful).
        message: ExportMessage,
    },
}

/// State of an in-progress export round.
#[derive(Debug)]
struct Round {
    replies: BTreeMap<u64, CheckpointReply>,
    staged_blocks: Vec<Block>,
    range_requested: bool,
}

/// A railway company's private data center: drives the export protocol
/// and maintains a verified archive of the full blockchain.
///
/// # Examples
///
/// See the crate-level docs and the integration tests; a data center is
/// driven by [`begin_export`](Self::begin_export) and
/// [`on_replica_message`](Self::on_replica_message).
#[derive(Debug)]
pub struct DataCenter {
    config: DcConfig,
    key: KeyPair,
    replica_keystore: Keystore,
    /// Signature quorum for checkpoint proofs (2f+1 replicas).
    proof_quorum: usize,
    /// The archive: every exported block, oldest first, chaining from
    /// genesis.
    archive: Vec<Block>,
    last_height: u64,
    last_hash: Digest,
    round: Option<Round>,
    /// Acks per delete command: set of acknowledging replicas.
    acks: HashMap<(u64, Digest), BTreeSet<u64>>,
    /// Certified segments adopted since the last
    /// [`drain_certified_segments`](Self::drain_certified_segments) call.
    certified: Vec<CertifiedSegment>,
    metrics: DcMetrics,
    telemetry: Telemetry,
}

impl DataCenter {
    /// Creates a data center with an empty archive (genesis only).
    pub fn new(
        config: DcConfig,
        key: KeyPair,
        replica_keystore: Keystore,
        proof_quorum: usize,
    ) -> Self {
        let genesis = Block::genesis();
        Self {
            config,
            key,
            replica_keystore,
            proof_quorum,
            last_height: genesis.height(),
            last_hash: genesis.hash(),
            archive: vec![genesis],
            round: None,
            acks: HashMap::new(),
            certified: Vec::new(),
            metrics: DcMetrics::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: resolves the data center's metric
    /// handles (`zugchain_export_*`) and enables export-round trace
    /// events in the flight recorder.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = DcMetrics::resolve(telemetry);
        self.metrics.archive_height.set(self.last_height as i64);
        self.telemetry = telemetry.clone();
    }

    /// This data center's id.
    pub fn id(&self) -> DcId {
        self.config.id
    }

    /// The train this data center exports.
    pub fn train(&self) -> TrainId {
        self.config.train
    }

    /// Height of the newest archived block.
    pub fn archive_height(&self) -> u64 {
        self.last_height
    }

    /// The archived blocks, oldest first (starting at genesis).
    pub fn archive(&self) -> &[Block] {
        &self.archive
    }

    /// Verifies the whole archive chain — the externally checkable
    /// integrity property of blockchain-based logging.
    pub fn verify_archive(&self) -> bool {
        verify_chain(&self.archive, None).is_ok()
    }

    /// Number of replicas that acknowledged the delete for `height`.
    pub fn acks_for(&self, height: u64, hash: Digest) -> usize {
        self.acks.get(&(height, hash)).map_or(0, BTreeSet::len)
    }

    /// Returns `true` while an export round is in flight.
    pub fn round_in_progress(&self) -> bool {
        self.round.is_some()
    }

    /// Takes the certified segments adopted since the last call — the
    /// ingestion hookup for the juridical archive. Each segment carries
    /// the blocks, the base they chain onto, and the checkpoint
    /// certificate, in adoption order (so feeding them to an archive in
    /// order preserves chain continuity).
    pub fn drain_certified_segments(&mut self) -> Vec<CertifiedSegment> {
        std::mem::take(&mut self.certified)
    }

    /// Step ①: starts an export round, asking every replica for its
    /// latest checkpoint and `blocks_from` for the full blocks.
    ///
    /// If a round is already in progress it is abandoned (the caller
    /// timed out on a non-responsive replica and retries with another —
    /// paper §V-B: a faulty node denying to respond only delays the
    /// export "until another node is queried").
    pub fn begin_export(&mut self, blocks_from: NodeId) -> Vec<DcEffect> {
        self.metrics.rounds.inc();
        self.round = Some(Round {
            replies: BTreeMap::new(),
            staged_blocks: Vec::new(),
            range_requested: false,
        });
        vec![Effect::Broadcast {
            message: ExportMessage::Read {
                train: self.config.train,
                last_height: self.last_height,
                blocks_from,
            },
        }]
    }

    /// Handles a message from a replica (steps ②, ④, ⑦).
    pub fn on_replica_message(&mut self, from: NodeId, message: ExportMessage) -> Vec<DcEffect> {
        match message {
            ExportMessage::Checkpoint(reply) => {
                self.metrics.checkpoint_replies.inc();
                if let Some(round) = &mut self.round {
                    round.replies.entry(from.0).or_insert(reply);
                }
                self.try_finalize()
            }
            ExportMessage::Blocks { blocks } => {
                if let Some(round) = &mut self.round {
                    // Blocks may arrive in two rounds (initial + range
                    // fetch); keep them sorted and deduplicated by height.
                    round.staged_blocks.extend(blocks);
                    round.staged_blocks.sort_by_key(Block::height);
                    round.staged_blocks.dedup_by_key(|b| b.height());
                }
                self.try_finalize()
            }
            ExportMessage::Ack(ack) => {
                self.on_ack(ack);
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    /// Handles a synchronization message from a peer data center
    /// (step ③ / scenario (iv): a delayed data center catches up from its
    /// peers rather than from the train).
    pub fn on_dc_sync(&mut self, message: ExportMessage) -> Vec<DcEffect> {
        let ExportMessage::DcSync {
            train,
            proof,
            blocks,
        } = message
        else {
            return Vec::new();
        };
        // A sync for another train cannot extend this archive: the blocks
        // belong to a different chain (and a different replica keyset).
        if train != self.config.train {
            return Vec::new();
        }
        if !proof.verify(&self.replica_keystore, self.proof_quorum) {
            return Vec::new();
        }
        // Keep only blocks beyond our archive and check they extend it.
        let new_blocks: Vec<Block> = blocks
            .into_iter()
            .filter(|b| b.height() > self.last_height)
            .collect();
        if new_blocks.is_empty() {
            return Vec::new();
        }
        if verify_chain(&new_blocks, Some(self.last_hash)).is_err() {
            return Vec::new();
        }
        // The sync must be backed by the checkpoint: its digest is the
        // hash of the last block.
        let last = new_blocks.last().expect("nonempty");
        if last.hash() != proof.checkpoint.state_digest {
            return Vec::new();
        }
        self.metrics.certified_segments.inc();
        self.metrics.blocks.add(new_blocks.len() as u64);
        self.certified.push(CertifiedSegment {
            train,
            base_height: self.last_height,
            base_hash: self.last_hash,
            blocks: new_blocks.clone(),
            proof: proof.clone(),
        });
        self.adopt(new_blocks);
        self.metrics.archive_height.set(self.last_height as i64);
        // Step ⑤: "the data centers each sign a delete message" — having
        // verified and stored the blocks, this data center adds its own
        // signature so the replicas' delete quorum can form.
        let cmd = DeleteCmd {
            height: self.last_height,
            hash: self.last_hash,
        };
        let delete = SignedDelete::sign(cmd, self.config.id, &self.key);
        vec![Effect::Broadcast {
            message: ExportMessage::Delete(delete),
        }]
    }

    fn on_ack(&mut self, ack: SignedAck) {
        if !ack.verify(&self.replica_keystore) {
            return;
        }
        self.acks
            .entry((ack.cmd.height, ack.cmd.hash))
            .or_default()
            .insert(ack.node.0);
    }

    fn adopt(&mut self, blocks: Vec<Block>) {
        for block in blocks {
            self.last_height = block.height();
            self.last_hash = block.hash();
            self.archive.push(block);
        }
    }

    /// Emits one `export` span per logged request of a certified
    /// segment, parented on the origin replica's `decide` span. Ground
    /// stages record under the node-0 convention (there is one logical
    /// ground per train, regardless of which DC machine runs the round).
    fn trace_export_spans(&self, blocks: &[Block]) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let train = self.config.train.0;
        let now = self.telemetry.now_ms();
        for block in blocks {
            for request in &block.requests {
                let digest = Digest::of(&request.payload);
                let trace_id =
                    zugchain_wire::derive_trace_id(train, request.origin, digest.as_bytes());
                self.telemetry.record_span(|| zugchain_telemetry::Span {
                    trace_id,
                    span_id: zugchain_wire::derive_span_id(
                        trace_id,
                        zugchain_telemetry::Stage::Export.as_str(),
                        0,
                    ),
                    parent_span: zugchain_wire::derive_span_id(
                        trace_id,
                        zugchain_telemetry::Stage::Decide.as_str(),
                        request.origin,
                    ),
                    stage: zugchain_telemetry::Stage::Export,
                    node: 0,
                    train,
                    sn: request.sn,
                    start_ms: now,
                    end_ms: now,
                });
            }
        }
    }

    /// Steps ③–⑤ once enough replies are in.
    fn try_finalize(&mut self) -> Vec<DcEffect> {
        let Some(round) = &self.round else {
            return Vec::new();
        };
        if round.replies.len() < self.config.replica_quorum {
            return Vec::new();
        }

        // Pick the most recent *verifiable* checkpoint among the replies
        // ("determine the latest one with the highest checkpoint sequence
        // number", step ②).
        let best = round
            .replies
            .values()
            .filter_map(|reply| {
                let proof = reply.proof.as_ref()?;
                if !proof.verify(&self.replica_keystore, self.proof_quorum) {
                    return None;
                }
                // The reply's block claim must match the proof.
                if reply.block_hash != proof.checkpoint.state_digest {
                    return None;
                }
                Some((proof.checkpoint.sn, reply.clone()))
            })
            .max_by_key(|(sn, _)| *sn);

        let Some((_, best)) = best else {
            // No verifiable checkpoint yet (system just started): round
            // completes empty once quorum answered.
            self.round = None;
            return vec![Effect::Output(ExportOutcome {
                exported_blocks: 0,
                new_height: self.last_height,
                delete_issued: false,
            })];
        };

        if best.block_height <= self.last_height {
            // Nothing new since the last export.
            self.round = None;
            return vec![Effect::Output(ExportOutcome {
                exported_blocks: 0,
                new_height: self.last_height,
                delete_issued: false,
            })];
        }

        // Do we have the full blocks up to the checkpointed one?
        let staged = &round.staged_blocks;
        let have_up_to = staged
            .iter()
            .take_while({
                let mut expected = self.last_height + 1;
                move |b| {
                    let ok = b.height() == expected;
                    expected += 1;
                    ok
                }
            })
            .count();
        let covers = have_up_to > 0 && staged[have_up_to - 1].height() >= best.block_height;

        if !covers {
            // Step ④ second round: fetch what is missing from the replica
            // that sent the best checkpoint (it must have the blocks).
            if round.range_requested {
                return Vec::new(); // already asked; wait
            }
            let from_height = if have_up_to > 0 {
                staged[have_up_to - 1].height()
            } else {
                self.last_height
            };
            let to_height = best.block_height;
            let target = round
                .replies
                .iter()
                .find(|(_, reply)| reply.block_height >= best.block_height)
                .map(|(id, _)| NodeId(*id))
                .expect("the best reply exists");
            self.metrics.range_fetches.inc();
            if let Some(round) = &mut self.round {
                round.range_requested = true;
            }
            return vec![Effect::Send {
                to: DcAddr::Replica(target),
                message: ExportMessage::BlockRange {
                    from_height,
                    to_height,
                },
            }];
        }

        // Validate the chain segment against our archive head and the
        // checkpoint (step ④).
        let segment: Vec<Block> = staged
            .iter()
            .filter(|b| b.height() > self.last_height && b.height() <= best.block_height)
            .cloned()
            .collect();
        if verify_chain(&segment, Some(self.last_hash)).is_err()
            || segment.last().map(Block::hash) != Some(best.block_hash)
        {
            // Corrupt blocks from a faulty replica: retry the round with a
            // different block source next time.
            self.metrics.failed_rounds.inc();
            self.round = None;
            return vec![Effect::Output(ExportOutcome {
                exported_blocks: 0,
                new_height: self.last_height,
                delete_issued: false,
            })];
        }

        let exported = segment.len();
        let proof = best.proof.clone().expect("verified above");
        self.metrics.certified_segments.inc();
        self.metrics.blocks.add(exported as u64);
        self.trace_export_spans(&segment);
        self.certified.push(CertifiedSegment {
            train: self.config.train,
            base_height: self.last_height,
            base_hash: self.last_hash,
            blocks: segment.clone(),
            proof: proof.clone(),
        });
        self.adopt(segment);
        self.metrics.archive_height.set(self.last_height as i64);
        self.telemetry
            .record_with(|| zugchain_telemetry::TraceEvent::ExportRound {
                blocks: exported as u64,
            });
        self.round = None;

        let mut actions = Vec::new();
        // Step ③: synchronize with the other companies' data centers.
        for peer in self.config.peers.clone() {
            actions.push(Effect::Send {
                to: DcAddr::DataCenter(peer),
                message: ExportMessage::DcSync {
                    train: self.config.train,
                    proof: proof.clone(),
                    blocks: self.archive[self.archive.len() - exported..].to_vec(),
                },
            });
        }
        // Step ⑤: sign and broadcast the delete.
        let cmd = DeleteCmd {
            height: self.last_height,
            hash: self.last_hash,
        };
        let delete = SignedDelete::sign(cmd, self.config.id, &self.key);
        actions.push(Effect::Broadcast {
            message: ExportMessage::Delete(delete),
        });
        actions.push(Effect::Output(ExportOutcome {
            exported_blocks: exported,
            new_height: self.last_height,
            delete_issued: true,
        }));
        actions
    }
}

/// A [`DataCenter`] is a sans-io [`Machine`]: the round-trip protocol of
/// Fig. 4 expressed as inputs in, effects out. The export protocol is
/// purely request-driven, so the timer vocabulary is the uninhabited
/// [`NoTimer`].
impl Machine for DataCenter {
    type Addr = DcAddr;
    type Message = ExportMessage;
    type Timer = NoTimer;
    type Output = ExportOutcome;
    type Input = DcInput;

    fn on_input(&mut self, input: DcInput) -> Vec<DcEffect> {
        match input {
            DcInput::BeginExport { blocks_from } => self.begin_export(blocks_from),
            DcInput::FromReplica { from, message } => self.on_replica_message(from, message),
            DcInput::FromDataCenter { message } => self.on_dc_sync(message),
        }
    }

    fn on_timer(&mut self, timer: NoTimer) -> Vec<DcEffect> {
        match timer {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zugchain_blockchain::{BlockBuilder, LoggedRequest};
    use zugchain_pbft::{Checkpoint, CheckpointProof};

    fn chain(n_blocks: u64) -> Vec<Block> {
        let mut builder = BlockBuilder::new(2);
        let mut blocks = Vec::new();
        for sn in 1..=n_blocks * 2 {
            if let Some(block) = builder.push(
                LoggedRequest {
                    sn,
                    origin: 0,
                    payload: vec![sn as u8; 8],
                },
                sn * 64,
            ) {
                blocks.push(block);
            }
        }
        blocks
    }

    /// Builds a real 2f+1-signed proof for a block.
    fn proof_for(block: &Block, pairs: &[zugchain_crypto::KeyPair]) -> CheckpointProof {
        let checkpoint = Checkpoint {
            sn: block.header.last_sn,
            state_digest: block.hash(),
        };
        let message = zugchain_wire::to_bytes(&zugchain_pbft::Message::Checkpoint(checkpoint));
        CheckpointProof {
            checkpoint,
            signatures: (0..3)
                .map(|id| (NodeId(id as u64), pairs[id].sign(&message)))
                .collect(),
        }
    }

    fn setup() -> (DataCenter, Vec<Block>, Vec<zugchain_crypto::KeyPair>) {
        let (replica_pairs, replica_keystore) = Keystore::generate(4, 30);
        let (dc_pairs, _) = Keystore::generate(2, 40);
        let dc = DataCenter::new(
            DcConfig {
                id: DcId(0),
                train: TrainId::DEFAULT,
                n_replicas: 4,
                replica_quorum: 3,
                peers: vec![DcId(1)],
            },
            dc_pairs[0].clone(),
            replica_keystore,
            3,
        );
        (dc, chain(4), replica_pairs)
    }

    fn checkpoint_reply(block: &Block, pairs: &[zugchain_crypto::KeyPair]) -> ExportMessage {
        ExportMessage::Checkpoint(CheckpointReply {
            proof: Some(proof_for(block, pairs)),
            block_height: block.height(),
            block_hash: block.hash(),
        })
    }

    #[test]
    fn full_round_exports_syncs_and_deletes() {
        let (mut dc, blocks, pairs) = setup();
        let actions = dc.begin_export(NodeId(0));
        assert!(matches!(
            actions[0],
            Effect::Broadcast {
                message: ExportMessage::Read { last_height: 0, .. }
            }
        ));

        // Replica 0 sends blocks 1..=4 plus its checkpoint; 1 and 2 send
        // checkpoints only.
        dc.on_replica_message(
            NodeId(0),
            ExportMessage::Blocks {
                blocks: blocks.clone(),
            },
        );
        dc.on_replica_message(NodeId(0), checkpoint_reply(&blocks[3], &pairs));
        dc.on_replica_message(NodeId(1), checkpoint_reply(&blocks[3], &pairs));
        let actions = dc.on_replica_message(NodeId(2), checkpoint_reply(&blocks[2], &pairs));

        assert_eq!(dc.archive_height(), 4);
        assert!(dc.verify_archive());
        // Sync to the peer + delete broadcast + completion.
        assert!(actions.iter().any(|a| matches!(
            a,
            Effect::Send {
                to: DcAddr::DataCenter(DcId(1)),
                message: ExportMessage::DcSync { .. }
            }
        )));
        let delete = actions.iter().find_map(|a| match a {
            Effect::Broadcast {
                message: ExportMessage::Delete(d),
            } => Some(d.clone()),
            _ => None,
        });
        let delete = delete.expect("delete issued");
        assert_eq!(delete.cmd.height, 4);
        assert_eq!(delete.cmd.hash, blocks[3].hash());
        assert!(actions.iter().any(|a| matches!(
            a,
            Effect::Output(ExportOutcome {
                exported_blocks: 4,
                new_height: 4,
                delete_issued: true
            })
        )));
    }

    #[test]
    fn finalized_export_queues_a_certified_segment_for_the_archive() {
        let (mut dc, blocks, pairs) = setup();
        assert!(dc.drain_certified_segments().is_empty());
        dc.begin_export(NodeId(0));
        dc.on_replica_message(
            NodeId(0),
            ExportMessage::Blocks {
                blocks: blocks.clone(),
            },
        );
        dc.on_replica_message(NodeId(0), checkpoint_reply(&blocks[3], &pairs));
        dc.on_replica_message(NodeId(1), checkpoint_reply(&blocks[3], &pairs));
        dc.on_replica_message(NodeId(2), checkpoint_reply(&blocks[3], &pairs));

        let segments = dc.drain_certified_segments();
        assert_eq!(segments.len(), 1);
        let segment = &segments[0];
        let genesis = Block::genesis();
        assert_eq!(segment.base_height, genesis.height());
        assert_eq!(segment.base_hash, genesis.hash());
        assert_eq!(segment.blocks, blocks);
        assert_eq!(
            segment.proof.checkpoint.state_digest,
            blocks[3].hash(),
            "certificate covers the segment head"
        );
        assert!(dc.drain_certified_segments().is_empty(), "drain empties");
    }

    #[test]
    fn outdated_checkpoints_lose_to_the_most_recent() {
        let (mut dc, blocks, pairs) = setup();
        dc.begin_export(NodeId(0));
        dc.on_replica_message(
            NodeId(0),
            ExportMessage::Blocks {
                blocks: blocks.clone(),
            },
        );
        // Two stale replies, one fresh.
        dc.on_replica_message(NodeId(1), checkpoint_reply(&blocks[0], &pairs));
        dc.on_replica_message(NodeId(2), checkpoint_reply(&blocks[1], &pairs));
        let actions = dc.on_replica_message(NodeId(0), checkpoint_reply(&blocks[3], &pairs));
        assert_eq!(dc.archive_height(), 4, "the freshest checkpoint wins");
        assert!(!actions.is_empty());
    }

    #[test]
    fn unverifiable_proof_is_ignored() {
        let (mut dc, blocks, pairs) = setup();
        dc.begin_export(NodeId(0));
        dc.on_replica_message(
            NodeId(0),
            ExportMessage::Blocks {
                blocks: blocks.clone(),
            },
        );
        // A forged proof with too few signatures claims block 4...
        let mut forged = proof_for(&blocks[3], &pairs);
        forged.signatures.truncate(1);
        dc.on_replica_message(
            NodeId(3),
            ExportMessage::Checkpoint(CheckpointReply {
                proof: Some(forged),
                block_height: 4,
                block_hash: blocks[3].hash(),
            }),
        );
        // ...while honest replies only certify block 2.
        dc.on_replica_message(NodeId(1), checkpoint_reply(&blocks[1], &pairs));
        dc.on_replica_message(NodeId(2), checkpoint_reply(&blocks[1], &pairs));
        assert_eq!(dc.archive_height(), 2, "forged checkpoint did not count");
    }

    #[test]
    fn missing_blocks_trigger_a_range_request() {
        let (mut dc, blocks, pairs) = setup();
        dc.begin_export(NodeId(0));
        // The chosen replica only had blocks 1..=2 (its checkpoint was
        // older), but the quorum certifies block 4.
        dc.on_replica_message(
            NodeId(0),
            ExportMessage::Blocks {
                blocks: blocks[..2].to_vec(),
            },
        );
        dc.on_replica_message(NodeId(0), checkpoint_reply(&blocks[1], &pairs));
        dc.on_replica_message(NodeId(1), checkpoint_reply(&blocks[3], &pairs));
        let actions = dc.on_replica_message(NodeId(2), checkpoint_reply(&blocks[3], &pairs));
        let range = actions.iter().find_map(|a| match a {
            Effect::Send {
                to: DcAddr::Replica(to),
                message:
                    ExportMessage::BlockRange {
                        from_height,
                        to_height,
                    },
            } => Some((*to, *from_height, *to_height)),
            _ => None,
        });
        let (to, from_height, to_height) = range.expect("range request issued");
        assert_eq!(to, NodeId(1), "fetched from a replica with the blocks");
        assert_eq!((from_height, to_height), (2, 4));

        // The second round completes the export.
        let actions = dc.on_replica_message(
            NodeId(1),
            ExportMessage::Blocks {
                blocks: blocks[2..].to_vec(),
            },
        );
        assert_eq!(dc.archive_height(), 4);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Effect::Output(o) if o.exported_blocks == 4)));
    }

    #[test]
    fn corrupt_blocks_from_faulty_replica_are_rejected() {
        let (mut dc, blocks, pairs) = setup();
        dc.begin_export(NodeId(3));
        let mut corrupted = blocks.clone();
        corrupted[1].requests[0].payload = vec![0xFF];
        dc.on_replica_message(NodeId(3), ExportMessage::Blocks { blocks: corrupted });
        dc.on_replica_message(NodeId(0), checkpoint_reply(&blocks[3], &pairs));
        dc.on_replica_message(NodeId(1), checkpoint_reply(&blocks[3], &pairs));
        let actions = dc.on_replica_message(NodeId(2), checkpoint_reply(&blocks[3], &pairs));
        assert_eq!(dc.archive_height(), 0, "corrupt segment rejected");
        assert!(actions
            .iter()
            .any(|a| matches!(a, Effect::Output(o) if o.exported_blocks == 0)));
    }

    #[test]
    fn dc_sync_lets_a_late_data_center_catch_up() {
        let (_, blocks, pairs) = setup();
        let (dc_pairs, _) = Keystore::generate(2, 40);
        let (_, replica_keystore) = Keystore::generate(4, 30);
        let mut late = DataCenter::new(
            DcConfig {
                id: DcId(1),
                train: TrainId::DEFAULT,
                n_replicas: 4,
                replica_quorum: 3,
                peers: vec![DcId(0)],
            },
            dc_pairs[1].clone(),
            replica_keystore,
            3,
        );
        late.on_dc_sync(ExportMessage::DcSync {
            train: TrainId::DEFAULT,
            proof: proof_for(&blocks[3], &pairs),
            blocks: blocks.clone(),
        });
        assert_eq!(late.archive_height(), 4);
        assert!(late.verify_archive());
    }

    #[test]
    fn dc_sync_for_another_train_is_rejected() {
        let (mut dc, blocks, pairs) = setup();
        dc.on_dc_sync(ExportMessage::DcSync {
            train: TrainId(99),
            proof: proof_for(&blocks[3], &pairs),
            blocks: blocks.clone(),
        });
        assert_eq!(dc.archive_height(), 0, "foreign train's sync not adopted");
        assert!(dc.drain_certified_segments().is_empty());
    }

    #[test]
    fn dc_sync_rejects_tampered_blocks() {
        let (mut dc, blocks, pairs) = setup();
        let mut tampered = blocks.clone();
        tampered[0].requests[0].payload = vec![9];
        dc.on_dc_sync(ExportMessage::DcSync {
            train: TrainId::DEFAULT,
            proof: proof_for(&blocks[3], &pairs),
            blocks: tampered,
        });
        assert_eq!(dc.archive_height(), 0);
    }

    #[test]
    fn acks_are_counted_per_replica() {
        let (mut dc, blocks, _) = setup();
        let (replica_pairs, _) = Keystore::generate(4, 30);
        let cmd = DeleteCmd {
            height: 4,
            hash: blocks[3].hash(),
        };
        for id in 0..3u64 {
            dc.on_replica_message(
                NodeId(id),
                ExportMessage::Ack(SignedAck::sign(
                    cmd,
                    NodeId(id),
                    &replica_pairs[id as usize],
                )),
            );
        }
        // A duplicate does not double count.
        dc.on_replica_message(
            NodeId(0),
            ExportMessage::Ack(SignedAck::sign(cmd, NodeId(0), &replica_pairs[0])),
        );
        assert_eq!(dc.acks_for(4, blocks[3].hash()), 3);
    }

    #[test]
    fn unresponsive_replica_is_sidestepped_by_restarting_the_round() {
        // Paper §V-B: "a faulty node denying to respond can delay the
        // export until another node is queried."
        let (mut dc, blocks, pairs) = setup();
        // Round 1: the chosen replica (3) never sends blocks, and only
        // two checkpoint replies arrive — below the 2f+1 quorum. The
        // round stalls.
        dc.begin_export(NodeId(3));
        dc.on_replica_message(NodeId(0), checkpoint_reply(&blocks[3], &pairs));
        let actions = dc.on_replica_message(NodeId(1), checkpoint_reply(&blocks[3], &pairs));
        assert!(actions.is_empty(), "quorum not reached, round pending");
        assert!(dc.round_in_progress());

        // The operator times out and retries with a different source.
        let actions = dc.begin_export(NodeId(0));
        assert_eq!(actions.len(), 1, "fresh read broadcast");
        dc.on_replica_message(
            NodeId(0),
            ExportMessage::Blocks {
                blocks: blocks.clone(),
            },
        );
        dc.on_replica_message(NodeId(0), checkpoint_reply(&blocks[3], &pairs));
        dc.on_replica_message(NodeId(1), checkpoint_reply(&blocks[3], &pairs));
        let actions = dc.on_replica_message(NodeId(2), checkpoint_reply(&blocks[3], &pairs));
        assert_eq!(dc.archive_height(), 4);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Effect::Output(o) if o.exported_blocks == 4)));
    }

    #[test]
    fn replica_reply_after_round_completion_is_ignored() {
        let (mut dc, blocks, pairs) = setup();
        dc.begin_export(NodeId(0));
        dc.on_replica_message(
            NodeId(0),
            ExportMessage::Blocks {
                blocks: blocks.clone(),
            },
        );
        dc.on_replica_message(NodeId(0), checkpoint_reply(&blocks[3], &pairs));
        dc.on_replica_message(NodeId(1), checkpoint_reply(&blocks[3], &pairs));
        dc.on_replica_message(NodeId(2), checkpoint_reply(&blocks[3], &pairs));
        assert!(!dc.round_in_progress());
        // A straggler reply must not corrupt the archive.
        let actions = dc.on_replica_message(NodeId(3), checkpoint_reply(&blocks[1], &pairs));
        assert!(actions.is_empty());
        assert_eq!(dc.archive_height(), 4);
        assert!(dc.verify_archive());
    }

    #[test]
    fn empty_system_completes_with_no_export() {
        let (mut dc, _, _) = setup();
        dc.begin_export(NodeId(0));
        let empty = ExportMessage::Checkpoint(CheckpointReply {
            proof: None,
            block_height: 0,
            block_hash: Digest::ZERO,
        });
        dc.on_replica_message(NodeId(0), empty.clone());
        dc.on_replica_message(NodeId(1), empty.clone());
        let actions = dc.on_replica_message(NodeId(2), empty);
        assert!(actions.iter().any(|a| matches!(
            a,
            Effect::Output(ExportOutcome {
                exported_blocks: 0,
                delete_issued: false,
                ..
            })
        )));
    }
}
