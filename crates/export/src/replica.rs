use std::collections::{BTreeMap, HashMap};

use zugchain_blockchain::{ChainStore, PrunedBase};
use zugchain_crypto::Keystore;
use zugchain_crypto::{Digest, KeyPair};
use zugchain_pbft::{CheckpointProof, NodeId};
use zugchain_wire::{encode_seq, TrainId, Writer};

use crate::{CheckpointReply, DeleteStatus, ExportMessage, SignedAck, SignedDelete};

/// Configuration of the replica-side export handler.
#[derive(Debug, Clone)]
pub struct ReplicaExportConfig {
    /// Signed deletes from distinct data centers required before pruning
    /// ("a certain, configurable number", step ⑥).
    pub delete_quorum: usize,
}

impl Default for ReplicaExportConfig {
    fn default() -> Self {
        Self { delete_quorum: 2 }
    }
}

/// The record a replica proposes through consensus before reclaiming
/// memory without an export (paper §III-D, scenario (v)): the joint
/// agreement is stored on the blockchain to show the reclamation was not
/// faulty behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmergencyPrune {
    /// Heights whose payloads will be dropped (headers retained).
    pub first_height: u64,
    /// Last height (inclusive) to stub.
    pub last_height: u64,
}

impl EmergencyPrune {
    /// Encodes the agreement as a request payload for consensus.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.write_bytes(b"zugchain-emergency-prune");
        w.write_u64(self.first_height);
        w.write_u64(self.last_height);
        w.into_bytes()
    }
}

/// The replica side of the export protocol.
///
/// Stateless with respect to the chain (the caller owns the
/// [`ChainStore`]); owns only the delete-collection state: signatures per
/// delete command, delayed deletes, and executed history.
#[derive(Debug)]
pub struct ExportReplica {
    id: NodeId,
    /// The train this replica belongs to; reads addressed to another
    /// train are ignored (its blocks belong to a different chain).
    train: TrainId,
    key: KeyPair,
    dc_keystore: Keystore,
    config: ReplicaExportConfig,
    /// Valid delete signatures collected per command.
    deletes: HashMap<(u64, Digest), BTreeMap<u64, SignedDelete>>,
    /// Deletes that arrived before their block existed (scenario (i)),
    /// keyed by height.
    delayed: BTreeMap<u64, Vec<SignedDelete>>,
    /// Highest height already pruned.
    executed_up_to: u64,
}

impl ExportReplica {
    /// Creates the handler for replica `id`.
    ///
    /// `dc_keystore` holds the data centers' public keys (step ⑤
    /// verification); `key` signs acknowledgements (step ⑦).
    pub fn new(
        id: NodeId,
        key: KeyPair,
        dc_keystore: Keystore,
        config: ReplicaExportConfig,
    ) -> Self {
        Self {
            id,
            train: TrainId::DEFAULT,
            key,
            dc_keystore,
            config,
            deletes: HashMap::new(),
            delayed: BTreeMap::new(),
            executed_up_to: 0,
        }
    }

    /// Assigns this replica to a train's replica group (builder style).
    /// Replicas created with [`new`](Self::new) serve the single-train
    /// [`TrainId::DEFAULT`] identity.
    #[must_use]
    pub fn with_train(mut self, train: TrainId) -> Self {
        self.train = train;
        self
    }

    /// The train this replica serves.
    pub fn train(&self) -> TrainId {
        self.train
    }

    /// Handles an export message, reading/mutating the node's chain and
    /// stable proofs. Returns the replies to send back to the requesting
    /// data center (acks are meant for *all* data centers — the caller
    /// broadcasts [`ExportMessage::Ack`]).
    pub fn handle(
        &mut self,
        message: ExportMessage,
        store: &mut ChainStore,
        stable_proofs: &[CheckpointProof],
    ) -> Vec<ExportMessage> {
        match message {
            ExportMessage::Read {
                train,
                last_height,
                blocks_from,
            } => {
                if train != self.train {
                    // A read for another train cannot be answered from this
                    // chain; stay silent so the data center retries against
                    // the right replica group.
                    return Vec::new();
                }
                self.on_read(last_height, blocks_from, store, stable_proofs)
            }
            ExportMessage::BlockRange {
                from_height,
                to_height,
            } => vec![ExportMessage::Blocks {
                blocks: store.range(from_height, to_height),
            }],
            ExportMessage::Delete(delete) => {
                let (_, replies) = self.process_delete(delete, store);
                replies
            }
            // Checkpoint/Blocks/Ack/DcSync are data-center-bound; a
            // replica receiving one ignores it.
            _ => Vec::new(),
        }
    }

    /// Step ②: answer a read with the latest stable checkpoint, plus the
    /// full blocks if this replica was chosen.
    fn on_read(
        &self,
        last_height: u64,
        blocks_from: NodeId,
        store: &ChainStore,
        stable_proofs: &[CheckpointProof],
    ) -> Vec<ExportMessage> {
        let latest = stable_proofs.last();
        let reply = match latest {
            None => CheckpointReply {
                proof: None,
                block_height: 0,
                block_hash: Digest::ZERO,
            },
            Some(proof) => {
                // The checkpoint digest is the hash of the block it covers;
                // locate that block to report its height.
                let block = store
                    .blocks()
                    .iter()
                    .find(|b| b.hash() == proof.checkpoint.state_digest);
                match block {
                    Some(block) => CheckpointReply {
                        proof: Some(proof.clone()),
                        block_height: block.height(),
                        block_hash: block.hash(),
                    },
                    // The checkpointed block was already pruned (the data
                    // center is behind our base): report the base.
                    None => {
                        let (height, hash) = store.base();
                        CheckpointReply {
                            proof: Some(proof.clone()),
                            block_height: height,
                            block_hash: hash,
                        }
                    }
                }
            }
        };
        let mut replies = vec![ExportMessage::Checkpoint(reply.clone())];
        if blocks_from == self.id && reply.proof.is_some() {
            replies.push(ExportMessage::Blocks {
                blocks: store.range(last_height, reply.block_height),
            });
        }
        replies
    }

    /// Steps ⑤–⑦: collect data-center deletes; prune and acknowledge at
    /// quorum. Returns the status and any replies.
    pub fn process_delete(
        &mut self,
        delete: SignedDelete,
        store: &mut ChainStore,
    ) -> (DeleteStatus, Vec<ExportMessage>) {
        if !delete.verify(&self.dc_keystore) {
            return (DeleteStatus::Rejected, Vec::new());
        }
        let cmd = delete.cmd;
        if cmd.height <= self.executed_up_to {
            return (DeleteStatus::AlreadyExecuted, Vec::new());
        }
        // Scenario (i): the delete references a block this replica has not
        // created yet — delay until the block exists.
        if cmd.height > store.height() {
            self.delayed.entry(cmd.height).or_default().push(delete);
            return (DeleteStatus::DelayedUntilBlockExists, Vec::new());
        }
        // The delete must match our chain: same hash at that height.
        let matches = store
            .get(cmd.height)
            .map(|b| b.hash() == cmd.hash)
            .or_else(|| Some(store.base() == (cmd.height, cmd.hash)))
            .unwrap_or(false);
        if !matches {
            return (DeleteStatus::Rejected, Vec::new());
        }

        let votes = self.deletes.entry((cmd.height, cmd.hash)).or_default();
        votes.insert(delete.dc.0, delete);
        let have = votes.len();
        let need = self.config.delete_quorum;
        if have < need {
            // Scenario (iii): without a quorum the delete is not executed.
            return (DeleteStatus::AwaitingQuorum { have, need }, Vec::new());
        }

        // Execute: prune up to the block, keep it as the new base, and
        // keep the signed deletes as the prune's authorization proof.
        let proof_bytes = {
            let mut w = Writer::new();
            let signed: Vec<SignedDelete> = votes.values().cloned().collect();
            encode_seq(&signed, &mut w);
            w.into_bytes()
        };
        let pruned = store
            .prune_to(PrunedBase {
                height: cmd.height,
                hash: cmd.hash,
                delete_proof: proof_bytes,
            })
            .expect("height <= store.height() was checked");
        self.executed_up_to = cmd.height;
        self.deletes.retain(|(height, _), _| *height > cmd.height);
        self.delayed.retain(|height, _| *height > cmd.height);

        let ack = SignedAck::sign(cmd, self.id, &self.key);
        (
            DeleteStatus::Executed { pruned },
            vec![ExportMessage::Ack(ack)],
        )
    }

    /// Re-processes delayed deletes after the chain grew (call when a new
    /// block is appended). Returns acks to broadcast, if any delete
    /// reached execution.
    pub fn on_block_appended(&mut self, store: &mut ChainStore) -> Vec<ExportMessage> {
        let ready: Vec<u64> = self
            .delayed
            .range(..=store.height())
            .map(|(height, _)| *height)
            .collect();
        let mut replies = Vec::new();
        for height in ready {
            let Some(deletes) = self.delayed.remove(&height) else {
                continue;
            };
            for delete in deletes {
                let (_, mut r) = self.process_delete(delete, store);
                replies.append(&mut r);
            }
        }
        replies
    }

    /// Scenario (v): reclaim memory without an export by dropping the
    /// payloads of the `count` oldest blocks (headers retained). Returns
    /// the consensus record the caller must order so that the joint
    /// agreement is on the blockchain, or `None` if nothing was stubbed.
    pub fn emergency_reclaim(
        &mut self,
        store: &mut ChainStore,
        count: usize,
    ) -> Option<EmergencyPrune> {
        let first = store.blocks().first()?.height();
        let stubbed = store.retain_headers_only(count);
        if stubbed == 0 {
            return None;
        }
        Some(EmergencyPrune {
            first_height: first,
            last_height: first + stubbed as u64 - 1,
        })
    }

    /// Highest height this replica has pruned.
    pub fn executed_up_to(&self) -> u64 {
        self.executed_up_to
    }

    /// Number of delete commands still awaiting quorum or their block.
    pub fn pending_deletes(&self) -> usize {
        self.deletes.len() + self.delayed.values().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DcId, DeleteCmd};
    use zugchain_blockchain::{Block, BlockBuilder, LoggedRequest};
    use zugchain_crypto::Keystore;

    fn chain_of(n: u64, store: &mut ChainStore) -> Vec<Block> {
        let mut builder = BlockBuilder::new(2);
        let mut blocks = Vec::new();
        for sn in 1..=n * 2 {
            if let Some(block) = builder.push(
                LoggedRequest {
                    sn,
                    origin: 0,
                    payload: vec![sn as u8; 16],
                },
                sn * 64,
            ) {
                store.append(block.clone()).unwrap();
                blocks.push(block);
            }
        }
        blocks
    }

    fn setup() -> (
        ExportReplica,
        ChainStore,
        Vec<Block>,
        Vec<zugchain_crypto::KeyPair>,
        Keystore,
    ) {
        let (node_pairs, _) = Keystore::generate(4, 10);
        let (dc_pairs, dc_keystore) = Keystore::generate(3, 20);
        let replica = ExportReplica::new(
            NodeId(1),
            node_pairs[1].clone(),
            dc_keystore.clone(),
            ReplicaExportConfig { delete_quorum: 2 },
        );
        let mut store = ChainStore::new();
        let blocks = chain_of(5, &mut store);
        (replica, store, blocks, dc_pairs, dc_keystore)
    }

    #[test]
    fn read_replies_with_latest_checkpoint_and_blocks_if_chosen() {
        let (mut replica, mut store, blocks, _, _) = setup();
        use zugchain_pbft::Checkpoint;
        let proof = CheckpointProof {
            checkpoint: Checkpoint {
                sn: blocks[2].header.last_sn,
                state_digest: blocks[2].hash(),
            },
            signatures: vec![],
        };
        let replies = replica.handle(
            ExportMessage::Read {
                train: TrainId::DEFAULT,
                last_height: 0,
                blocks_from: NodeId(1),
            },
            &mut store,
            std::slice::from_ref(&proof),
        );
        assert_eq!(replies.len(), 2);
        let ExportMessage::Checkpoint(reply) = &replies[0] else {
            panic!("first reply is the checkpoint");
        };
        assert_eq!(reply.block_height, 3);
        assert_eq!(reply.proof.as_ref(), Some(&proof));
        let ExportMessage::Blocks { blocks: sent } = &replies[1] else {
            panic!("second reply carries blocks");
        };
        assert_eq!(sent.len(), 3, "blocks 1..=3");
    }

    #[test]
    fn read_on_unchosen_replica_sends_no_blocks() {
        let (mut replica, mut store, blocks, _, _) = setup();
        use zugchain_pbft::Checkpoint;
        let proof = CheckpointProof {
            checkpoint: Checkpoint {
                sn: blocks[0].header.last_sn,
                state_digest: blocks[0].hash(),
            },
            signatures: vec![],
        };
        let replies = replica.handle(
            ExportMessage::Read {
                train: TrainId::DEFAULT,
                last_height: 0,
                blocks_from: NodeId(3),
            },
            &mut store,
            &[proof],
        );
        assert_eq!(replies.len(), 1);
        assert!(matches!(replies[0], ExportMessage::Checkpoint(_)));
    }

    #[test]
    fn read_for_another_train_is_ignored() {
        let (mut replica, mut store, blocks, _, _) = setup();
        use zugchain_pbft::Checkpoint;
        let proof = CheckpointProof {
            checkpoint: Checkpoint {
                sn: blocks[2].header.last_sn,
                state_digest: blocks[2].hash(),
            },
            signatures: vec![],
        };
        let replies = replica.handle(
            ExportMessage::Read {
                train: TrainId(42),
                last_height: 0,
                blocks_from: NodeId(1),
            },
            &mut store,
            &[proof],
        );
        assert!(replies.is_empty(), "foreign train's read answered");
    }

    #[test]
    fn delete_quorum_prunes_and_acks() {
        let (mut replica, mut store, blocks, dc_pairs, _) = setup();
        let cmd = DeleteCmd {
            height: 3,
            hash: blocks[2].hash(),
        };
        let (status, _) =
            replica.process_delete(SignedDelete::sign(cmd, DcId(0), &dc_pairs[0]), &mut store);
        assert_eq!(status, DeleteStatus::AwaitingQuorum { have: 1, need: 2 });
        assert_eq!(store.len(), 5, "no pruning before quorum");

        let (status, replies) =
            replica.process_delete(SignedDelete::sign(cmd, DcId(2), &dc_pairs[2]), &mut store);
        assert_eq!(status, DeleteStatus::Executed { pruned: 3 });
        assert_eq!(store.len(), 2);
        assert_eq!(store.base(), (3, blocks[2].hash()));
        assert_eq!(replies.len(), 1);
        let ExportMessage::Ack(ack) = &replies[0] else {
            panic!("ack expected");
        };
        assert_eq!(ack.cmd, cmd);
        assert_eq!(ack.node, NodeId(1));
    }

    #[test]
    fn duplicate_dc_signature_does_not_reach_quorum() {
        let (mut replica, mut store, blocks, dc_pairs, _) = setup();
        let cmd = DeleteCmd {
            height: 2,
            hash: blocks[1].hash(),
        };
        let delete = SignedDelete::sign(cmd, DcId(0), &dc_pairs[0]);
        let (status1, _) = replica.process_delete(delete.clone(), &mut store);
        let (status2, _) = replica.process_delete(delete, &mut store);
        assert_eq!(status1, DeleteStatus::AwaitingQuorum { have: 1, need: 2 });
        assert_eq!(status2, DeleteStatus::AwaitingQuorum { have: 1, need: 2 });
    }

    #[test]
    fn forged_delete_is_rejected() {
        let (mut replica, mut store, blocks, dc_pairs, _) = setup();
        let cmd = DeleteCmd {
            height: 2,
            hash: blocks[1].hash(),
        };
        // DC 0's command signed with DC 1's key.
        let mut forged = SignedDelete::sign(cmd, DcId(0), &dc_pairs[1]);
        forged.dc = DcId(0);
        let (status, _) = replica.process_delete(forged, &mut store);
        assert_eq!(status, DeleteStatus::Rejected);
    }

    #[test]
    fn delete_with_wrong_hash_is_rejected() {
        let (mut replica, mut store, _, dc_pairs, _) = setup();
        let cmd = DeleteCmd {
            height: 2,
            hash: Digest::of(b"a different chain"),
        };
        let (status, _) =
            replica.process_delete(SignedDelete::sign(cmd, DcId(0), &dc_pairs[0]), &mut store);
        assert_eq!(status, DeleteStatus::Rejected);
    }

    #[test]
    fn early_delete_is_delayed_until_block_exists() {
        let (mut replica, mut store, _, dc_pairs, _) = setup();
        // Height 9 does not exist yet (store has 5 blocks).
        let future_hash = Digest::of(b"future");
        let cmd = DeleteCmd {
            height: 9,
            hash: future_hash,
        };
        for dc in 0..2u64 {
            let (status, _) = replica.process_delete(
                SignedDelete::sign(cmd, DcId(dc), &dc_pairs[dc as usize]),
                &mut store,
            );
            assert_eq!(status, DeleteStatus::DelayedUntilBlockExists);
        }
        assert_eq!(replica.pending_deletes(), 2);
        assert_eq!(store.len(), 5, "nothing pruned early");
    }

    #[test]
    fn delayed_delete_executes_when_chain_catches_up() {
        let (mut replica, mut store, _, dc_pairs, _) = setup();
        // Build what blocks 6 and 7 will look like, issue deletes for 6,
        // then append and replay.
        let mut builder = BlockBuilder::new(2);
        // Recreate the same chain the store has (block size 2, 5 blocks).
        let mut all = Vec::new();
        for sn in 1..=14u64 {
            if let Some(block) = builder.push(
                LoggedRequest {
                    sn,
                    origin: 0,
                    payload: vec![sn as u8; 16],
                },
                sn * 64,
            ) {
                all.push(block);
            }
        }
        let block6 = all[5].clone();
        let cmd = DeleteCmd {
            height: 6,
            hash: block6.hash(),
        };
        for dc in 0..2u64 {
            let (status, _) = replica.process_delete(
                SignedDelete::sign(cmd, DcId(dc), &dc_pairs[dc as usize]),
                &mut store,
            );
            assert_eq!(status, DeleteStatus::DelayedUntilBlockExists);
        }
        store.append(block6).unwrap();
        let replies = replica.on_block_appended(&mut store);
        assert_eq!(replies.len(), 1, "ack after delayed execution");
        assert_eq!(store.base().0, 6);
        assert_eq!(replica.executed_up_to(), 6);
    }

    #[test]
    fn emergency_reclaim_stubs_headers_and_produces_record() {
        let (mut replica, mut store, _, _, _) = setup();
        let before = store.resident_bytes();
        let record = replica.emergency_reclaim(&mut store, 2).expect("stubbed");
        assert_eq!(
            record,
            EmergencyPrune {
                first_height: 1,
                last_height: 2
            }
        );
        assert!(store.resident_bytes() < before);
        assert_eq!(store.header_stubs().len(), 2);
        let payload = record.to_payload();
        assert!(!payload.is_empty());
    }

    #[test]
    fn executed_delete_is_idempotent() {
        let (mut replica, mut store, blocks, dc_pairs, _) = setup();
        let cmd = DeleteCmd {
            height: 2,
            hash: blocks[1].hash(),
        };
        for dc in 0..2u64 {
            replica.process_delete(
                SignedDelete::sign(cmd, DcId(dc), &dc_pairs[dc as usize]),
                &mut store,
            );
        }
        let (status, _) =
            replica.process_delete(SignedDelete::sign(cmd, DcId(1), &dc_pairs[1]), &mut store);
        assert_eq!(status, DeleteStatus::AlreadyExecuted);
    }
}
