use std::fmt;

use zugchain_blockchain::Block;
use zugchain_crypto::{Digest, KeyPair, Keystore, Signature};
use zugchain_pbft::{CheckpointProof, NodeId};
use zugchain_wire::{decode_seq, encode_seq, Decode, Encode, Reader, TrainId, WireError, Writer};

/// Identifier of a railway company's private data center.
///
/// Data-center ids double as key ids in the data-center keystore; they
/// live in a separate id space from replica [`NodeId`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DcId(pub u64);

impl fmt::Display for DcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dc {}", self.0)
    }
}

impl Encode for DcId {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.0);
    }
}

impl Decode for DcId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DcId(r.read_u64()?))
    }
}

/// The delete command: "the index and hash of the block in the latest
/// stable checkpoint" (step ⑤).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeleteCmd {
    /// Height of the last exported block; everything up to and including
    /// it may be pruned.
    pub height: u64,
    /// Hash of that block, binding the delete to the exact chain.
    pub hash: Digest,
}

impl Encode for DeleteCmd {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.height);
        self.hash.encode(w);
    }
}

impl Decode for DeleteCmd {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DeleteCmd {
            height: r.read_u64()?,
            hash: Digest::decode(r)?,
        })
    }
}

/// A delete command signed by a data center.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedDelete {
    /// The command.
    pub cmd: DeleteCmd,
    /// Issuing data center.
    pub dc: DcId,
    /// Signature over the canonical encoding of `cmd`.
    pub signature: Signature,
}

impl SignedDelete {
    /// Signs `cmd` as data center `dc`.
    pub fn sign(cmd: DeleteCmd, dc: DcId, key: &KeyPair) -> Self {
        Self {
            cmd,
            dc,
            signature: key.sign(&zugchain_wire::to_bytes(&cmd)),
        }
    }

    /// Verifies against the data-center keystore.
    pub fn verify(&self, dc_keystore: &Keystore) -> bool {
        dc_keystore
            .verify(
                self.dc.0,
                &zugchain_wire::to_bytes(&self.cmd),
                &self.signature,
            )
            .is_ok()
    }
}

impl Encode for SignedDelete {
    fn encode(&self, w: &mut Writer) {
        self.cmd.encode(w);
        self.dc.encode(w);
        self.signature.encode(w);
    }
}

impl Decode for SignedDelete {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SignedDelete {
            cmd: DeleteCmd::decode(r)?,
            dc: DcId::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

/// A replica's signed acknowledgement of an executed delete (step ⑦),
/// allowing early detection of replicas that failed to free memory
/// (scenario (v)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedAck {
    /// The executed command.
    pub cmd: DeleteCmd,
    /// The acknowledging replica.
    pub node: NodeId,
    /// Signature over the canonical encoding of `cmd`.
    pub signature: Signature,
}

impl SignedAck {
    /// Signs an acknowledgement of `cmd` as replica `node`.
    pub fn sign(cmd: DeleteCmd, node: NodeId, key: &KeyPair) -> Self {
        Self {
            cmd,
            node,
            signature: key.sign(&zugchain_wire::to_bytes(&cmd)),
        }
    }

    /// Verifies against the replica keystore.
    pub fn verify(&self, keystore: &Keystore) -> bool {
        keystore
            .verify(
                self.node.0,
                &zugchain_wire::to_bytes(&self.cmd),
                &self.signature,
            )
            .is_ok()
    }
}

impl Encode for SignedAck {
    fn encode(&self, w: &mut Writer) {
        self.cmd.encode(w);
        self.node.encode(w);
        self.signature.encode(w);
    }
}

impl Decode for SignedAck {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SignedAck {
            cmd: DeleteCmd::decode(r)?,
            node: NodeId::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

/// A replica's answer to a `read`: its latest stable checkpoint and the
/// block it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointReply {
    /// The latest stable checkpoint proof, or `None` if the replica has
    /// none yet.
    pub proof: Option<CheckpointProof>,
    /// Height of the block the checkpoint covers.
    pub block_height: u64,
    /// Hash of that block (must equal the proof's state digest).
    pub block_hash: Digest,
}

impl Encode for CheckpointReply {
    fn encode(&self, w: &mut Writer) {
        self.proof.encode(w);
        w.write_u64(self.block_height);
        self.block_hash.encode(w);
    }
}

impl Decode for CheckpointReply {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CheckpointReply {
            proof: Option::<CheckpointProof>::decode(r)?,
            block_height: r.read_u64()?,
            block_hash: Digest::decode(r)?,
        })
    }
}

/// Outcome of processing a signed delete on a replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeleteStatus {
    /// Recorded, waiting for more data-center signatures.
    AwaitingQuorum {
        /// Valid signatures collected so far.
        have: usize,
        /// Signatures required.
        need: usize,
    },
    /// The referenced block does not exist yet; delayed (scenario (i)).
    DelayedUntilBlockExists,
    /// Executed: blocks pruned, acknowledgement emitted.
    Executed {
        /// Number of blocks removed.
        pruned: usize,
    },
    /// Rejected: bad signature or hash mismatch with the local chain.
    Rejected,
    /// Already executed earlier (idempotent).
    AlreadyExecuted,
}

/// Messages of the export protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum ExportMessage {
    /// ① Data center → replicas: send your latest checkpoint; the chosen
    /// replica also sends full blocks above `last_height`.
    Read {
        /// The train whose chain the data center is exporting. Replicas of
        /// a different train ignore the read, so a misaddressed export
        /// round cannot pull another vehicle's blocks.
        train: TrainId,
        /// Height of the last block the data center already holds.
        last_height: u64,
        /// The replica chosen to send full blocks.
        blocks_from: NodeId,
    },
    /// ② Replica → data center: latest stable checkpoint.
    Checkpoint(CheckpointReply),
    /// ② Replica → data center: full blocks in `(last_height, to]`.
    Blocks {
        /// The blocks, oldest first.
        blocks: Vec<Block>,
    },
    /// ④ Data center → one replica: second-round fetch of missing blocks.
    BlockRange {
        /// Exclusive lower height bound.
        from_height: u64,
        /// Inclusive upper height bound.
        to_height: u64,
    },
    /// ⑤ Data center → replicas: signed delete.
    Delete(SignedDelete),
    /// ⑦ Replica → data centers: signed acknowledgement.
    Ack(SignedAck),
    /// ③ Data center → data center: synchronize exported state.
    DcSync {
        /// Origin train of the synchronized blocks; the receiving data
        /// center rejects a sync for a train it is not exporting.
        train: TrainId,
        /// The checkpoint proof backing the blocks.
        proof: CheckpointProof,
        /// The exported blocks.
        blocks: Vec<Block>,
    },
}

impl ExportMessage {
    const TAG_READ: u8 = 0;
    const TAG_CHECKPOINT: u8 = 1;
    const TAG_BLOCKS: u8 = 2;
    const TAG_RANGE: u8 = 3;
    const TAG_DELETE: u8 = 4;
    const TAG_ACK: u8 = 5;
    const TAG_SYNC: u8 = 6;

    /// Encoded size in bytes, for bandwidth accounting over the LTE link.
    pub fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for ExportMessage {
    fn encode(&self, w: &mut Writer) {
        match self {
            ExportMessage::Read {
                train,
                last_height,
                blocks_from,
            } => {
                w.write_u8(Self::TAG_READ);
                train.encode(w);
                w.write_u64(*last_height);
                blocks_from.encode(w);
            }
            ExportMessage::Checkpoint(reply) => {
                w.write_u8(Self::TAG_CHECKPOINT);
                reply.encode(w);
            }
            ExportMessage::Blocks { blocks } => {
                w.write_u8(Self::TAG_BLOCKS);
                encode_seq(blocks, w);
            }
            ExportMessage::BlockRange {
                from_height,
                to_height,
            } => {
                w.write_u8(Self::TAG_RANGE);
                w.write_u64(*from_height);
                w.write_u64(*to_height);
            }
            ExportMessage::Delete(delete) => {
                w.write_u8(Self::TAG_DELETE);
                delete.encode(w);
            }
            ExportMessage::Ack(ack) => {
                w.write_u8(Self::TAG_ACK);
                ack.encode(w);
            }
            ExportMessage::DcSync {
                train,
                proof,
                blocks,
            } => {
                w.write_u8(Self::TAG_SYNC);
                train.encode(w);
                proof.encode(w);
                encode_seq(blocks, w);
            }
        }
    }
}

impl Decode for ExportMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            Self::TAG_READ => Ok(ExportMessage::Read {
                train: TrainId::decode(r)?,
                last_height: r.read_u64()?,
                blocks_from: NodeId::decode(r)?,
            }),
            Self::TAG_CHECKPOINT => Ok(ExportMessage::Checkpoint(CheckpointReply::decode(r)?)),
            Self::TAG_BLOCKS => Ok(ExportMessage::Blocks {
                blocks: decode_seq(r)?,
            }),
            Self::TAG_RANGE => Ok(ExportMessage::BlockRange {
                from_height: r.read_u64()?,
                to_height: r.read_u64()?,
            }),
            Self::TAG_DELETE => Ok(ExportMessage::Delete(SignedDelete::decode(r)?)),
            Self::TAG_ACK => Ok(ExportMessage::Ack(SignedAck::decode(r)?)),
            Self::TAG_SYNC => Ok(ExportMessage::DcSync {
                train: TrainId::decode(r)?,
                proof: CheckpointProof::decode(r)?,
                blocks: decode_seq(r)?,
            }),
            tag => Err(WireError::InvalidDiscriminant {
                type_name: "ExportMessage",
                value: u64::from(tag),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zugchain_pbft::Checkpoint;

    #[test]
    fn delete_sign_and_verify() {
        let (pairs, keystore) = Keystore::generate(3, 50);
        let cmd = DeleteCmd {
            height: 7,
            hash: Digest::of(b"block-7"),
        };
        let signed = SignedDelete::sign(cmd, DcId(1), &pairs[1]);
        assert!(signed.verify(&keystore));

        let mut forged = signed.clone();
        forged.dc = DcId(2);
        assert!(!forged.verify(&keystore));
    }

    #[test]
    fn ack_sign_and_verify() {
        let (pairs, keystore) = Keystore::generate(4, 60);
        let cmd = DeleteCmd {
            height: 3,
            hash: Digest::of(b"block-3"),
        };
        let ack = SignedAck::sign(cmd, NodeId(2), &pairs[2]);
        assert!(ack.verify(&keystore));
    }

    #[test]
    fn export_messages_round_trip() {
        let (pairs, _) = Keystore::generate(1, 70);
        let cmd = DeleteCmd {
            height: 1,
            hash: Digest::of(b"h"),
        };
        let proof = CheckpointProof {
            checkpoint: Checkpoint {
                sn: 10,
                state_digest: Digest::of(b"b"),
            },
            signatures: vec![],
        };
        let messages = vec![
            ExportMessage::Read {
                train: TrainId(3),
                last_height: 5,
                blocks_from: NodeId(2),
            },
            ExportMessage::Checkpoint(CheckpointReply {
                proof: Some(proof.clone()),
                block_height: 1,
                block_hash: Digest::of(b"b"),
            }),
            ExportMessage::Blocks {
                blocks: vec![Block::genesis()],
            },
            ExportMessage::BlockRange {
                from_height: 2,
                to_height: 9,
            },
            ExportMessage::Delete(SignedDelete::sign(cmd, DcId(0), &pairs[0])),
            ExportMessage::Ack(SignedAck::sign(cmd, NodeId(0), &pairs[0])),
            ExportMessage::DcSync {
                train: TrainId::DEFAULT,
                proof,
                blocks: vec![Block::genesis()],
            },
        ];
        for message in messages {
            let back: ExportMessage =
                zugchain_wire::from_bytes(&zugchain_wire::to_bytes(&message)).unwrap();
            assert_eq!(back, message);
            assert!(back.wire_size() > 0);
        }
    }
}
