//! The serving core: router, handlers, and the threaded TCP front end.
//!
//! [`ApiService`] is the transport-free heart — it maps one parsed
//! [`Request`] to one [`Response`] through auth, rate limiting, the
//! segment-keyed cache, and the archive backend. [`ApiServer`] wraps it
//! in a thread-per-connection HTTP/1.1 listener (keep-alive, bounded
//! read buffers, stop-flag shutdown). The split keeps the policy layer
//! benchmarkable and testable without sockets, and lets the bench
//! isolate cache economics from loopback syscall noise.
//!
//! Thread-per-connection is deliberate: readers hold keep-alive
//! connections for many requests, and a fixed worker pool would let a
//! handful of idle keep-alive sockets starve new connections. Threads
//! poll their socket with a 250ms read timeout so a stop request is
//! honored promptly even on idle connections.

use std::collections::HashMap;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use zugchain_archive::{Archive, BlockInfo, FleetArchive, QueryEngine};
use zugchain_telemetry::{
    check_chain, Counter, Gauge, Histogram, Registry, Span, TraceStore, STAGES,
};
use zugchain_wire::TrainId;

use crate::auth::{Auth, AuthDecision};
use crate::cache::ResponseCache;
use crate::http::{self, Parsed, Request, Response};
use crate::json::{self, JsonObject};
use crate::ratelimit::RateLimiter;

/// Serving policy: credentials, rate limits, cache size, page bounds.
#[derive(Debug, Clone)]
pub struct ApiConfig {
    /// Accepted bearer tokens; empty means an open server.
    pub tokens: Vec<String>,
    /// Sustained per-client requests per second (0 = unlimited).
    pub rate_per_sec: u64,
    /// If nonzero, one sustained request per this many milliseconds —
    /// overrides `rate_per_sec` to express rates below one per second
    /// (e.g. 5000 is one request per five seconds).
    pub rate_period_ms: u64,
    /// Per-client burst allowance.
    pub rate_burst: u64,
    /// Response-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Page size when a blocks query gives no `limit`.
    pub default_page_limit: usize,
    /// Hard cap on a requested `limit`.
    pub max_page_limit: usize,
}

impl ApiConfig {
    /// An open server: no auth, no rate limit, a modest cache.
    pub fn open() -> Self {
        ApiConfig {
            tokens: Vec::new(),
            rate_per_sec: 0,
            rate_period_ms: 0,
            rate_burst: 0,
            cache_capacity: 1024,
            default_page_limit: 100,
            max_page_limit: 1000,
        }
    }
}

impl Default for ApiConfig {
    fn default() -> Self {
        Self::open()
    }
}

/// What the server serves: nothing (metrics/health only), one train's
/// archive, or a whole fleet.
#[derive(Clone)]
pub enum Backend {
    /// No archive behind the server — `/metrics` and `/healthz` only
    /// (the shape the cluster status socket uses).
    None,
    /// A single train's archive behind a [`QueryEngine`].
    Single(QueryEngine),
    /// A sharded fleet archive; train ids route to shards.
    Fleet(FleetArchive),
}

impl Backend {
    fn trains(&self) -> Vec<TrainId> {
        match self {
            Backend::None => Vec::new(),
            Backend::Single(engine) => vec![engine.with_archive(|a| a.train())],
            Backend::Fleet(fleet) => fleet.trains(),
        }
    }

    fn with_train<R>(&self, train: TrainId, f: impl FnOnce(&Archive) -> R) -> Option<R> {
        match self {
            Backend::None => None,
            Backend::Single(engine) => {
                engine.with_archive(|a| if a.train() == train { Some(f(a)) } else { None })
            }
            Backend::Fleet(fleet) => fleet.with_shard(train, f),
        }
    }
}

/// Endpoint labels used in metrics — a closed set so the counter matrix
/// can be pre-resolved instead of hitting the registry per request.
const ENDPOINTS: [&str; 8] = [
    "healthz", "metrics", "trains", "blocks", "timeline", "bundle", "trace", "other",
];
const STATUSES: [u16; 8] = [200, 400, 401, 404, 405, 429, 500, 501];

struct ApiMetrics {
    requests: HashMap<(&'static str, u16), Counter>,
    latency: HashMap<&'static str, Histogram>,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_entries: Gauge,
    rate_limited: Counter,
    auth_failures: Counter,
    registry: Arc<Registry>,
}

impl ApiMetrics {
    fn new(registry: Arc<Registry>) -> Self {
        let mut requests = HashMap::new();
        let mut latency = HashMap::new();
        for endpoint in ENDPOINTS {
            for status in STATUSES {
                requests.insert(
                    (endpoint, status),
                    registry.counter(
                        "zugchain_api_requests_total",
                        &[
                            ("endpoint".to_string(), endpoint.to_string()),
                            ("status".to_string(), status.to_string()),
                        ],
                    ),
                );
            }
            latency.insert(
                endpoint,
                registry.histogram(
                    "zugchain_api_latency_us",
                    &[("endpoint".to_string(), endpoint.to_string())],
                ),
            );
        }
        ApiMetrics {
            requests,
            latency,
            cache_hits: registry.counter("zugchain_api_cache_hits_total", &[]),
            cache_misses: registry.counter("zugchain_api_cache_misses_total", &[]),
            cache_entries: registry.gauge("zugchain_api_cache_entries", &[]),
            rate_limited: registry.counter("zugchain_api_rate_limited_total", &[]),
            auth_failures: registry.counter("zugchain_api_auth_failures_total", &[]),
            registry,
        }
    }

    fn observe(&self, endpoint: &'static str, status: u16, elapsed_us: u64) {
        match self.requests.get(&(endpoint, status)) {
            Some(counter) => counter.inc(),
            // A status outside the pre-resolved matrix still counts.
            None => self
                .registry
                .counter(
                    "zugchain_api_requests_total",
                    &[
                        ("endpoint".to_string(), endpoint.to_string()),
                        ("status".to_string(), status.to_string()),
                    ],
                )
                .inc(),
        }
        if let Some(histogram) = self.latency.get(endpoint) {
            histogram.observe(elapsed_us);
        }
    }
}

/// The transport-free serving core: one request in, one response out.
pub struct ApiService {
    backend: Backend,
    auth: Auth,
    limiter: RateLimiter,
    cache: ResponseCache,
    metrics: ApiMetrics,
    registry: Arc<Registry>,
    /// Cross-node causal-span join point behind `/v1/trains/<id>/trace/<sn>`;
    /// without one the endpoint answers 404.
    traces: Option<Arc<TraceStore>>,
    default_page_limit: usize,
    max_page_limit: usize,
    started: Instant,
}

enum Route {
    Healthz,
    Metrics,
    Trains,
    Blocks(TrainId),
    Timeline(TrainId),
    Bundle(TrainId, u64),
    Trace(TrainId, u64),
    NotFound,
}

fn error_body(message: &str) -> String {
    JsonObject::new().field_str("error", message).finish()
}

impl ApiService {
    /// Builds the serving core over `backend`, instrumented into
    /// `registry` (which `/metrics` also renders).
    pub fn new(config: ApiConfig, backend: Backend, registry: Arc<Registry>) -> Self {
        Self::with_traces(config, backend, registry, None)
    }

    /// Like [`ApiService::new`] with a cluster-shared [`TraceStore`]
    /// behind the `/v1/trains/<id>/trace/<sn>` lifecycle endpoint.
    pub fn with_traces(
        config: ApiConfig,
        backend: Backend,
        registry: Arc<Registry>,
        traces: Option<Arc<TraceStore>>,
    ) -> Self {
        ApiService {
            traces,
            backend,
            auth: if config.tokens.is_empty() {
                Auth::open()
            } else {
                Auth::with_tokens(config.tokens.clone())
            },
            limiter: if config.rate_period_ms > 0 {
                RateLimiter::per_period(config.rate_period_ms, config.rate_burst)
            } else {
                RateLimiter::new(config.rate_per_sec, config.rate_burst)
            },
            cache: ResponseCache::new(config.cache_capacity),
            metrics: ApiMetrics::new(registry.clone()),
            registry,
            default_page_limit: config.default_page_limit.max(1),
            // Never above the engine's own cap, so the HTTP clamp and
            // the `page_by_sn` clamp agree on every request.
            max_page_limit: config.max_page_limit.clamp(1, Archive::MAX_PAGE_LIMIT),
            started: Instant::now(),
        }
    }

    /// The metrics registry `/metrics` renders.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Milliseconds since the service started — the rate limiter's
    /// clock (monotonic, so refill arithmetic never sees time jumps).
    pub fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn route(path: &str) -> (Route, &'static str) {
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        match segments.as_slice() {
            ["healthz"] => (Route::Healthz, "healthz"),
            ["metrics"] => (Route::Metrics, "metrics"),
            ["v1", "trains"] => (Route::Trains, "trains"),
            ["v1", "trains", id, "blocks"] => match TrainId::parse(id) {
                Some(train) => (Route::Blocks(train), "blocks"),
                None => (Route::NotFound, "blocks"),
            },
            ["v1", "trains", id, "timeline"] => match TrainId::parse(id) {
                Some(train) => (Route::Timeline(train), "timeline"),
                None => (Route::NotFound, "timeline"),
            },
            ["v1", "trains", id, "bundle", sn] => match (TrainId::parse(id), sn.parse::<u64>()) {
                (Some(train), Ok(sn)) => (Route::Bundle(train, sn), "bundle"),
                _ => (Route::NotFound, "bundle"),
            },
            ["v1", "trains", id, "trace", sn] => match (TrainId::parse(id), sn.parse::<u64>()) {
                (Some(train), Ok(sn)) => (Route::Trace(train, sn), "trace"),
                _ => (Route::NotFound, "trace"),
            },
            _ => (Route::NotFound, "other"),
        }
    }

    /// Serves one parsed request. `client` is the transport's fallback
    /// identity (peer address) for rate limiting on open servers.
    pub fn respond(&self, request: &Request, client: &str) -> Response {
        let started = Instant::now();
        let (route, endpoint) = Self::route(&request.path);
        let response = self.dispatch(request, client, route, endpoint);
        self.metrics.observe(
            endpoint,
            response.status,
            started.elapsed().as_micros() as u64,
        );
        response
    }

    fn dispatch(
        &self,
        request: &Request,
        client: &str,
        route: Route,
        endpoint: &'static str,
    ) -> Response {
        if request.method != "GET" {
            return Response::json(405, error_body("only GET is supported"));
        }
        // Health and metrics stay reachable without credentials: probes
        // and scrapers must keep working when tokens rotate.
        match route {
            Route::Healthz => return Response::text(200, "ok\n"),
            Route::Metrics => {
                return Response {
                    status: 200,
                    content_type: "text/plain; version=0.0.4",
                    body: self.registry.render_prometheus().into_bytes(),
                    extra_headers: Vec::new(),
                }
            }
            _ => {}
        }

        // Everything under /v1 is authenticated and rate limited.
        let identity = match self.auth.check(request.header("authorization")) {
            AuthDecision::Open => client.to_string(),
            AuthDecision::Allowed(token) => token,
            AuthDecision::Denied => {
                self.metrics.auth_failures.inc();
                return Response::json(401, error_body("missing or invalid bearer token"))
                    .with_header("www-authenticate", "Bearer");
            }
        };
        if let Err(wait_ms) = self.limiter.acquire(&identity, self.now_ms()) {
            self.metrics.rate_limited.inc();
            // The earliest retry that can succeed, rounded up to whole
            // seconds (the header's unit) — a 1-req/5-s limiter must
            // say 5, not send clients into a retry loop.
            let retry_after_s = wait_ms.div_ceil(1000).max(1);
            return Response::json(429, error_body("rate limit exceeded"))
                .with_header("retry-after", retry_after_s.to_string());
        }

        match route {
            Route::Healthz | Route::Metrics => unreachable!("handled above"),
            Route::Trains => self.serve_trains(),
            Route::Blocks(train) => self.serve_blocks(train, request),
            Route::Timeline(train) => self.serve_timeline(train, request),
            Route::Bundle(train, sn) => self.serve_bundle(train, sn),
            Route::Trace(train, sn) => self.serve_trace(train, sn),
            Route::NotFound => Response::json(
                404,
                error_body(&format!(
                    "no such resource: {} (endpoint family: {endpoint})",
                    request.path
                )),
            ),
        }
    }

    fn serve_trains(&self) -> Response {
        let mut rows = Vec::new();
        for train in self.backend.trains() {
            let Some(row) = self.backend.with_train(train, |archive| {
                let head = archive.head();
                JsonObject::new()
                    .field_u64("train", train.0)
                    .field_opt_u64("head_height", head.map(|(h, _)| h))
                    .field_raw(
                        "head_hash",
                        &head.map_or("null".to_string(), |(_, hash)| format!("\"{hash}\"")),
                    )
                    .field_u64("segments", archive.segment_count() as u64)
                    .field_u64("requests", archive.request_count() as u64)
                    .finish()
            }) else {
                continue;
            };
            rows.push(row);
        }
        let body = JsonObject::new()
            .field_u64("count", rows.len() as u64)
            .field_raw("trains", &json::array(rows))
            .finish();
        Response::json(200, body)
    }

    fn parse_u64(request: &Request, name: &str, default: u64) -> Result<u64, Response> {
        match request.query_param(name) {
            None | Some("") => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                Response::json(400, error_body(&format!("{name} must be a decimal number")))
            }),
        }
    }

    fn serve_blocks(&self, train: TrainId, request: &Request) -> Response {
        let from_sn = match Self::parse_u64(request, "from_sn", 0) {
            Ok(v) => v,
            Err(response) => return response,
        };
        let limit = match Self::parse_u64(request, "limit", self.default_page_limit as u64) {
            Ok(0) => return Response::json(400, error_body("limit must be at least 1")),
            Ok(v) => (v as usize).min(self.max_page_limit),
            Err(response) => return response,
        };

        // A *full* page ends strictly before the open tail, so it is
        // immutable under append-only ingest: cacheable forever under a
        // plain key. A partial page touches the tail and bypasses the
        // cache entirely.
        let key = format!("blocks/{}/{from_sn}/{limit}", train.0);
        if let Some(hit) = self.cache.get(&key) {
            self.metrics.cache_hits.inc();
            return Response {
                status: 200,
                content_type: hit.content_type,
                body: hit.body.as_ref().clone(),
                extra_headers: Vec::new(),
            };
        }
        self.metrics.cache_misses.inc();

        // Page and head are read under one archive borrow, so the
        // next-cursor decision below can't race a concurrent ingest.
        let Some((page, head_sn)) = self
            .backend
            .with_train(train, |a| (a.page_by_sn(from_sn, limit), a.head_sn()))
        else {
            return Response::json(404, error_body(&format!("unknown train {train}")));
        };
        // A next cursor exists only when the page ends strictly before
        // the archived head. A full page that reaches the head used to
        // advertise `last_sn + 1` anyway — a phantom cursor pointing
        // past the end, sending clients on a guaranteed-empty fetch.
        let next_sn = match (page.last(), head_sn) {
            (Some(last), Some(head)) if last.last_sn < head => Some(last.last_sn + 1),
            _ => None,
        };
        // Only a full page strictly inside the archived range is
        // immutable (its blocks AND its next cursor can never change
        // under append-only ingest) — a page touching the head would
        // gain a next cursor when the chain grows, so it must not be
        // cached.
        let full = page.len() == limit && next_sn.is_some();
        let body = JsonObject::new()
            .field_u64("train", train.0)
            .field_u64("from_sn", from_sn)
            .field_u64("limit", limit as u64)
            .field_u64("count", page.len() as u64)
            .field_raw("blocks", &json::array(page.iter().map(render_block_info)))
            .field_opt_u64("next_sn", next_sn)
            .finish()
            .into_bytes();
        if full {
            let shared = Arc::new(body);
            self.cache.put(&key, "application/json", shared.clone());
            self.metrics.cache_entries.set(self.cache.len() as i64);
            return Response {
                status: 200,
                content_type: "application/json",
                body: shared.as_ref().clone(),
                extra_headers: Vec::new(),
            };
        }
        Response {
            status: 200,
            content_type: "application/json",
            body,
            extra_headers: Vec::new(),
        }
    }

    fn serve_timeline(&self, train: TrainId, request: &Request) -> Response {
        let from_ms = match Self::parse_u64(request, "from_ms", 0) {
            Ok(v) => v,
            Err(response) => return response,
        };
        let to_ms = match Self::parse_u64(request, "to_ms", u64::MAX) {
            Ok(v) => v,
            Err(response) => return response,
        };

        // Timelines span the whole archive, so the cache key carries
        // the segment count observed in the same read-lock snapshot as
        // the body: a new segment changes the key rather than
        // invalidating the entry (version-keyed, invalidation-free).
        let Some(seg_count) = self.backend.with_train(train, |a| a.segment_count()) else {
            return Response::json(404, error_body(&format!("unknown train {train}")));
        };
        let key = format!("timeline/{}/{from_ms}/{to_ms}/{seg_count}", train.0);
        if let Some(hit) = self.cache.get(&key) {
            self.metrics.cache_hits.inc();
            return Response {
                status: 200,
                content_type: hit.content_type,
                body: hit.body.as_ref().clone(),
                extra_headers: Vec::new(),
            };
        }
        self.metrics.cache_misses.inc();

        // Recompute the count *inside* the closure that builds the
        // body: ingest may have sealed a segment since the lookup, and
        // the insert key must describe exactly the snapshot served.
        let Some((snapshot_count, body)) = self.backend.with_train(train, |archive| {
            let timeline = archive.timeline(from_ms, to_ms);
            let body = JsonObject::new()
                .field_u64("train", train.0)
                .field_u64("from_ms", from_ms)
                .field_u64("to_ms", to_ms)
                .field_u64("events", timeline.events().len() as u64)
                .field_opt_u64("max_speed_ckmh", timeline.max_speed_ckmh().map(u64::from))
                .field_u64("speed_samples", timeline.speed_profile().len() as u64)
                .field_raw(
                    "findings",
                    &json::string_array(timeline.findings().iter().map(|f| f.to_string())),
                )
                .finish()
                .into_bytes();
            (archive.segment_count(), body)
        }) else {
            return Response::json(404, error_body(&format!("unknown train {train}")));
        };
        let shared = Arc::new(body);
        let insert_key = format!("timeline/{}/{from_ms}/{to_ms}/{snapshot_count}", train.0);
        self.cache
            .put(&insert_key, "application/json", shared.clone());
        self.metrics.cache_entries.set(self.cache.len() as i64);
        Response {
            status: 200,
            content_type: "application/json",
            body: shared.as_ref().clone(),
            extra_headers: Vec::new(),
        }
    }

    /// Serves the assembled cross-node lifecycle of consensus sequence
    /// number `sn`: one entry per trace id decided at that sn (honest
    /// runs have exactly one; two is equivocation evidence), each with
    /// its canonical span chain and a completeness verdict. Never
    /// cached — traces grow while the pipeline runs; the body is a pure
    /// function of the store, so deterministic runs serve identical
    /// bytes.
    fn serve_trace(&self, train: TrainId, sn: u64) -> Response {
        let Some(store) = &self.traces else {
            return Response::json(404, error_body("causal tracing is not enabled"));
        };
        let mut traces = Vec::new();
        for trace_id in store.traces_for_sn(sn) {
            let spans: Vec<_> = store
                .assemble(trace_id)
                .into_iter()
                .filter(|span| span.train == train.0)
                .collect();
            if spans.is_empty() {
                continue;
            }
            let check = check_chain(&spans, &STAGES);
            traces.push(
                JsonObject::new()
                    .field_u64("trace_id", trace_id)
                    .field_u64("spans", spans.len() as u64)
                    .field_str("chain", &format!("{check:?}"))
                    .field_raw("lifecycle", &json::array(spans.iter().map(Span::to_json)))
                    .finish(),
            );
        }
        if traces.is_empty() {
            return Response::json(
                404,
                error_body(&format!("no trace recorded for sn {sn} on train {train}")),
            );
        }
        let body = JsonObject::new()
            .field_u64("train", train.0)
            .field_u64("sn", sn)
            .field_u64("count", traces.len() as u64)
            .field_raw("traces", &json::array(traces))
            .finish();
        Response::json(200, body)
    }

    fn serve_bundle(&self, train: TrainId, sn: u64) -> Response {
        // A bundle is derived from one sealed segment: immutable once
        // it exists. Missing sns are *not* cached — they may be sealed
        // into a segment later.
        let key = format!("bundle/{}/{sn}", train.0);
        if let Some(hit) = self.cache.get(&key) {
            self.metrics.cache_hits.inc();
            return Response {
                status: 200,
                content_type: hit.content_type,
                body: hit.body.as_ref().clone(),
                extra_headers: Vec::new(),
            };
        }
        self.metrics.cache_misses.inc();

        let Some(bundle) = self.backend.with_train(train, |a| a.bundle_by_sn(sn)) else {
            return Response::json(404, error_body(&format!("unknown train {train}")));
        };
        let Some(bundle) = bundle else {
            return Response::json(
                404,
                error_body(&format!("no archived block contains sn {sn}")),
            );
        };
        let bytes = Arc::new(bundle.to_zab_bytes());
        self.cache
            .put(&key, "application/octet-stream", bytes.clone());
        self.metrics.cache_entries.set(self.cache.len() as i64);
        Response {
            status: 200,
            content_type: "application/octet-stream",
            body: bytes.as_ref().clone(),
            extra_headers: Vec::new(),
        }
    }
}

fn render_block_info(info: &BlockInfo) -> String {
    JsonObject::new()
        .field_u64("height", info.height)
        .field_str("hash", &info.hash.to_string())
        .field_u64("first_sn", info.first_sn)
        .field_u64("last_sn", info.last_sn)
        .field_u64("time_ms", info.time_ms)
        .field_u64("requests", info.requests as u64)
        .finish()
}

/// How long an idle connection thread waits on a read before checking
/// the stop flag again.
const READ_POLL: Duration = Duration::from_millis(250);
/// Accept-loop poll interval on an idle listener.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Per-connection receive-buffer cap: one max head + one max body.
const MAX_BUFFERED: usize = http::MAX_HEAD_BYTES + http::MAX_BODY_BYTES;

/// The threaded HTTP front end over an [`ApiService`].
pub struct ApiServer {
    address: SocketAddr,
    service: Arc<ApiService>,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl ApiServer {
    /// Binds `127.0.0.1:0` and starts serving `backend` with `config`,
    /// instrumented into `registry`.
    ///
    /// # Errors
    ///
    /// Socket bind/configure failures.
    pub fn start(config: ApiConfig, backend: Backend, registry: Arc<Registry>) -> io::Result<Self> {
        Self::bind("127.0.0.1:0", config, backend, registry)
    }

    /// Like [`ApiServer::start`] with a cluster-shared [`TraceStore`]
    /// behind the trace lifecycle endpoint.
    ///
    /// # Errors
    ///
    /// Socket bind/configure failures.
    pub fn start_with_traces(
        config: ApiConfig,
        backend: Backend,
        registry: Arc<Registry>,
        traces: Option<Arc<TraceStore>>,
    ) -> io::Result<Self> {
        Self::bind_with_traces("127.0.0.1:0", config, backend, registry, traces)
    }

    /// Like [`ApiServer::start`] with an explicit bind address.
    ///
    /// # Errors
    ///
    /// Socket bind/configure failures.
    pub fn bind(
        addr: &str,
        config: ApiConfig,
        backend: Backend,
        registry: Arc<Registry>,
    ) -> io::Result<Self> {
        Self::bind_with_traces(addr, config, backend, registry, None)
    }

    /// The fully general front-end constructor: explicit bind address
    /// plus an optional trace store.
    ///
    /// # Errors
    ///
    /// Socket bind/configure failures.
    pub fn bind_with_traces(
        addr: &str,
        config: ApiConfig,
        backend: Backend,
        registry: Arc<Registry>,
        traces: Option<Arc<TraceStore>>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let address = listener.local_addr()?;
        let service = Arc::new(ApiService::with_traces(config, backend, registry, traces));
        let stop = Arc::new(AtomicBool::new(false));

        let accept_service = service.clone();
        let accept_stop = stop.clone();
        let accept_handle = std::thread::Builder::new()
            .name("zugchain-api-accept".into())
            .spawn(move || {
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            workers.retain(|w| !w.is_finished());
                            let service = accept_service.clone();
                            let stop = accept_stop.clone();
                            let worker = std::thread::Builder::new()
                                .name("zugchain-api-conn".into())
                                .spawn(move || serve_connection(stream, peer, &service, &stop));
                            if let Ok(worker) = worker {
                                workers.push(worker);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => std::thread::sleep(ACCEPT_POLL),
                    }
                }
                for worker in workers {
                    let _ = worker.join();
                }
            })?;

        Ok(ApiServer {
            address,
            service,
            stop,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address.
    pub fn address(&self) -> SocketAddr {
        self.address
    }

    /// The shared serving core (tests and benches drive it directly).
    pub fn service(&self) -> &Arc<ApiService> {
        &self.service
    }

    /// Stops accepting, winds down connection threads, and joins them.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ApiServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(stream: TcpStream, peer: SocketAddr, service: &ApiService, stop: &AtomicBool) {
    let mut stream = stream;
    if stream.set_read_timeout(Some(READ_POLL)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    // Rate-limit identity for unauthenticated servers: the peer IP, not
    // IP:port — one client machine is one bucket across connections.
    let client = peer.ip().to_string();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    while !stop.load(Ordering::Relaxed) {
        // Drain complete pipelined requests already buffered.
        match http::parse_request(&buf) {
            Ok(Parsed::Complete { request, consumed }) => {
                buf.drain(..consumed);
                let keep_alive = request.keep_alive();
                let response = service.respond(&request, &client);
                if stream
                    .write_all(&http::render_response(&response, keep_alive))
                    .is_err()
                    || !keep_alive
                {
                    return;
                }
                continue;
            }
            Ok(Parsed::Partial) => {}
            Err(error) => {
                // Protocol damage: answer once and drop the connection
                // (the byte stream is unrecoverable).
                let response = Response::json(
                    http::error_status(&error),
                    JsonObject::new()
                        .field_str("error", &error.to_string())
                        .finish(),
                );
                let _ = stream.write_all(&http::render_response(&response, false));
                return;
            }
        }
        if buf.len() > MAX_BUFFERED {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return,
        }
    }
}
