//! HTTP query/serving front end for the juridical archive.
//!
//! The paper's data-center side ends at offline `AuditBundle` files;
//! this crate is the read path that makes the archive *usable* at
//! reader scale — investigators, insurers, and regulators querying
//! block history, reconstructing timelines, and downloading
//! court-ready proofs over plain HTTP:
//!
//! | Endpoint | Serves |
//! |---|---|
//! | `GET /healthz` | liveness probe |
//! | `GET /metrics` | Prometheus exposition of the wired registry |
//! | `GET /v1/trains` | fleet inventory: heads, segment/request counts |
//! | `GET /v1/trains/<id>/blocks?from_sn=&limit=` | cursor-paginated block summaries |
//! | `GET /v1/trains/<id>/timeline?from_ms=&to_ms=` | juridical timeline analysis |
//! | `GET /v1/trains/<id>/bundle/<sn>` | `.zab` audit bundle, verifiable offline |
//!
//! Matching the repo's zero-dependency shim discipline, the crate
//! brings its own strict HTTP/1.1 parser ([`http`]) and threaded server
//! ([`ApiServer`]) instead of axum/hyper. Policy lives in front of the
//! archive: bearer-token auth ([`auth`]), per-client token-bucket rate
//! limiting ([`ratelimit`]), and a response cache keyed on immutable
//! archive state ([`cache`]) — sealed segments never change, so cached
//! responses never invalidate. [`ApiService`] is the transport-free
//! core (testable and benchmarkable without sockets); a minimal
//! keep-alive [`HttpClient`] drives load tests and smoke jobs.

#![warn(missing_docs)]

pub mod auth;
pub mod cache;
pub mod client;
pub mod http;
pub mod json;
pub mod ratelimit;
mod server;

pub use client::{ClientResponse, HttpClient};
pub use server::{ApiConfig, ApiServer, ApiService, Backend};
