//! A minimal blocking HTTP/1.1 client for tests, benches, and smoke
//! binaries — keep-alive aware so a load generator can issue thousands
//! of requests over one connection, the way a real reader SDK would.

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header fields, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes (`Content-Length`-delimited).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header named `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive HTTP/1.1 connection to one server.
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connects lazily to `addr` (the socket opens on the first request).
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient {
            addr,
            stream: None,
            buf: Vec::new(),
        }
    }

    fn stream(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
            self.buf.clear();
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Issues `GET <path>` with an optional bearer token and returns the
    /// parsed response. Reconnects transparently if the server closed
    /// the previous keep-alive connection.
    ///
    /// # Errors
    ///
    /// Connection or protocol failures as [`io::Error`].
    pub fn get(&mut self, path: &str, token: Option<&str>) -> io::Result<ClientResponse> {
        match self.request(path, token) {
            Ok(response) => Ok(response),
            Err(_) if self.stream.is_some() => {
                // The server may have closed an idle keep-alive socket
                // between requests; retry once on a fresh connection.
                self.stream = None;
                self.request(path, token)
            }
            Err(e) => Err(e),
        }
    }

    fn request(&mut self, path: &str, token: Option<&str>) -> io::Result<ClientResponse> {
        let mut head = format!("GET {path} HTTP/1.1\r\nhost: zugchain\r\n");
        if let Some(token) = token {
            head.push_str(&format!("authorization: Bearer {token}\r\n"));
        }
        head.push_str("\r\n");
        let stream = self.stream()?;
        stream.write_all(head.as_bytes())?;

        // Read until the response head is complete, then its body.
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            if !read_some(self.stream.as_mut().expect("connected"), &mut self.buf)? {
                self.stream = None;
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before response head",
                ));
            }
        };

        let head_text = String::from_utf8_lossy(&self.buf[..head_end - 4]).into_owned();
        let mut lines = head_text.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line: {status_line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let content_length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "response without Content-Length",
                )
            })?;

        while self.buf.len() < head_end + content_length {
            if !read_some(self.stream.as_mut().expect("connected"), &mut self.buf)? {
                self.stream = None;
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
        }
        let body = self.buf[head_end..head_end + content_length].to_vec();
        self.buf.drain(..head_end + content_length);

        let closing = headers
            .iter()
            .find(|(n, _)| n == "connection")
            .is_some_and(|(_, v)| v.eq_ignore_ascii_case("close"));
        if closing {
            self.stream = None;
            self.buf.clear();
        }
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

fn read_some(stream: &mut TcpStream, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut chunk = [0u8; 16 * 1024];
    let n = stream.read(&mut chunk)?;
    buf.extend_from_slice(&chunk[..n]);
    Ok(n > 0)
}
