//! Per-client token-bucket rate limiting.
//!
//! The on-train node bounds per-origin work with `open_by_origin` slot
//! accounting: a map from origin to open work that drains back to empty
//! so it stays bounded no matter how much traffic flows through. The
//! serving side reuses that idea at reader scale — one bucket per
//! client identity (bearer token, or peer address on an open server),
//! and a pruning pass that drops buckets which have refilled to full,
//! because a full bucket is indistinguishable from no bucket at all.
//!
//! Time is injected (`now_ms`) rather than read from a clock, matching
//! the repo's determinism discipline: unit tests replay exact refill
//! schedules, and the server threads its own monotonic clock through.

use std::collections::HashMap;
use std::sync::Mutex;

/// Buckets at or above this count trigger a prune of full (idle)
/// buckets on the next acquire.
const PRUNE_THRESHOLD: usize = 4096;

#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Remaining capacity in millitokens (1 request = 1000).
    millitokens: u64,
    /// Last refill time.
    last_ms: u64,
}

/// A token-bucket rate limiter keyed by client identity.
#[derive(Debug)]
pub struct RateLimiter {
    /// Sustained allowance in requests per second; 0 disables limiting.
    per_sec: u64,
    /// Instantaneous burst allowance in requests.
    burst: u64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl RateLimiter {
    /// A limiter allowing `per_sec` sustained requests with bursts up
    /// to `burst` (clamped to at least 1 when limiting is on).
    pub fn new(per_sec: u64, burst: u64) -> Self {
        RateLimiter {
            per_sec,
            burst: if per_sec == 0 { 0 } else { burst.max(1) },
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// A limiter that admits everything.
    pub fn unlimited() -> Self {
        RateLimiter::new(0, 0)
    }

    /// Whether limiting is enabled at all.
    pub fn enabled(&self) -> bool {
        self.per_sec > 0
    }

    /// Admits or rejects one request from `client` at time `now_ms`.
    pub fn try_acquire(&self, client: &str, now_ms: u64) -> bool {
        if self.per_sec == 0 {
            return true;
        }
        let cap = self.burst * 1000;
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        if buckets.len() >= PRUNE_THRESHOLD {
            // Slot accounting: a bucket refilled to capacity carries no
            // information — drop it so the map stays bounded by the
            // number of *recently throttled* clients, not all clients.
            let per_sec = self.per_sec;
            buckets.retain(|_, b| {
                let refilled = b
                    .millitokens
                    .saturating_add(now_ms.saturating_sub(b.last_ms).saturating_mul(per_sec));
                refilled < cap
            });
        }
        let bucket = buckets.entry(client.to_string()).or_insert(Bucket {
            millitokens: cap,
            last_ms: now_ms,
        });
        // Refill: per_sec requests/s is exactly per_sec millitokens/ms.
        let elapsed = now_ms.saturating_sub(bucket.last_ms);
        bucket.millitokens = cap.min(
            bucket
                .millitokens
                .saturating_add(elapsed.saturating_mul(self.per_sec)),
        );
        bucket.last_ms = now_ms;
        if bucket.millitokens >= 1000 {
            bucket.millitokens -= 1000;
            true
        } else {
            false
        }
    }

    /// Number of live buckets (test/metrics hook).
    pub fn tracked_clients(&self) -> usize {
        self.buckets.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_sustained_rate() {
        let limiter = RateLimiter::new(10, 5);
        // Burst of 5 admitted instantly, the 6th rejected.
        for _ in 0..5 {
            assert!(limiter.try_acquire("a", 0));
        }
        assert!(!limiter.try_acquire("a", 0));
        // 100ms at 10/s refills exactly one token.
        assert!(limiter.try_acquire("a", 100));
        assert!(!limiter.try_acquire("a", 100));
        // 99ms is one millitoken short.
        assert!(!limiter.try_acquire("a", 199));
        assert!(limiter.try_acquire("a", 200));
    }

    #[test]
    fn clients_are_isolated() {
        let limiter = RateLimiter::new(1, 1);
        assert!(limiter.try_acquire("a", 0));
        assert!(!limiter.try_acquire("a", 0));
        assert!(limiter.try_acquire("b", 0));
    }

    #[test]
    fn unlimited_admits_everything() {
        let limiter = RateLimiter::unlimited();
        for i in 0..10_000 {
            assert!(limiter.try_acquire("a", i % 3));
        }
        assert!(!limiter.enabled());
    }

    #[test]
    fn full_buckets_are_pruned_so_the_map_stays_bounded() {
        let limiter = RateLimiter::new(1000, 1);
        for i in 0..2 * PRUNE_THRESHOLD as u64 {
            // Each client makes one request and then goes idle; by the
            // time the prune threshold trips, earlier buckets have long
            // refilled and must be dropped.
            assert!(limiter.try_acquire(&format!("client-{i}"), i * 10));
        }
        assert!(limiter.tracked_clients() < PRUNE_THRESHOLD + 2);
    }
}
