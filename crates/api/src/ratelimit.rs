//! Per-client token-bucket rate limiting.
//!
//! The on-train node bounds per-origin work with `open_by_origin` slot
//! accounting: a map from origin to open work that drains back to empty
//! so it stays bounded no matter how much traffic flows through. The
//! serving side reuses that idea at reader scale — one bucket per
//! client identity (bearer token, or peer address on an open server),
//! and a pruning pass that drops buckets which have refilled to full,
//! because a full bucket is indistinguishable from no bucket at all.
//!
//! Buckets hold *microtokens* (one request costs one million), so the
//! refill arithmetic is exact both for fast limiters (`per_sec`
//! requests per second) and slow ones ([`RateLimiter::per_period`],
//! e.g. one request per five seconds). A rejected acquire reports how
//! long the client must wait for a full token — the number the HTTP
//! layer's `retry-after` header is computed from.
//!
//! Time is injected (`now_ms`) rather than read from a clock, matching
//! the repo's determinism discipline: unit tests replay exact refill
//! schedules, and the server threads its own monotonic clock through.

use std::collections::HashMap;
use std::sync::Mutex;

/// Buckets at or above this count make the limiter consider a prune of
/// full (idle) buckets on acquire.
const PRUNE_THRESHOLD: usize = 4096;

/// One admitted request costs this many microtokens.
const REQUEST_COST: u64 = 1_000_000;

#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Remaining capacity in microtokens.
    microtokens: u64,
    /// Last refill time.
    last_ms: u64,
}

#[derive(Debug, Default)]
struct Buckets {
    map: HashMap<String, Bucket>,
    /// Earliest time the next prune pass is allowed to run. A pass
    /// records when its closest-to-full survivor finishes refilling; no
    /// earlier pass can remove anything, so none is attempted — a hot
    /// map of active clients pays one scan per refill period, not one
    /// per request.
    next_prune_ms: u64,
    /// Full-map prune scans performed (test/metrics hook).
    prune_scans: u64,
}

/// A token-bucket rate limiter keyed by client identity.
#[derive(Debug)]
pub struct RateLimiter {
    /// Refill rate in microtokens per millisecond; 0 disables limiting.
    micro_per_ms: u64,
    /// Instantaneous burst allowance in requests.
    burst: u64,
    buckets: Mutex<Buckets>,
}

impl RateLimiter {
    /// A limiter allowing `per_sec` sustained requests with bursts up
    /// to `burst` (clamped to at least 1 when limiting is on).
    pub fn new(per_sec: u64, burst: u64) -> Self {
        // per_sec requests/s = per_sec * REQUEST_COST µtokens / 1000 ms.
        Self::with_rate(per_sec.saturating_mul(REQUEST_COST / 1000), burst)
    }

    /// A limiter allowing one sustained request per `period_ms`
    /// milliseconds — rates below one per second, which `new` cannot
    /// express (e.g. `per_period(5_000, 1)` is one request per 5 s).
    pub fn per_period(period_ms: u64, burst: u64) -> Self {
        Self::with_rate((REQUEST_COST / period_ms.max(1)).max(1), burst)
    }

    fn with_rate(micro_per_ms: u64, burst: u64) -> Self {
        RateLimiter {
            micro_per_ms,
            burst: if micro_per_ms == 0 { 0 } else { burst.max(1) },
            buckets: Mutex::new(Buckets::default()),
        }
    }

    /// A limiter that admits everything.
    pub fn unlimited() -> Self {
        RateLimiter::with_rate(0, 0)
    }

    /// Whether limiting is enabled at all.
    pub fn enabled(&self) -> bool {
        self.micro_per_ms > 0
    }

    /// Admits or rejects one request from `client` at time `now_ms`.
    pub fn try_acquire(&self, client: &str, now_ms: u64) -> bool {
        self.acquire(client, now_ms).is_ok()
    }

    /// Admits one request from `client` at time `now_ms`, or rejects it
    /// with the number of milliseconds until the bucket refills to a
    /// full token — the earliest retry that can succeed (absent other
    /// traffic on the same identity).
    pub fn acquire(&self, client: &str, now_ms: u64) -> Result<(), u64> {
        if self.micro_per_ms == 0 {
            return Ok(());
        }
        let cap = self.burst * REQUEST_COST;
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        if buckets.map.len() >= PRUNE_THRESHOLD && now_ms >= buckets.next_prune_ms {
            // Slot accounting: a bucket refilled to capacity carries no
            // information — drop it so the map stays bounded by the
            // number of *recently throttled* clients, not all clients.
            buckets.prune_scans += 1;
            let rate = self.micro_per_ms;
            let mut soonest_full_ms = 0u64;
            buckets.map.retain(|_, b| {
                let refilled = b
                    .microtokens
                    .saturating_add(now_ms.saturating_sub(b.last_ms).saturating_mul(rate));
                if refilled >= cap {
                    return false;
                }
                let to_full = (cap - refilled).div_ceil(rate);
                soonest_full_ms = if soonest_full_ms == 0 {
                    to_full
                } else {
                    soonest_full_ms.min(to_full)
                };
                true
            });
            buckets.next_prune_ms = now_ms.saturating_add(soonest_full_ms);
        }
        let bucket = buckets.map.entry(client.to_string()).or_insert(Bucket {
            microtokens: cap,
            last_ms: now_ms,
        });
        let elapsed = now_ms.saturating_sub(bucket.last_ms);
        bucket.microtokens = cap.min(
            bucket
                .microtokens
                .saturating_add(elapsed.saturating_mul(self.micro_per_ms)),
        );
        bucket.last_ms = now_ms;
        if bucket.microtokens >= REQUEST_COST {
            bucket.microtokens -= REQUEST_COST;
            Ok(())
        } else {
            let deficit = REQUEST_COST - bucket.microtokens;
            Err(deficit.div_ceil(self.micro_per_ms))
        }
    }

    /// Number of live buckets (test/metrics hook).
    pub fn tracked_clients(&self) -> usize {
        self.buckets
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    /// Number of full-map prune scans performed (test/metrics hook).
    pub fn prune_scans(&self) -> u64 {
        self.buckets
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .prune_scans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_sustained_rate() {
        let limiter = RateLimiter::new(10, 5);
        // Burst of 5 admitted instantly, the 6th rejected.
        for _ in 0..5 {
            assert!(limiter.try_acquire("a", 0));
        }
        assert!(!limiter.try_acquire("a", 0));
        // 100ms at 10/s refills exactly one token.
        assert!(limiter.try_acquire("a", 100));
        assert!(!limiter.try_acquire("a", 100));
        // 99ms is one microtoken batch short.
        assert!(!limiter.try_acquire("a", 199));
        assert!(limiter.try_acquire("a", 200));
    }

    #[test]
    fn clients_are_isolated() {
        let limiter = RateLimiter::new(1, 1);
        assert!(limiter.try_acquire("a", 0));
        assert!(!limiter.try_acquire("a", 0));
        assert!(limiter.try_acquire("b", 0));
    }

    #[test]
    fn unlimited_admits_everything() {
        let limiter = RateLimiter::unlimited();
        for i in 0..10_000 {
            assert!(limiter.try_acquire("a", i % 3));
        }
        assert!(!limiter.enabled());
    }

    #[test]
    fn rejection_reports_exact_wait() {
        // 10/s: an empty bucket needs 100ms for one full token.
        let limiter = RateLimiter::new(10, 1);
        assert_eq!(limiter.acquire("a", 0), Ok(()));
        assert_eq!(limiter.acquire("a", 0), Err(100));
        // 40ms in, 60ms still missing.
        assert_eq!(limiter.acquire("a", 40), Err(60));
        assert_eq!(limiter.acquire("a", 100), Ok(()));
    }

    #[test]
    fn slow_limiter_reports_multi_second_waits() {
        // One request per 5 seconds: the wait must say so, not round
        // down to some optimistic constant.
        let limiter = RateLimiter::per_period(5_000, 1);
        assert_eq!(limiter.acquire("a", 0), Ok(()));
        assert_eq!(limiter.acquire("a", 0), Err(5_000));
        assert_eq!(limiter.acquire("a", 4_999), Err(1));
        assert_eq!(limiter.acquire("a", 5_000), Ok(()));
    }

    #[test]
    fn full_buckets_are_pruned_so_the_map_stays_bounded() {
        let limiter = RateLimiter::new(1000, 1);
        for i in 0..2 * PRUNE_THRESHOLD as u64 {
            // Each client makes one request and then goes idle; by the
            // time the prune threshold trips, earlier buckets have long
            // refilled and must be dropped.
            assert!(limiter.try_acquire(&format!("client-{i}"), i * 10));
        }
        assert!(limiter.tracked_clients() < PRUNE_THRESHOLD + 2);
    }

    #[test]
    fn hot_unprunable_map_does_not_scan_per_request() {
        // 10/s, burst 1: a drained bucket takes 100ms to refill, so no
        // prune pass inside that window can remove anything.
        let limiter = RateLimiter::new(10, 1);
        for i in 0..PRUNE_THRESHOLD as u64 + 64 {
            limiter.try_acquire(&format!("client-{i}"), 0);
        }
        // Every bucket is freshly drained: exactly one scan ran (when
        // the threshold tripped) and re-armed itself 100ms out.
        assert_eq!(limiter.prune_scans(), 1);
        // Hammering inside the refill window performs no further scans.
        for i in 0..10_000u64 {
            limiter.try_acquire(&format!("client-{}", i % 64), 50);
        }
        assert_eq!(limiter.prune_scans(), 1);
        // Once the window passes, the next acquire prunes the idle
        // majority in one pass.
        limiter.try_acquire("fresh", 1_000);
        assert_eq!(limiter.prune_scans(), 2);
        assert!(limiter.tracked_clients() < 70);
    }
}
