//! A minimal, strict HTTP/1.1 request parser and response writer.
//!
//! The build environment is offline, so — matching the repo's shim
//! discipline — the serving layer brings its own HTTP implementation
//! instead of axum/hyper. The subset is deliberately small: `GET`-style
//! requests with headers and an optional `Content-Length` body, percent
//! decoding for the request target, and `HTTP/1.1` keep-alive. Anything
//! outside the subset is rejected loudly; nothing is "best effort"
//! repaired, because this parser sits on a public port in front of
//! juridical data.
//!
//! Parsing is incremental and allocation-bounded: [`parse_request`] takes
//! whatever bytes have arrived so far and returns either a complete
//! request (plus how many bytes it consumed, so pipelined bytes survive),
//! [`Parsed::Partial`] when more bytes are needed, or a hard
//! [`ParseError`]. A strict prefix of a valid request is always
//! `Partial`, never an error and never a phantom request — the property
//! suite in `tests/http_props.rs` pins that, in the same style as the
//! wire-codec suites.

use std::fmt;

/// Upper bound on the request head (request line + all headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on the number of header fields.
pub const MAX_HEADERS: usize = 64;
/// Upper bound on a declared `Content-Length` body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a byte stream was rejected as an HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The request line is not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine,
    /// The HTTP version is not 1.0 or 1.1.
    UnsupportedVersion,
    /// A header line is not `name: value` with a token name.
    BadHeader,
    /// More than [`MAX_HEADERS`] header fields.
    TooManyHeaders,
    /// The head exceeds [`MAX_HEAD_BYTES`] without terminating.
    HeadTooLarge,
    /// `Content-Length` is not a plain decimal number (or two
    /// occurrences disagree).
    BadContentLength,
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// `Transfer-Encoding` is present; this server only accepts
    /// `Content-Length`-delimited bodies.
    UnsupportedTransferEncoding,
    /// The target contains an invalid percent escape or a forbidden byte.
    BadPercentEncoding,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadRequestLine => write!(f, "malformed request line"),
            ParseError::UnsupportedVersion => write!(f, "unsupported HTTP version"),
            ParseError::BadHeader => write!(f, "malformed header line"),
            ParseError::TooManyHeaders => write!(f, "too many header fields"),
            ParseError::HeadTooLarge => write!(f, "request head too large"),
            ParseError::BadContentLength => write!(f, "malformed Content-Length"),
            ParseError::BodyTooLarge => write!(f, "declared body too large"),
            ParseError::UnsupportedTransferEncoding => {
                write!(f, "Transfer-Encoding not supported")
            }
            ParseError::BadPercentEncoding => write!(f, "invalid percent encoding in target"),
        }
    }
}

impl std::error::Error for ParseError {}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verbatim (`GET`, `HEAD`, …).
    pub method: String,
    /// Percent-decoded path (`/v1/trains/7/blocks`), always starting
    /// with `/`; the query string is split off into [`Request::query`].
    pub path: String,
    /// Percent-decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Whether the request was HTTP/1.1 (keep-alive by default).
    pub http11: bool,
    /// Header fields in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length`-delimited body (empty when none declared).
    pub body: Vec<u8>,
}

impl Request {
    /// First header named `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter named `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(value) if value.eq_ignore_ascii_case("close") => false,
            Some(value) if value.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Outcome of feeding the accumulated bytes to the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// A full request, and how many buffer bytes it consumed.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer belonging to this request; the caller
        /// drains them and keeps the rest for the next request.
        consumed: usize,
    },
    /// The buffer holds only a prefix; read more bytes and retry.
    Partial,
}

fn is_token_byte(b: u8) -> bool {
    // RFC 7230 token characters.
    matches!(
        b,
        b'!' | b'#'
            | b'$'
            | b'%'
            | b'&'
            | b'\''
            | b'*'
            | b'+'
            | b'-'
            | b'.'
            | b'^'
            | b'_'
            | b'`'
            | b'|'
            | b'~'
    ) || b.is_ascii_alphanumeric()
}

fn hex_value(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-decodes `raw`. `plus_is_space` applies the
/// `application/x-www-form-urlencoded` convention used in query strings.
///
/// # Errors
///
/// [`ParseError::BadPercentEncoding`] on a truncated or non-hex escape,
/// or when the decoded text contains a control byte (juridical query
/// parameters have no business smuggling NUL or CR/LF).
pub fn percent_decode(raw: &[u8], plus_is_space: bool) -> Result<String, ParseError> {
    let mut out = Vec::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        match raw[i] {
            b'%' => {
                let hi = raw.get(i + 1).copied().and_then(hex_value);
                let lo = raw.get(i + 2).copied().and_then(hex_value);
                match (hi, lo) {
                    (Some(hi), Some(lo)) => out.push(hi << 4 | lo),
                    _ => return Err(ParseError::BadPercentEncoding),
                }
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    if out.iter().any(|&b| b < 0x20 || b == 0x7F) {
        return Err(ParseError::BadPercentEncoding);
    }
    String::from_utf8(out).map_err(|_| ParseError::BadPercentEncoding)
}

/// Percent-encodes one path segment or query token: unreserved bytes
/// (`A–Z a–z 0–9 - . _ ~`) pass through, everything else becomes `%XX`.
/// `percent_decode(percent_encode(s)) == s` for any `s` without control
/// bytes — the round-trip the property suite pins.
pub fn percent_encode(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for &b in raw.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char);
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn parse_target(target: &[u8]) -> Result<(String, Vec<(String, String)>), ParseError> {
    if target.first() != Some(&b'/') {
        return Err(ParseError::BadRequestLine);
    }
    let (path_raw, query_raw) = match target.iter().position(|&b| b == b'?') {
        Some(q) => (&target[..q], Some(&target[q + 1..])),
        None => (target, None),
    };
    // '+' is literal in paths, space only in query strings.
    let path = percent_decode(path_raw, false)?;
    let mut query = Vec::new();
    if let Some(query_raw) = query_raw {
        for pair in query_raw.split(|&b| b == b'&').filter(|p| !p.is_empty()) {
            let (key, value) = match pair.iter().position(|&b| b == b'=') {
                Some(eq) => (&pair[..eq], &pair[eq + 1..]),
                None => (pair, &pair[pair.len()..]),
            };
            query.push((percent_decode(key, true)?, percent_decode(value, true)?));
        }
    }
    Ok((path, query))
}

/// Incrementally parses one request from the front of `buf`.
///
/// # Errors
///
/// A [`ParseError`] as soon as the bytes read so far cannot be a prefix
/// of any acceptable request; the connection should answer 400/431/413
/// and close.
pub fn parse_request(buf: &[u8]) -> Result<Parsed, ParseError> {
    // Locate the head terminator within the size limit.
    let head_window = &buf[..buf.len().min(MAX_HEAD_BYTES)];
    let head_end = head_window
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4);
    let Some(head_end) = head_end else {
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(ParseError::HeadTooLarge);
        }
        return Ok(Parsed::Partial);
    };

    let head = &buf[..head_end - 4];
    let mut lines = head.split(|&b| b == b'\n').map(|line| {
        line.strip_suffix(b"\r").unwrap_or(line) // final line has no \r\n
    });

    // Request line: METHOD SP TARGET SP HTTP/1.x, exactly two spaces.
    let request_line = lines.next().ok_or(ParseError::BadRequestLine)?;
    let mut parts = request_line.split(|&b| b == b' ');
    let method = parts.next().ok_or(ParseError::BadRequestLine)?;
    let target = parts.next().ok_or(ParseError::BadRequestLine)?;
    let version = parts.next().ok_or(ParseError::BadRequestLine)?;
    if parts.next().is_some() || method.is_empty() || !method.iter().all(|&b| is_token_byte(b)) {
        return Err(ParseError::BadRequestLine);
    }
    let http11 = match version {
        b"HTTP/1.1" => true,
        b"HTTP/1.0" => false,
        v if v.starts_with(b"HTTP/") => return Err(ParseError::UnsupportedVersion),
        _ => return Err(ParseError::BadRequestLine),
    };
    let (path, query) = parse_target(target)?;

    // Header lines: token ':' OWS value.
    let mut headers = Vec::new();
    let mut content_length: Option<u64> = None;
    for line in lines {
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::TooManyHeaders);
        }
        let colon = line
            .iter()
            .position(|&b| b == b':')
            .ok_or(ParseError::BadHeader)?;
        let (name, rest) = line.split_at(colon);
        if name.is_empty() || !name.iter().all(|&b| is_token_byte(b)) {
            return Err(ParseError::BadHeader);
        }
        let value = &rest[1..];
        let value = std::str::from_utf8(value)
            .map_err(|_| ParseError::BadHeader)?
            .trim_matches([' ', '\t']);
        let name = String::from_utf8(name.to_ascii_lowercase()).expect("token bytes are ASCII");
        match name.as_str() {
            "content-length" => {
                // Strict decimal; a duplicate must agree exactly.
                if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(ParseError::BadContentLength);
                }
                let parsed: u64 = value.parse().map_err(|_| ParseError::BadContentLength)?;
                if content_length.is_some_and(|previous| previous != parsed) {
                    return Err(ParseError::BadContentLength);
                }
                content_length = Some(parsed);
            }
            "transfer-encoding" => return Err(ParseError::UnsupportedTransferEncoding),
            _ => {}
        }
        headers.push((name, value.to_string()));
    }

    let body_len = match content_length {
        None => 0,
        Some(n) if n > MAX_BODY_BYTES as u64 => return Err(ParseError::BodyTooLarge),
        Some(n) => n as usize,
    };
    if buf.len() < head_end + body_len {
        return Ok(Parsed::Partial);
    }

    Ok(Parsed::Complete {
        request: Request {
            method: String::from_utf8(method.to_vec()).expect("token bytes are ASCII"),
            path,
            query,
            http11,
            headers,
            body: buf[head_end..head_end + body_len].to_vec(),
        },
        consumed: head_end + body_len,
    })
}

/// One HTTP response ready to be serialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
    /// Extra headers (`WWW-Authenticate`, `Retry-After`, …).
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// Adds an extra header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }
}

/// The reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes a response head + body. `keep_alive` controls the
/// `Connection` header (the caller closes the socket when false).
pub fn render_response(response: &Response, keep_alive: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + response.body.len());
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            response.status,
            status_text(response.status),
            response.content_type,
            response.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .as_bytes(),
    );
    for (name, value) in &response.extra_headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&response.body);
    out
}

/// The status code a [`ParseError`] maps to on the wire.
pub fn error_status(error: &ParseError) -> u16 {
    match error {
        ParseError::HeadTooLarge | ParseError::TooManyHeaders => 431,
        ParseError::BodyTooLarge => 413,
        ParseError::UnsupportedTransferEncoding => 501,
        _ => 400,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_str(s: &str) -> Result<Parsed, ParseError> {
        parse_request(s.as_bytes())
    }

    #[test]
    fn parses_a_minimal_get() {
        let Parsed::Complete { request, consumed } =
            parse_str("GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").unwrap()
        else {
            panic!("complete request expected");
        };
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/healthz");
        assert!(request.query.is_empty());
        assert!(request.http11);
        assert!(request.keep_alive());
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(consumed, "GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n".len());
    }

    #[test]
    fn decodes_query_parameters() {
        let Parsed::Complete { request, .. } =
            parse_str("GET /v1/trains?from_ms=5&note=a%20b+c HTTP/1.1\r\n\r\n").unwrap()
        else {
            panic!("complete");
        };
        assert_eq!(request.query_param("from_ms"), Some("5"));
        assert_eq!(request.query_param("note"), Some("a b c"));
    }

    #[test]
    fn body_requires_content_length_bytes() {
        let head = "POST /x HTTP/1.1\r\ncontent-length: 4\r\n\r\nab";
        assert_eq!(parse_str(head).unwrap(), Parsed::Partial);
        let full = "POST /x HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd";
        let Parsed::Complete { request, .. } = parse_str(full).unwrap() else {
            panic!("complete");
        };
        assert_eq!(request.body, b"abcd");
    }

    #[test]
    fn rejects_bad_content_length_and_transfer_encoding() {
        assert_eq!(
            parse_str("GET / HTTP/1.1\r\ncontent-length: 12x\r\n\r\n"),
            Err(ParseError::BadContentLength)
        );
        assert_eq!(
            parse_str("GET / HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 5\r\n\r\n"),
            Err(ParseError::BadContentLength)
        );
        assert_eq!(
            parse_str("GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
            Err(ParseError::UnsupportedTransferEncoding)
        );
    }

    #[test]
    fn rejects_oversized_heads() {
        let mut big = b"GET / HTTP/1.1\r\nx: ".to_vec();
        big.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES));
        assert_eq!(parse_request(&big), Err(ParseError::HeadTooLarge));
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close = "GET / HTTP/1.1\r\nconnection: close\r\n\r\n";
        let Parsed::Complete { request, .. } = parse_str(close).unwrap() else {
            panic!("complete");
        };
        assert!(!request.keep_alive());
        let old = "GET / HTTP/1.0\r\n\r\n";
        let Parsed::Complete { request, .. } = parse_str(old).unwrap() else {
            panic!("complete");
        };
        assert!(!request.keep_alive());
    }

    #[test]
    fn render_response_is_parseable_text() {
        let rendered = render_response(&Response::json(200, "{}".to_string()), true);
        let text = String::from_utf8(rendered).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
