//! Bearer-token authentication for the `/v1` query endpoints.
//!
//! The juridical archive is not public by default: investigators,
//! insurers, and regulators each get an opaque bearer token, presented
//! as `Authorization: Bearer <token>`. Tokens double as the rate
//! limiter's client identity, so each credential gets its own bucket
//! regardless of how many machines share it. An empty token set means
//! an open (development / in-cluster) server.
//!
//! Comparison is constant-time-ish by accumulating a difference mask
//! over the full token length — not a hard security boundary on its
//! own (HTTPS termination is out of scope for this crate), but it
//! avoids the obvious early-exit timing oracle.

/// Outcome of checking a request's credentials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthDecision {
    /// No tokens configured — the server is open; callers fall back to
    /// the peer address as the rate-limit identity.
    Open,
    /// A configured token matched; the token is the client identity.
    Allowed(String),
    /// Missing or unknown credentials — answer 401.
    Denied,
}

/// The configured token set.
#[derive(Debug, Clone, Default)]
pub struct Auth {
    tokens: Vec<String>,
}

fn token_matches(a: &str, b: &str) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.bytes()
        .zip(b.bytes())
        .fold(0u8, |acc, (x, y)| acc | (x ^ y))
        == 0
}

impl Auth {
    /// An open server: every request is allowed.
    pub fn open() -> Self {
        Auth { tokens: Vec::new() }
    }

    /// A server requiring one of `tokens` on every `/v1` request.
    pub fn with_tokens(tokens: Vec<String>) -> Self {
        Auth { tokens }
    }

    /// Whether credentials are required at all.
    pub fn required(&self) -> bool {
        !self.tokens.is_empty()
    }

    /// Checks an `Authorization` header value (if any) against the
    /// configured tokens.
    pub fn check(&self, authorization: Option<&str>) -> AuthDecision {
        if self.tokens.is_empty() {
            return AuthDecision::Open;
        }
        let Some(value) = authorization else {
            return AuthDecision::Denied;
        };
        // RFC 6750: the scheme is case-insensitive, the token is not.
        let mut parts = value.splitn(2, ' ');
        let scheme = parts.next().unwrap_or_default();
        let presented = parts.next().unwrap_or_default().trim();
        if !scheme.eq_ignore_ascii_case("bearer") || presented.is_empty() {
            return AuthDecision::Denied;
        }
        if self.tokens.iter().any(|t| token_matches(t, presented)) {
            AuthDecision::Allowed(presented.to_string())
        } else {
            AuthDecision::Denied
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_server_allows_everything() {
        assert_eq!(Auth::open().check(None), AuthDecision::Open);
        assert_eq!(Auth::open().check(Some("nonsense")), AuthDecision::Open);
    }

    #[test]
    fn bearer_scheme_is_case_insensitive_token_is_not() {
        let auth = Auth::with_tokens(vec!["s3cret".into()]);
        assert_eq!(
            auth.check(Some("Bearer s3cret")),
            AuthDecision::Allowed("s3cret".into())
        );
        assert_eq!(
            auth.check(Some("bearer s3cret")),
            AuthDecision::Allowed("s3cret".into())
        );
        assert_eq!(auth.check(Some("Bearer S3CRET")), AuthDecision::Denied);
        assert_eq!(auth.check(Some("Basic s3cret")), AuthDecision::Denied);
        assert_eq!(auth.check(Some("Bearer")), AuthDecision::Denied);
        assert_eq!(auth.check(None), AuthDecision::Denied);
    }

    #[test]
    fn any_configured_token_matches() {
        let auth = Auth::with_tokens(vec!["alpha".into(), "beta".into()]);
        assert_eq!(
            auth.check(Some("Bearer beta")),
            AuthDecision::Allowed("beta".into())
        );
        assert_eq!(auth.check(Some("Bearer gamma")), AuthDecision::Denied);
    }
}
