//! A tiny JSON writer — just enough for the serving layer's responses.
//!
//! The zero-dependency discipline rules out serde; the API's response
//! shapes are flat and known at the call site, so a push-style builder
//! with correct string escaping covers everything without a value tree.

use std::fmt::Write as _;

/// Escapes `raw` as the contents of a JSON string literal (no quotes).
pub fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builder for one JSON object (`{...}`).
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(name));
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn field_u64(mut self, name: &str, value: u64) -> Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a string field (escaped).
    #[must_use]
    pub fn field_str(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Adds a pre-rendered JSON value (object, array, literal) verbatim.
    #[must_use]
    pub fn field_raw(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        self.buf.push_str(value);
        self
    }

    /// Adds `value` as a number, or `null` when absent.
    #[must_use]
    pub fn field_opt_u64(mut self, name: &str, value: Option<u64>) -> Self {
        self.key(name);
        match value {
            Some(value) => {
                let _ = write!(self.buf, "{value}");
            }
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders a JSON array from pre-rendered element texts.
pub fn array(elements: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, element) in elements.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&element);
    }
    buf.push(']');
    buf
}

/// Renders a JSON array of (escaped) strings.
pub fn string_array<S: AsRef<str>>(elements: impl IntoIterator<Item = S>) -> String {
    array(
        elements
            .into_iter()
            .map(|s| format!("\"{}\"", escape(s.as_ref()))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_control_bytes() {
        assert_eq!(escape("a\"b\\c\n\u{1}"), "a\\\"b\\\\c\\n\\u0001");
    }

    #[test]
    fn builds_nested_objects() {
        let inner = JsonObject::new().field_u64("sn", 7).finish();
        let text = JsonObject::new()
            .field_str("train", "ICE-1")
            .field_raw("blocks", &array([inner]))
            .field_opt_u64("next_sn", None)
            .finish();
        assert_eq!(
            text,
            "{\"train\":\"ICE-1\",\"blocks\":[{\"sn\":7}],\"next_sn\":null}"
        );
    }

    #[test]
    fn string_arrays_escape_elements() {
        assert_eq!(string_array(["a", "b\"c"]), "[\"a\",\"b\\\"c\"]");
    }
}
