//! Response cache keyed on immutable archive state.
//!
//! The archive is append-only and its sealed segments never change, so
//! any response computed purely from sealed data is valid *forever* —
//! the cache needs no invalidation protocol, only an eviction policy
//! for memory. The server enforces the "sealed data only" rule at
//! insert time:
//!
//! * a **full** blocks page (`len == limit`) ends strictly before the
//!   open tail, so it is immutable under any future ingest — cacheable
//!   under `(train, from_sn, limit)`; a partial page touches the tail
//!   and is never inserted;
//! * an **audit bundle** is derived from one sealed segment — cacheable
//!   under `(train, sn)` once it exists (missing sns are not cached:
//!   they may appear later);
//! * a **timeline** spans the whole archive, so its key carries the
//!   segment count observed *in the same read-lock snapshot* that
//!   computed the body — a new segment changes the key instead of
//!   invalidating the entry.
//!
//! Eviction is insertion-order FIFO: with no invalidation there is no
//! staleness to chase, only a memory cap, and FIFO keeps the hot sealed
//! prefix resident in the steady state where readers walk history.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// One cached response body.
#[derive(Debug, Clone)]
pub struct CachedResponse {
    /// `Content-Type` the body was rendered with.
    pub content_type: &'static str,
    /// The body bytes, shared across concurrent readers.
    pub body: Arc<Vec<u8>>,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<String, CachedResponse>,
    order: VecDeque<String>,
}

/// A bounded, invalidation-free response cache.
#[derive(Debug)]
pub struct ResponseCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl ResponseCache {
    /// A cache holding up to `capacity` responses (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            capacity,
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// The cached response for `key`, if resident.
    pub fn get(&self, key: &str) -> Option<CachedResponse> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.map.get(key).cloned()
    }

    /// Inserts a response computed from sealed (immutable) data.
    pub fn put(&self, key: &str, content_type: &'static str, body: Arc<Vec<u8>>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.map.contains_key(key) {
            // Sealed data: a concurrent reader computed the same bytes.
            return;
        }
        while inner.map.len() >= self.capacity {
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            inner.map.remove(&oldest);
        }
        inner
            .map
            .insert(key.to_string(), CachedResponse { content_type, body });
        inner.order.push_back(key.to_string());
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Arc<Vec<u8>> {
        Arc::new(text.as_bytes().to_vec())
    }

    #[test]
    fn round_trips_and_reports_len() {
        let cache = ResponseCache::new(4);
        assert!(cache.get("a").is_none());
        cache.put("a", "application/json", body("x"));
        let hit = cache.get("a").expect("resident");
        assert_eq!(&*hit.body, b"x");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let cache = ResponseCache::new(2);
        cache.put("a", "t", body("1"));
        cache.put("b", "t", body("2"));
        cache.put("c", "t", body("3"));
        assert!(cache.get("a").is_none());
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResponseCache::new(0);
        cache.put("a", "t", body("1"));
        assert!(cache.get("a").is_none());
        assert!(cache.is_empty());
    }
}
