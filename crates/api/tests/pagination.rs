//! Pagination invariants for the serving layer: a cursor walk over a
//! multi-segment archive must return every block exactly once, in
//! order — including while a writer keeps ingesting new certified
//! segments under the reader's feet. The cursor (`next_sn` = head
//! block's `last_sn + 1`) survives concurrent appends because blocks
//! carry contiguous ascending request ranges: a page boundary is a
//! request number, not a byte offset, so nothing the writer appends can
//! shift blocks the reader has already walked past.

mod common;

use std::sync::Arc;

use zugchain_api::{ApiConfig, ApiServer, Backend, HttpClient};
use zugchain_archive::{Archive, QueryEngine};
use zugchain_wire::TrainId;

use common::{extend_chain, keys, QUORUM};

const TRAIN: TrainId = TrainId(7);

/// Walks `engine` from sn 1 with the given page `limit`, collecting the
/// `(first_sn, last_sn)` of every returned block, until a page comes
/// back empty. Asserts in-order/exactly-once as it goes.
fn cursor_walk(engine: &QueryEngine, limit: usize) -> Vec<(u64, u64)> {
    let mut covered: Vec<(u64, u64)> = Vec::new();
    let mut from_sn = 1u64;
    loop {
        let page = engine.page_by_sn(from_sn, limit);
        assert!(page.len() <= limit, "page exceeded its limit");
        let Some(last) = page.last() else {
            return covered;
        };
        for info in &page {
            let expected = covered.last().map_or(1, |(_, last_sn)| last_sn + 1);
            assert_eq!(
                info.first_sn,
                expected,
                "walk skipped or repeated requests: block at height {} starts at sn {} \
                 but the previous block ended at sn {}",
                info.height,
                info.first_sn,
                expected - 1,
            );
            assert!(info.last_sn >= info.first_sn, "empty block range");
            covered.push((info.first_sn, info.last_sn));
        }
        from_sn = last.last_sn + 1;
    }
}

#[test]
fn cursor_walk_covers_a_static_archive_exactly_once() {
    let (pairs, keystore) = keys();
    let mut archive = Archive::in_memory_for_train(TRAIN, keystore, QUORUM);
    let (segments, head) =
        extend_chain(TRAIN, &pairs, &zugchain_blockchain::Block::genesis(), 5, 4);
    for segment in &segments {
        archive.ingest(segment).unwrap();
    }
    let total_blocks = 5 * 4;
    let engine = QueryEngine::new(archive);

    // Walk at several page sizes, including ones that straddle segment
    // boundaries and one larger than the whole archive.
    for limit in [1, 2, 3, 7, 64] {
        let covered = cursor_walk(&engine, limit);
        assert_eq!(covered.len(), total_blocks, "limit {limit} lost blocks");
        assert_eq!(
            covered.last().unwrap().1,
            head.header.last_sn,
            "limit {limit} did not reach the head",
        );
    }
}

#[test]
fn cursor_walk_is_exact_under_concurrent_ingest() {
    let (pairs, keystore) = keys();
    let mut archive = Archive::in_memory_for_train(TRAIN, keystore, QUORUM);

    // Seed the archive, then hand the rest of the chain to a writer
    // thread that ingests while readers walk.
    let genesis = zugchain_blockchain::Block::genesis();
    let (seed, seed_head) = extend_chain(TRAIN, &pairs, &genesis, 3, 3);
    for segment in &seed {
        archive.ingest(segment).unwrap();
    }
    let (rest, final_head) = extend_chain(TRAIN, &pairs, &seed_head, 40, 2);
    let engine = QueryEngine::new(archive);

    let writer = {
        let engine = engine.clone();
        std::thread::spawn(move || {
            for segment in &rest {
                engine.ingest(segment).unwrap();
                std::thread::yield_now();
            }
        })
    };

    // Readers walk with small pages while the writer appends. Everything
    // present when a walk *starts* must come back in order with no gaps;
    // later appends may or may not ride along at the tail.
    let mut walks = 0;
    loop {
        let start_sn = engine
            .with_archive(|a| a.blocks().last().map(|b| b.header.last_sn))
            .expect("seeded archive has blocks");
        let covered = cursor_walk(&engine, 3);
        walks += 1;
        let reached = covered.last().expect("walk returned blocks").1;
        assert!(
            reached >= start_sn,
            "walk reached sn {reached} but sn {start_sn} existed when it started",
        );
        if writer.is_finished() {
            break;
        }
    }
    writer.join().unwrap();

    // One final walk sees the complete chain, exactly once, in order.
    let covered = cursor_walk(&engine, 3);
    assert_eq!(covered.len(), 3 * 3 + 40 * 2);
    assert_eq!(covered.first().unwrap().0, 1);
    assert_eq!(covered.last().unwrap().1, final_head.header.last_sn);
    assert!(walks >= 1);
}

/// Extracts the u64 after `"<field>":` in a JSON body (the serving
/// layer's encoder emits no whitespace). Returns `None` for `null`.
fn json_u64(body: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = body.find(&needle)? + needle.len();
    let rest = &body[at..];
    if rest.starts_with("null") {
        return None;
    }
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[test]
fn http_cursor_walk_matches_the_engine() {
    let (pairs, keystore) = keys();
    let mut archive = Archive::in_memory_for_train(TRAIN, keystore, QUORUM);
    let (segments, head) =
        extend_chain(TRAIN, &pairs, &zugchain_blockchain::Block::genesis(), 4, 3);
    for segment in &segments {
        archive.ingest(segment).unwrap();
    }
    let engine = QueryEngine::new(archive);
    let registry = Arc::new(zugchain_telemetry::Registry::new());
    let mut server =
        ApiServer::start(ApiConfig::open(), Backend::Single(engine), registry).unwrap();
    let mut client = HttpClient::new(server.address());

    // Walk over real HTTP with limit 5 (straddles the 3-block segments).
    // The walk terminates on the *absence of a cursor*: a page ending at
    // the archived head advertises no next_sn, so a well-behaved client
    // never issues a guaranteed-empty fetch.
    let mut from_sn = 1u64;
    let mut covered: Vec<(u64, u64)> = Vec::new();
    loop {
        let response = client
            .get(
                &format!("/v1/trains/7/blocks?from_sn={from_sn}&limit=5"),
                None,
            )
            .unwrap();
        assert_eq!(response.status, 200);
        let body = response.text();
        let count = json_u64(&body, "count").unwrap();
        assert!(count > 0, "the walk never fetches an empty page");
        // Each block object carries first_sn/last_sn; scan them in order.
        let mut rest = body.as_str();
        for _ in 0..count {
            let at = rest.find("\"first_sn\":").expect("block has first_sn");
            rest = &rest[at..];
            let first_sn = json_u64(rest, "first_sn").unwrap();
            let last_sn = json_u64(rest, "last_sn").unwrap();
            let expected = covered.last().map_or(1, |(_, last)| last + 1);
            assert_eq!(first_sn, expected, "HTTP walk skipped or repeated requests");
            covered.push((first_sn, last_sn));
            rest = &rest[1..];
        }
        match json_u64(&body, "next_sn") {
            Some(next) => from_sn = next,
            None => break,
        }
    }

    assert_eq!(covered.len(), 4 * 3);
    assert_eq!(covered.last().unwrap().1, head.header.last_sn);
    server.stop();
}

/// The `limit` and tail edge cases must agree between `Archive::
/// page_by_sn` and `/v1/trains/<id>/blocks`: a zero limit never yields
/// an unbounded page, an over-max limit is clamped on both sides, a
/// cursor past the head is an empty page (not an error), and a full
/// page ending exactly at the head advertises no phantom next cursor.
#[test]
fn limit_and_tail_edge_cases_agree_between_engine_and_http() {
    let (pairs, keystore) = keys();
    let mut archive = Archive::in_memory_for_train(TRAIN, keystore, QUORUM);
    let (segments, head) =
        extend_chain(TRAIN, &pairs, &zugchain_blockchain::Block::genesis(), 4, 3);
    for segment in &segments {
        archive.ingest(segment).unwrap();
    }
    let total_blocks = 4 * 3;
    let head_sn = head.header.last_sn;
    let engine = QueryEngine::new(archive);
    let registry = Arc::new(zugchain_telemetry::Registry::new());
    let mut server =
        ApiServer::start(ApiConfig::open(), Backend::Single(engine.clone()), registry).unwrap();
    let mut client = HttpClient::new(server.address());
    let get = |client: &mut HttpClient, query: &str| {
        client
            .get(&format!("/v1/trains/7/blocks{query}"), None)
            .unwrap()
    };

    // limit=0: the engine returns an empty page (never unbounded); the
    // HTTP layer rejects it outright.
    assert!(engine.page_by_sn(1, 0).is_empty());
    assert_eq!(get(&mut client, "?limit=0").status, 400);

    // Over-max limits are clamped on both sides, never passed through.
    assert_eq!(engine.page_by_sn(1, usize::MAX).len(), total_blocks);
    let response = get(&mut client, "?from_sn=1&limit=18446744073709551615");
    assert_eq!(response.status, 200);
    let body = response.text();
    assert_eq!(
        json_u64(&body, "limit"),
        Some(ApiConfig::open().max_page_limit as u64),
        "the HTTP layer reports the clamped limit it applied"
    );
    assert_eq!(json_u64(&body, "count"), Some(total_blocks as u64));
    assert_eq!(json_u64(&body, "next_sn"), None, "page reaches the head");

    // A cursor past the head is an empty page with no next cursor.
    assert!(engine.page_by_sn(head_sn + 1, 5).is_empty());
    let body = get(&mut client, &format!("?from_sn={}&limit=5", head_sn + 1)).text();
    assert_eq!(json_u64(&body, "count"), Some(0));
    assert_eq!(json_u64(&body, "next_sn"), None, "no phantom cursor at EOF");

    // A *full* page ending exactly at the head: no phantom cursor (the
    // historical bug advertised `last_sn + 1` here, pointing past the
    // end); a full page strictly inside the range keeps its cursor.
    let body = get(&mut client, &format!("?from_sn=1&limit={total_blocks}")).text();
    assert_eq!(json_u64(&body, "count"), Some(total_blocks as u64));
    assert_eq!(json_u64(&body, "next_sn"), None, "full page at the head");
    let body = get(&mut client, "?from_sn=1&limit=6").text();
    assert_eq!(json_u64(&body, "count"), Some(6));
    let next = json_u64(&body, "next_sn").expect("interior full page keeps its cursor");
    assert!(next <= head_sn, "cursor stays inside the archived range");
    server.stop();
}

#[test]
fn page_by_sn_starts_at_the_covering_block() {
    // A from_sn inside a block's range must return that block first —
    // the cursor `last_sn + 1` always lands exactly on the next block's
    // first_sn, but a client resuming from an arbitrary request number
    // must not lose the block covering it.
    let (pairs, keystore) = keys();
    let mut archive = Archive::in_memory_for_train(TRAIN, keystore, QUORUM);
    let (segments, _) = extend_chain(TRAIN, &pairs, &zugchain_blockchain::Block::genesis(), 3, 3);
    for segment in &segments {
        archive.ingest(segment).unwrap();
    }
    let engine = QueryEngine::new(archive);

    // Blocks hold 2 requests: block k covers sns 2k-1..=2k.
    for sn in 1..=18u64 {
        let page = engine.page_by_sn(sn, 1);
        assert_eq!(page.len(), 1, "sn {sn} found no covering block");
        let info = &page[0];
        assert!(
            info.first_sn <= sn && sn <= info.last_sn,
            "sn {sn} resolved to block {}..={}",
            info.first_sn,
            info.last_sn,
        );
    }
    // Past the head: empty page, not an error.
    assert!(engine.page_by_sn(19, 1).is_empty());
}
