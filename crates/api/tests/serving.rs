//! End-to-end serving tests over real sockets: bearer-token policy,
//! per-client rate limiting, segment-keyed cache economics (visible
//! through the hit/miss counters), and the load-bearing juridical
//! property — an audit bundle fetched over HTTP verifies *offline* with
//! nothing but the replica public keys, exactly as if it had been read
//! from the archive directory.

mod common;

use std::sync::Arc;

use zugchain_api::http::Request;
use zugchain_api::{ApiConfig, ApiServer, Backend, HttpClient};
use zugchain_archive::{Archive, AuditBundle, QueryEngine};
use zugchain_telemetry::Registry;
use zugchain_wire::TrainId;

use common::{certified_chain_for_train, keys, QUORUM};

const TRAIN: TrainId = TrainId(7);
const TOKEN: &str = "reader-secret";

/// A served archive: 4 segments × 3 blocks × 2 requests for train 7.
fn served(config: ApiConfig) -> (ApiServer, Arc<Registry>, zugchain_crypto::Keystore) {
    let (pairs, keystore) = keys();
    let mut archive = Archive::in_memory_for_train(TRAIN, keystore.clone(), QUORUM);
    for segment in &certified_chain_for_train(TRAIN, &pairs, 4, 3) {
        archive.ingest(segment).unwrap();
    }
    let registry = Arc::new(Registry::new());
    let server = ApiServer::start(
        config,
        Backend::Single(QueryEngine::new(archive)),
        Arc::clone(&registry),
    )
    .unwrap();
    (server, registry, keystore)
}

fn counter(registry: &Registry, name: &str) -> u64 {
    registry.counter_value(name, &[]).unwrap_or(0)
}

#[test]
fn bearer_token_gates_the_data_plane_only() {
    let config = ApiConfig {
        tokens: vec![TOKEN.to_string()],
        ..ApiConfig::open()
    };
    let (mut server, registry, _) = served(config);
    let mut client = HttpClient::new(server.address());

    // Data-plane endpoints demand the token.
    let denied = client.get("/v1/trains", None).unwrap();
    assert_eq!(denied.status, 401);
    assert_eq!(denied.header("www-authenticate"), Some("Bearer"));
    let wrong = client.get("/v1/trains", Some("not-the-token")).unwrap();
    assert_eq!(wrong.status, 401);
    let allowed = client.get("/v1/trains", Some(TOKEN)).unwrap();
    assert_eq!(allowed.status, 200);
    assert!(allowed.text().contains("\"count\":1"));

    // Liveness and exposition stay open: probes and scrapers carry no
    // bearer tokens.
    assert_eq!(client.get("/healthz", None).unwrap().status, 200);
    assert_eq!(client.get("/metrics", None).unwrap().status, 200);

    assert_eq!(
        counter(&registry, "zugchain_api_auth_failures_total"),
        2,
        "both rejected requests must be counted",
    );
    server.stop();
}

#[test]
fn rate_limiter_answers_429_with_retry_after() {
    let config = ApiConfig {
        rate_per_sec: 5,
        rate_burst: 5,
        ..ApiConfig::open()
    };
    let (mut server, registry, _) = served(config);
    let mut client = HttpClient::new(server.address());

    let mut limited = 0;
    for _ in 0..30 {
        let response = client.get("/v1/trains", None).unwrap();
        match response.status {
            200 => {}
            429 => {
                assert_eq!(response.header("retry-after"), Some("1"));
                limited += 1;
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert!(
        limited > 0,
        "30 rapid requests at 5/s never hit the limiter"
    );
    assert_eq!(
        counter(&registry, "zugchain_api_rate_limited_total"),
        limited,
    );
    // /healthz is never rate limited — the probe must not kill the pod
    // because auditors are busy.
    assert_eq!(client.get("/healthz", None).unwrap().status, 200);
    server.stop();
}

/// Regression: `retry-after` used to be hardcoded to 1 second. A
/// low-rate limiter (one request per five seconds) must tell the
/// client the real wait, or every honest client retries four seconds
/// too early and burns its budget on guaranteed 429s.
#[test]
fn slow_rate_limiter_reports_honest_retry_after() {
    let config = ApiConfig {
        rate_period_ms: 5_000,
        rate_burst: 1,
        ..ApiConfig::open()
    };
    let (mut server, _, _) = served(config);
    let mut client = HttpClient::new(server.address());
    assert_eq!(client.get("/v1/trains", None).unwrap().status, 200);
    let limited = client.get("/v1/trains", None).unwrap();
    assert_eq!(limited.status, 429);
    assert_eq!(
        limited.header("retry-after"),
        Some("5"),
        "the header reflects the bucket's actual refill time"
    );
    server.stop();
}

#[test]
fn full_pages_are_cached_and_partial_pages_bypass() {
    let (mut server, registry, _) = served(ApiConfig::open());
    let mut client = HttpClient::new(server.address());

    // A full page (limit 2 < 12 blocks): first read misses, repeat hits,
    // and the bytes are identical.
    let cold = client.get("/v1/trains/7/blocks?limit=2", None).unwrap();
    assert_eq!(cold.status, 200);
    let misses = counter(&registry, "zugchain_api_cache_misses_total");
    let warm = client.get("/v1/trains/7/blocks?limit=2", None).unwrap();
    assert_eq!(warm.body, cold.body);
    assert_eq!(counter(&registry, "zugchain_api_cache_hits_total"), 1);
    assert_eq!(
        counter(&registry, "zugchain_api_cache_misses_total"),
        misses,
        "the warm read must not miss",
    );

    // A partial page (limit 100 > 12 blocks) touches the open tail, so
    // it is never inserted: repeating it never produces a hit.
    let hits = counter(&registry, "zugchain_api_cache_hits_total");
    for _ in 0..2 {
        let partial = client.get("/v1/trains/7/blocks?limit=100", None).unwrap();
        assert_eq!(partial.status, 200);
        assert!(partial.text().contains("\"count\":12"));
    }
    assert_eq!(
        counter(&registry, "zugchain_api_cache_hits_total"),
        hits,
        "a tail-touching page must bypass the cache",
    );
    server.stop();
}

#[test]
fn timeline_serves_and_caches() {
    let (mut server, registry, _) = served(ApiConfig::open());
    let mut client = HttpClient::new(server.address());

    let cold = client.get("/v1/trains/7/timeline?from_ms=0", None).unwrap();
    assert_eq!(cold.status, 200);
    let body = cold.text();
    assert!(body.contains("\"train\":7"), "body: {body}");
    assert!(
        body.contains("\"events\":24"),
        "4*3 blocks * 2 requests: {body}"
    );
    assert!(body.contains("\"max_speed_ckmh\":"), "body: {body}");

    let warm = client.get("/v1/trains/7/timeline?from_ms=0", None).unwrap();
    assert_eq!(warm.body, cold.body);
    assert!(counter(&registry, "zugchain_api_cache_hits_total") >= 1);
    server.stop();
}

#[test]
fn bundle_fetched_over_http_verifies_offline() {
    let (mut server, _, keystore) = served(ApiConfig::open());
    let mut client = HttpClient::new(server.address());

    // sn 11 lives in the 6th block (2 requests per block).
    let response = client.get("/v1/trains/7/bundle/11", None).unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("content-type"),
        Some("application/octet-stream")
    );
    server.stop();

    // The server is gone; the fetched bytes plus the public keys alone
    // must reconstruct and verify the exhibit.
    let bundle = AuditBundle::from_zab_bytes(&response.body).unwrap();
    let block = bundle.verify(&keystore, QUORUM).unwrap();
    assert!(block.header.first_sn <= 11 && 11 <= block.header.last_sn);

    // A flipped byte must not verify: the transport cannot silently
    // corrupt an exhibit.
    let mut torn = response.body.clone();
    let last = torn.len() - 1;
    torn[last] ^= 1;
    assert!(
        AuditBundle::from_zab_bytes(&torn).is_err(),
        "a corrupted download must fail to even decode",
    );
}

#[test]
fn unknown_trains_and_bad_parameters_are_client_errors() {
    let (mut server, _, _) = served(ApiConfig::open());
    let mut client = HttpClient::new(server.address());

    assert_eq!(
        client.get("/v1/trains/99/blocks", None).unwrap().status,
        404
    );
    assert_eq!(
        client.get("/v1/trains/7/bundle/999", None).unwrap().status,
        404
    );
    assert_eq!(client.get("/nope", None).unwrap().status, 404);
    assert_eq!(
        client
            .get("/v1/trains/7/blocks?limit=0", None)
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client
            .get("/v1/trains/7/blocks?from_sn=x", None)
            .unwrap()
            .status,
        400
    );
    server.stop();
}

#[test]
fn non_get_methods_are_rejected_at_the_service() {
    let (mut server, _, _) = served(ApiConfig::open());
    let request = Request {
        method: "DELETE".to_string(),
        path: "/v1/trains".to_string(),
        query: Vec::new(),
        http11: true,
        headers: Vec::new(),
        body: Vec::new(),
    };
    let response = server.service().respond(&request, "test-client");
    assert_eq!(response.status, 405);
    server.stop();
}
