//! Shared fixture for the serving-layer tests: genuinely-signed
//! certified segments, so every byte the API serves went through the
//! same verification path as real export traffic. Mirrors the archive
//! crate's test fixture (test support cannot be shared across crates).

use zugchain_blockchain::{Block, BlockBuilder, LoggedRequest};
use zugchain_crypto::{KeyPair, Keystore};
use zugchain_export::CertifiedSegment;
use zugchain_mvb::PortAddress;
use zugchain_pbft::{Checkpoint, CheckpointProof, Message, NodeId};
use zugchain_signals::{Request, SignalValue, TrainEvent};
use zugchain_wire::TrainId;

/// 4 replicas, f = 1 → quorum 3.
pub const QUORUM: usize = 3;

pub fn keys() -> (Vec<KeyPair>, Keystore) {
    Keystore::generate(4, 0xA91_F00D)
}

/// A stable-checkpoint certificate all `pairs` sign.
pub fn certify(pairs: &[KeyPair], sn: u64, head: &Block) -> CheckpointProof {
    let checkpoint = Checkpoint {
        sn,
        state_digest: head.hash(),
    };
    let message = zugchain_wire::to_bytes(&Message::Checkpoint(checkpoint));
    let signatures = pairs
        .iter()
        .enumerate()
        .map(|(id, pair)| (NodeId(id as u64), pair.sign(&message)))
        .collect();
    CheckpointProof {
        checkpoint,
        signatures,
    }
}

/// Canonical payload bytes for one decoded signal event.
pub fn signal_payload(cycle: u64, time_ms: u64, value: SignalValue) -> Vec<u8> {
    zugchain_wire::to_bytes(&Request {
        cycle,
        time_ms,
        events: vec![TrainEvent {
            name: "v_actual".to_string(),
            port: PortAddress(0x42),
            cycle,
            time_ms,
            value,
        }],
    })
}

/// Builds `n_segments` contiguous certified segments of
/// `blocks_per_segment` blocks each (2 requests per block), chained off
/// `base` (pass [`Block::genesis`] for a fresh chain), continuing the
/// request numbering from the base head's `last_sn`. Returning the new
/// head lets a test keep extending the same chain incrementally — the
/// concurrent-ingest suites lean on that.
pub fn extend_chain(
    train: TrainId,
    pairs: &[KeyPair],
    base: &Block,
    n_segments: usize,
    blocks_per_segment: usize,
) -> (Vec<CertifiedSegment>, Block) {
    let mut builder = BlockBuilder::resume(2, base.height(), base.hash());
    let mut sn = base.header.last_sn;
    let mut base = base.clone();
    let mut segments = Vec::new();
    for _ in 0..n_segments {
        let mut blocks = Vec::new();
        while blocks.len() < blocks_per_segment {
            sn += 1;
            let time_ms = sn * 100;
            let payload = signal_payload(sn, time_ms, SignalValue::U16(sn as u16));
            if let Some(block) = builder.push(
                LoggedRequest {
                    sn,
                    origin: sn % 4,
                    payload,
                },
                time_ms,
            ) {
                blocks.push(block);
            }
        }
        let head = blocks.last().expect("nonempty").clone();
        segments.push(CertifiedSegment {
            train,
            base_height: base.height(),
            base_hash: base.hash(),
            blocks,
            proof: certify(pairs, sn, &head),
        });
        base = head;
    }
    (segments, base)
}

/// As [`extend_chain`] from genesis, discarding the head.
#[allow(dead_code)] // not every test binary extends the chain afterwards
pub fn certified_chain_for_train(
    train: TrainId,
    pairs: &[KeyPair],
    n_segments: usize,
    blocks_per_segment: usize,
) -> Vec<CertifiedSegment> {
    extend_chain(
        train,
        pairs,
        &Block::genesis(),
        n_segments,
        blocks_per_segment,
    )
    .0
}
