//! Property tests for the serving layer's HTTP parser, in the same
//! style as the archive's wire-codec suites: anything the encoder can
//! produce must round-trip exactly, every strict prefix of a valid
//! request must parse as [`Parsed::Partial`] (never an error, never a
//! phantom request), and the documented rejection classes — oversized
//! heads, header floods, malformed `Content-Length` — must reject for
//! *every* instance, not just the hand-picked unit-test ones.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use zugchain_api::http::{
    parse_request, percent_decode, percent_encode, ParseError, Parsed, MAX_HEADERS, MAX_HEAD_BYTES,
};

/// Arbitrary text with control characters stripped — the decoded form
/// the parser promises to round-trip (it rejects control bytes on
/// principle, so they cannot appear on either side of the trip).
fn no_control() -> impl Strategy<Value = String> {
    any::<String>().prop_map(|s| s.chars().filter(|c| !c.is_control()).collect())
}

/// A nonempty RFC 7230 token usable as a header name; alphanumeric
/// only, so it can never collide with `content-length` or
/// `transfer-encoding`.
fn header_name() -> impl Strategy<Value = String> {
    (any::<String>(), any::<u64>()).prop_map(|(s, salt)| {
        let name: String = s.chars().filter(char::is_ascii_alphanumeric).collect();
        if name.is_empty() {
            format!("h{}", salt % 100)
        } else {
            name
        }
    })
}

/// Printable-ASCII header values (no CR/LF, no control bytes).
fn printable_ascii() -> impl Strategy<Value = String> {
    any::<String>().prop_map(|s| s.chars().filter(|c| (' '..='~').contains(c)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `percent_decode(percent_encode(s)) == s` for any control-free
    /// text, in both path mode and query mode (`+` is only special in
    /// the latter, and `percent_encode` never emits a bare `+`).
    #[test]
    fn percent_coding_round_trips(text in no_control()) {
        let encoded = percent_encode(&text);
        prop_assert_eq!(percent_decode(encoded.as_bytes(), false).unwrap(), text.clone());
        prop_assert_eq!(percent_decode(encoded.as_bytes(), true).unwrap(), text);
    }

    /// A request line built from arbitrary (control-free) path segments
    /// and query pairs survives encode → parse exactly: same segments,
    /// same pairs, same order.
    #[test]
    fn request_target_round_trips(
        segments in vec(no_control(), 1..4),
        query in vec((no_control(), no_control()), 1..4),
    ) {
        let mut target = String::new();
        let mut expected_path = String::new();
        for segment in &segments {
            target.push('/');
            target.push_str(&percent_encode(segment));
            expected_path.push('/');
            expected_path.push_str(segment);
        }
        target.push('?');
        let encoded: Vec<String> = query
            .iter()
            .map(|(k, v)| format!("{}={}", percent_encode(k), percent_encode(v)))
            .collect();
        target.push_str(&encoded.join("&"));
        let raw = format!("GET {target} HTTP/1.1\r\nhost: prop\r\n\r\n");

        let Parsed::Complete { request, consumed } = parse_request(raw.as_bytes()).unwrap() else {
            return Err(TestCaseError::fail("complete request expected"));
        };
        prop_assert_eq!(consumed, raw.len());
        prop_assert_eq!(request.path, expected_path);
        prop_assert_eq!(request.query, query);
    }

    /// Header fields round-trip with names lowercased and optional
    /// whitespace trimmed — and nothing else changed.
    #[test]
    fn headers_round_trip(
        headers in vec((header_name(), printable_ascii()), 1..8),
    ) {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for (name, value) in &headers {
            raw.push_str(&format!("{name}: {value}\r\n"));
        }
        raw.push_str("\r\n");

        let Parsed::Complete { request, .. } = parse_request(raw.as_bytes()).unwrap() else {
            return Err(TestCaseError::fail("complete request expected"));
        };
        let expected: Vec<(String, String)> = headers
            .iter()
            .map(|(n, v)| (n.to_ascii_lowercase(), v.trim_matches([' ', '\t']).to_string()))
            .collect();
        prop_assert_eq!(request.headers, expected);
    }

    /// Every strict prefix of a valid request-with-body is `Partial` —
    /// never an error, never a phantom complete request — and the full
    /// buffer consumes exactly its own length, so pipelined successors
    /// are untouched.
    #[test]
    fn strict_prefixes_are_partial(
        segment in any::<u64>(),
        body in vec(any::<u8>(), 1..48),
    ) {
        let mut raw = format!(
            "POST /p{segment} HTTP/1.1\r\nhost: prop\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(&body);

        for cut in 0..raw.len() {
            prop_assert_eq!(
                parse_request(&raw[..cut]),
                Ok(Parsed::Partial),
                "prefix of length {} of a {}-byte request was not Partial",
                cut,
                raw.len(),
            );
        }
        let Parsed::Complete { request, consumed } = parse_request(&raw).unwrap() else {
            return Err(TestCaseError::fail("complete request expected"));
        };
        prop_assert_eq!(consumed, raw.len());
        prop_assert_eq!(request.body, body);
    }

    /// A head that reaches [`MAX_HEAD_BYTES`] without terminating is
    /// rejected as `HeadTooLarge` no matter how far past the limit the
    /// buffer runs.
    #[test]
    fn oversized_heads_are_rejected(extra in 0usize..256) {
        let mut raw = b"GET / HTTP/1.1\r\nx: ".to_vec();
        raw.resize(MAX_HEAD_BYTES + extra, b'a');
        prop_assert_eq!(parse_request(&raw), Err(ParseError::HeadTooLarge));
    }

    /// More than [`MAX_HEADERS`] fields is rejected as `TooManyHeaders`
    /// even when every individual field is well formed.
    #[test]
    fn header_floods_are_rejected(extra in 1usize..8) {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS + extra {
            raw.push_str(&format!("h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        prop_assert_eq!(
            parse_request(raw.as_bytes()),
            Err(ParseError::TooManyHeaders)
        );
    }

    /// Any `Content-Length` value that is not a plain decimal number is
    /// rejected as `BadContentLength` — no leniency for signs, spaces
    /// inside, hex, or trailing junk.
    #[test]
    fn malformed_content_length_is_rejected(value in printable_ascii()) {
        let trimmed = value.trim_matches([' ', '\t']);
        prop_assume!(trimmed.is_empty() || !trimmed.bytes().all(|b| b.is_ascii_digit()));

        let raw = format!("GET / HTTP/1.1\r\ncontent-length: {value}\r\n\r\n");
        prop_assert_eq!(
            parse_request(raw.as_bytes()),
            Err(ParseError::BadContentLength)
        );
    }

    /// Two `Content-Length` fields that disagree are rejected — the
    /// classic request-smuggling vector.
    #[test]
    fn disagreeing_content_lengths_are_rejected(a in 0u64..1000, b in 0u64..1000) {
        prop_assume!(a != b);
        let raw = format!(
            "GET / HTTP/1.1\r\ncontent-length: {a}\r\ncontent-length: {b}\r\n\r\n"
        );
        prop_assert_eq!(
            parse_request(raw.as_bytes()),
            Err(ParseError::BadContentLength)
        );
    }

    /// The parser never panics on arbitrary bytes; it always returns
    /// Partial, Complete, or a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 1..512)) {
        let _ = parse_request(&bytes);
    }
}
