//! Standalone offline audit-bundle verifier.
//!
//! Verifies court-ready audit bundles (`.zab` files emitted by the
//! juridical archive) against nothing but the consensus group's public
//! keys. It shares no state with the archive that produced the bundles:
//! everything it checks — block decoding, payload consistency, Merkle
//! inclusion, hash-chain links, and the 2f+1 checkpoint certificate — is
//! recomputed from the bundle bytes and the key file.
//!
//! ```text
//! zugchain-audit --keys replica-keys.txt --quorum 3 bundle1.zab bundle2.zab
//! curl .../v1/trains/7/bundle/42 | zugchain-audit --keys keys.txt --quorum 3 -
//! ```
//!
//! The path `-` reads one bundle from stdin — the serving layer's
//! `/v1/trains/<id>/bundle/<sn>` download uses the same `.zab` framing
//! as bundle files, so fetched bytes pipe straight into verification.
//!
//! In a fleet, `--train <id>` restricts the audit to one vehicle: a
//! bundle tagged with another train fails with a diagnostic, as does a
//! key file whose `train` directive names a different train (wrong
//! keyset for the requested vehicle). Without `--train`, a key file
//! carrying a `train` directive scopes the audit to that train.
//!
//! Exit status 0 iff every bundle verifies (and matches the requested
//! train, when one is in effect).

use std::path::PathBuf;
use std::process::ExitCode;

use zugchain_archive::{keyfile, AuditBundle};
use zugchain_wire::TrainId;

struct Args {
    keys: PathBuf,
    quorum: usize,
    train: Option<TrainId>,
    bundles: Vec<PathBuf>,
}

const USAGE: &str =
    "usage: zugchain-audit --keys <replica-key-file> --quorum <n> [--train <id>] <bundle.zab>...";

fn parse_args() -> Result<Args, String> {
    let mut keys = None;
    let mut quorum = None;
    let mut train = None;
    let mut bundles = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--keys" => {
                let value = argv.next().ok_or("--keys needs a file path")?;
                keys = Some(PathBuf::from(value));
            }
            "--quorum" => {
                let value = argv.next().ok_or("--quorum needs a number")?;
                quorum = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("invalid quorum `{value}`"))?,
                );
            }
            "--train" => {
                let value = argv.next().ok_or("--train needs a decimal train id")?;
                train = Some(TrainId::parse(&value).ok_or(format!("invalid train id `{value}`"))?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            // `-` is a bundle read from stdin, not a flag.
            "-" => bundles.push(PathBuf::from("-")),
            _ if arg.starts_with('-') => return Err(format!("unknown flag `{arg}`\n{USAGE}")),
            _ => bundles.push(PathBuf::from(arg)),
        }
    }
    let keys = keys.ok_or(format!("missing --keys\n{USAGE}"))?;
    let quorum = quorum.ok_or(format!("missing --quorum\n{USAGE}"))?;
    if quorum == 0 {
        return Err("quorum must be at least 1".to_string());
    }
    if bundles.is_empty() {
        return Err(format!("no bundle files given\n{USAGE}"));
    }
    Ok(Args {
        keys,
        quorum,
        train,
        bundles,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let (keyset_train, keystore) = match keyfile::read_keys_full(&args.keys) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("cannot load keys from {}: {e}", args.keys.display());
            return ExitCode::FAILURE;
        }
    };
    // The requested train and the keyset's declared train must agree:
    // verifying train A's bundles against train B's keys would only ever
    // produce misleading certificate failures.
    if let (Some(requested), Some(declared)) = (args.train, keyset_train) {
        if requested != declared {
            eprintln!(
                "key file {} declares train {declared}, but --train {requested} was requested: \
                 wrong keyset for that vehicle",
                args.keys.display()
            );
            return ExitCode::FAILURE;
        }
    }
    // An explicit --train wins; otherwise the key file's directive (if
    // any) scopes the audit.
    let train = args.train.or(keyset_train);
    println!(
        "loaded {} replica public keys from {} (quorum {}{})",
        keystore.len(),
        args.keys.display(),
        args.quorum,
        match train {
            Some(train) => format!(", train {train}"),
            None => String::new(),
        }
    );

    let mut failures = 0usize;
    for path in &args.bundles {
        let loaded = if path.as_os_str() == "-" {
            // One `.zab`-framed bundle on stdin, e.g. piped from the
            // serving layer's bundle download.
            let mut raw = Vec::new();
            std::io::Read::read_to_end(&mut std::io::stdin().lock(), &mut raw)
                .map_err(|e| e.to_string())
                .and_then(|_| AuditBundle::from_zab_bytes(&raw).map_err(|e| e.to_string()))
        } else {
            AuditBundle::read_from(path).map_err(|e| e.to_string())
        };
        let verdict = loaded.and_then(|bundle| {
            if let Some(train) = train {
                if bundle.train != train {
                    return Err(format!(
                        "bundle is from train {}, not requested train {train}",
                        bundle.train
                    ));
                }
            }
            bundle
                .verify(&keystore, args.quorum)
                .map_err(|e| e.to_string())
        });
        match verdict {
            Ok(block) => {
                println!(
                    "OK   {}: block height {} ({} requests, sn {}..={}, hash {})",
                    path.display(),
                    block.height(),
                    block.requests.len(),
                    block.header.first_sn,
                    block.header.last_sn,
                    block.hash().short()
                );
            }
            Err(reason) => {
                failures += 1;
                println!("FAIL {}: {reason}", path.display());
            }
        }
    }

    if failures > 0 {
        eprintln!(
            "{failures} of {} bundle(s) FAILED verification",
            args.bundles.len()
        );
        ExitCode::FAILURE
    } else {
        println!("all {} bundle(s) verified", args.bundles.len());
        ExitCode::SUCCESS
    }
}
