//! Fleet-scale sharded archive: one juridical [`Archive`] per train,
//! ingesting concurrently, plus a cross-train index for fleet-wide
//! time-range queries.
//!
//! # Sharding
//!
//! A railway operator's data center receives certified segments from
//! every vehicle in the fleet. Chains of different trains are completely
//! independent — different replica keysets, different heights, different
//! heads — so the fleet archive stores them in independent *shards*: one
//! [`Archive`] per registered train, each holding its own lock. Ingest
//! from train A never contends with ingest from train B (the
//! [`IngestLock::Global`] mode exists only as a benchmark baseline to
//! quantify exactly that). On disk each shard lives under
//! `root/trains/<id>/` with its own segment files and index summary, so
//! crash recovery runs per train and one corrupted shard cannot take
//! down another's data.
//!
//! # Cross-train index
//!
//! Fleet-wide queries ("what did every vehicle record between t₀ and
//! t₁?") go through a small cross index `(time_ms, train, sn) → height`
//! maintained at ingest and rebuilt from the shards at registration. The
//! index only *routes* — it answers which trains hold records in a range
//! — and the shards then serve the actual blocks under their own read
//! locks, so a routed query never blocks unrelated ingest.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

use zugchain_crypto::{Digest, Keystore};
use zugchain_export::CertifiedSegment;
use zugchain_signals::analysis::Timeline;
use zugchain_signals::Request;
use zugchain_wire::TrainId;

use crate::archive::{Archive, IngestError, RecoveryReport};
use crate::bundle::AuditBundle;

/// How fleet ingest serializes concurrent callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestLock {
    /// One write lock per shard: trains ingest concurrently. The default
    /// and the whole point of sharding.
    #[default]
    PerShard,
    /// One global mutex over every ingest, regardless of train — the
    /// single-lock baseline the `fleet_ingest` benchmark compares
    /// against. Queries still go per-shard.
    Global,
}

/// One train's shard: its archive behind its own lock.
struct Shard {
    archive: RwLock<Archive>,
}

struct FleetInner {
    root: Option<PathBuf>,
    quorum: usize,
    lock_mode: IngestLock,
    /// Taken for the whole ingest in [`IngestLock::Global`] mode.
    global: Mutex<()>,
    /// Registered shards. The map lock is held only to *look up* a
    /// shard (reads) or register a train (writes) — never across an
    /// ingest or query.
    shards: RwLock<BTreeMap<TrainId, Arc<Shard>>>,
    /// `(time_ms, train, sn) → height` across the whole fleet.
    cross: RwLock<BTreeMap<(u64, TrainId, u64), u64>>,
    telemetry: RwLock<zugchain_telemetry::Telemetry>,
}

/// The fleet archive: per-train shards plus the cross-train index.
/// Cloning is cheap (an `Arc` bump); clones share all state, so one
/// handle per ingest thread is the intended usage.
#[derive(Clone)]
pub struct FleetArchive {
    inner: Arc<FleetInner>,
}

impl std::fmt::Debug for FleetArchive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetArchive")
            .field("root", &self.inner.root)
            .field("lock_mode", &self.inner.lock_mode)
            .field("trains", &self.trains().len())
            .finish()
    }
}

fn read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

impl FleetArchive {
    /// An ephemeral fleet archive with no backing directory.
    pub fn in_memory(quorum: usize) -> Self {
        Self::build(None, quorum)
    }

    /// A durable fleet archive rooted at `root`; each registered train's
    /// shard lives under `root/trains/<id>/`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the root directory.
    pub fn open(root: impl AsRef<Path>, quorum: usize) -> io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(root.join("trains"))?;
        Ok(Self::build(Some(root), quorum))
    }

    fn build(root: Option<PathBuf>, quorum: usize) -> Self {
        FleetArchive {
            inner: Arc::new(FleetInner {
                root,
                quorum,
                lock_mode: IngestLock::default(),
                global: Mutex::new(()),
                shards: RwLock::new(BTreeMap::new()),
                cross: RwLock::new(BTreeMap::new()),
                telemetry: RwLock::new(zugchain_telemetry::Telemetry::disabled()),
            }),
        }
    }

    /// Selects the ingest locking mode (benchmark baseline switch).
    /// Call before registering trains; consumes and returns `self` so a
    /// fleet cannot change mode while handles are shared.
    #[must_use]
    pub fn with_lock_mode(self, mode: IngestLock) -> Self {
        let inner = Arc::try_unwrap(self.inner)
            .unwrap_or_else(|_| panic!("with_lock_mode requires an unshared FleetArchive"));
        FleetArchive {
            inner: Arc::new(FleetInner {
                lock_mode: mode,
                ..inner
            }),
        }
    }

    /// The active ingest locking mode.
    pub fn lock_mode(&self) -> IngestLock {
        self.inner.lock_mode
    }

    /// Attaches a telemetry handle. Shards registered from now on
    /// publish `zugchain_archive_*` metrics under an additional
    /// `train="<id>"` label (via [`zugchain_telemetry::Telemetry::for_train`]).
    pub fn set_telemetry(&self, telemetry: &zugchain_telemetry::Telemetry) {
        *write(&self.inner.telemetry) = telemetry.clone();
    }

    /// Registers a train's shard with its replica keyset, opening (and
    /// recovering) the durable shard directory when the fleet is
    /// durable. Re-registering an already-known train is an error — a
    /// keyset swap must never silently re-scope an existing shard.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::AlreadyExists`] for a duplicate registration, or
    /// any I/O error from opening the shard directory.
    pub fn register_train(&self, train: TrainId, keystore: Keystore) -> io::Result<RecoveryReport> {
        let (mut archive, report) = match &self.inner.root {
            None => (
                Archive::in_memory_for_train(train, keystore, self.inner.quorum),
                RecoveryReport::default(),
            ),
            Some(root) => Archive::open_for_train(
                root.join("trains").join(train.to_string()),
                train,
                keystore,
                self.inner.quorum,
            )?,
        };
        {
            let telemetry = read(&self.inner.telemetry);
            if telemetry.is_enabled() {
                archive.set_telemetry(&telemetry.for_train(train.0));
            }
        }

        // Recovered blocks join the cross index before the shard becomes
        // visible, so a fleet query never sees a half-indexed train.
        let mut recovered = Vec::new();
        for block in archive.blocks() {
            index_block_into(&mut recovered, train, block);
        }

        let mut shards = write(&self.inner.shards);
        if shards.contains_key(&train) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("train {train} is already registered"),
            ));
        }
        {
            let mut cross = write(&self.inner.cross);
            for (key, height) in recovered {
                cross.insert(key, height);
            }
        }
        shards.insert(
            train,
            Arc::new(Shard {
                archive: RwLock::new(archive),
            }),
        );
        Ok(report)
    }

    fn shard(&self, train: TrainId) -> Option<Arc<Shard>> {
        read(&self.inner.shards).get(&train).cloned()
    }

    /// Verifies and ingests one certified segment into its origin
    /// train's shard, returning the shard-local sequence number.
    ///
    /// Under [`IngestLock::PerShard`] only that train's shard lock is
    /// held; segments of different trains verify and persist fully in
    /// parallel. The cross index is updated in a short critical section
    /// after the shard commits.
    ///
    /// # Errors
    ///
    /// [`IngestError::UnknownTrain`] for an unregistered origin train,
    /// otherwise whatever the shard's [`Archive::ingest`] reports.
    pub fn ingest(&self, certified: &CertifiedSegment) -> Result<u64, IngestError> {
        let shard = self
            .shard(certified.train)
            .ok_or(IngestError::UnknownTrain {
                train: certified.train,
            })?;
        let _serialized = match self.inner.lock_mode {
            IngestLock::PerShard => None,
            IngestLock::Global => Some(self.inner.global.lock().unwrap_or_else(|e| e.into_inner())),
        };
        let seq = write(&shard.archive).ingest(certified)?;

        let mut entries = Vec::new();
        for block in &certified.blocks {
            index_block_into(&mut entries, certified.train, block);
        }
        let mut cross = write(&self.inner.cross);
        for (key, height) in entries {
            cross.insert(key, height);
        }
        Ok(seq)
    }

    /// Registered trains, ascending.
    pub fn trains(&self) -> Vec<TrainId> {
        read(&self.inner.shards).keys().copied().collect()
    }

    /// The `(height, hash)` head of one train's shard (`None` if the
    /// train is unregistered or its shard is empty).
    pub fn head_of(&self, train: TrainId) -> Option<(u64, Digest)> {
        read(&self.shard(train)?.archive).head()
    }

    /// Archived segment count of one train's shard.
    pub fn segment_count_of(&self, train: TrainId) -> usize {
        self.shard(train)
            .map_or(0, |s| read(&s.archive).segment_count())
    }

    /// Total archived segments across every shard.
    pub fn segment_count(&self) -> usize {
        let shards = read(&self.inner.shards);
        shards
            .values()
            .map(|s| read(&s.archive).segment_count())
            .sum()
    }

    /// Total cross-indexed requests across the fleet.
    pub fn request_count(&self) -> usize {
        read(&self.inner.cross).len()
    }

    /// Runs a closure against one train's archive under its read lock —
    /// the escape hatch for per-train queries ([`Archive::block_at`],
    /// [`Archive::requests_of_kinds`], …) without widening this API.
    pub fn with_shard<R>(&self, train: TrainId, f: impl FnOnce(&Archive) -> R) -> Option<R> {
        let shard = self.shard(train)?;
        let archive = read(&shard.archive);
        Some(f(&archive))
    }

    /// Trains holding at least one record in `[from_ms, to_ms]`,
    /// ascending — the cross index routing a fleet-wide query to only
    /// the shards that matter.
    pub fn trains_in(&self, from_ms: u64, to_ms: u64) -> Vec<TrainId> {
        let cross = read(&self.inner.cross);
        let mut trains: Vec<TrainId> = cross
            .range((from_ms, TrainId(0), 0)..=(to_ms, TrainId(u64::MAX), u64::MAX))
            .map(|(&(_, train, _), _)| train)
            .collect();
        trains.sort_unstable();
        trains.dedup();
        trains
    }

    /// Fleet-wide time-range query: every decodable signal request in
    /// `[from_ms, to_ms]` across every train, as
    /// `(train, sn, origin, request)` grouped by train and time-ordered
    /// within each.
    pub fn requests_in(&self, from_ms: u64, to_ms: u64) -> Vec<(TrainId, u64, u64, Request)> {
        let mut out = Vec::new();
        for train in self.trains_in(from_ms, to_ms) {
            if let Some(requests) = self.with_shard(train, |a| a.requests_in(from_ms, to_ms)) {
                out.extend(
                    requests
                        .into_iter()
                        .map(|(sn, origin, request)| (train, sn, origin, request)),
                );
            }
        }
        out
    }

    /// Per-train juridical [`Timeline`]s over a time range, one entry per
    /// train with records in the range.
    pub fn timelines_in(&self, from_ms: u64, to_ms: u64) -> Vec<(TrainId, Timeline)> {
        self.trains_in(from_ms, to_ms)
            .into_iter()
            .filter_map(|train| {
                self.with_shard(train, |a| a.timeline(from_ms, to_ms))
                    .map(|timeline| (train, timeline))
            })
            .collect()
    }

    /// Builds a court-ready [`AuditBundle`] from one train's shard.
    pub fn audit_bundle(&self, train: TrainId, height: u64) -> Option<AuditBundle> {
        self.with_shard(train, |a| a.audit_bundle(height))?
    }
}

/// Mirrors [`crate::ArchiveIndex::index_block`]'s time attribution for
/// the cross index: decoded request time when the payload parses as a
/// [`Request`], the block timestamp otherwise.
fn index_block_into(
    out: &mut Vec<((u64, TrainId, u64), u64)>,
    train: TrainId,
    block: &zugchain_blockchain::Block,
) {
    let height = block.height();
    for request in &block.requests {
        let time_ms = match zugchain_wire::from_bytes::<Request>(&request.payload) {
            Ok(decoded) => decoded.time_ms,
            Err(_) => block.header.time_ms,
        };
        out.push(((time_ms, train, request.sn), height));
    }
}
