//! In-memory query indexes over archived blocks.
//!
//! The archive keeps three indexes, all rebuilt deterministically from
//! the verified segments (they are *derived* state — on index corruption
//! the segments win and the indexes are rebuilt):
//!
//! * **by sequence number** — `sn → height`, point lookups for "which
//!   block holds request N";
//! * **by time** — `(time_ms, sn) → height`, range scans for "what
//!   happened between t₀ and t₁";
//! * **by event kind** — `kind → (time_ms, sn) → height`, so a court
//!   request like "all brake events that day" touches only the blocks
//!   that actually contain brake signals.
//!
//! Request payloads are decoded as [`zugchain_signals::Request`] values
//! where possible; payloads that do not decode (foreign formats, chaos
//! junk) are indexed under [`EventKind::Other`] at the block timestamp,
//! so they remain reachable by time without poisoning the kind indexes.

use std::collections::BTreeMap;

use zugchain_blockchain::Block;
use zugchain_signals::Request;

/// Coarse classification of decoded signal events for indexed queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// Speed readings (`v_actual`).
    Speed,
    /// Brake activity (`brake_applied`, `emergency_brake`).
    Brake,
    /// Door state (`doors_released`).
    Door,
    /// Automatic train protection interventions (`atp_intervention`).
    Atp,
    /// Everything else, including undecodable payloads.
    Other,
}

impl EventKind {
    /// Classifies a signal by its NSDB name.
    pub fn of_signal(name: &str) -> EventKind {
        match name {
            "v_actual" => EventKind::Speed,
            "brake_applied" | "emergency_brake" => EventKind::Brake,
            "doors_released" => EventKind::Door,
            "atp_intervention" => EventKind::Atp,
            _ => EventKind::Other,
        }
    }

    /// All kinds, for exhaustive queries.
    pub const ALL: [EventKind; 5] = [
        EventKind::Speed,
        EventKind::Brake,
        EventKind::Door,
        EventKind::Atp,
        EventKind::Other,
    ];
}

/// Where an indexed request lives: block height plus position metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestLocation {
    /// Height of the containing block.
    pub height: u64,
    /// The request's BFT sequence number.
    pub sn: u64,
    /// Timestamp used for ordering (decoded request time, or the block
    /// time for undecodable payloads).
    pub time_ms: u64,
}

/// The archive's derived query indexes.
#[derive(Debug, Clone, Default)]
pub struct ArchiveIndex {
    by_sn: BTreeMap<u64, u64>,
    by_time: BTreeMap<(u64, u64), u64>,
    by_kind: BTreeMap<EventKind, BTreeMap<(u64, u64), u64>>,
}

impl ArchiveIndex {
    /// Creates empty indexes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes every request of `block`. Idempotent for re-ingestion of
    /// the same block (keys are overwritten with identical values).
    pub fn index_block(&mut self, block: &Block) {
        let height = block.height();
        for request in &block.requests {
            self.by_sn.insert(request.sn, height);
            let (time_ms, kinds) = match zugchain_wire::from_bytes::<Request>(&request.payload) {
                Ok(decoded) => {
                    let mut kinds: Vec<EventKind> = decoded
                        .events
                        .iter()
                        .map(|e| EventKind::of_signal(&e.name))
                        .collect();
                    kinds.sort_unstable();
                    kinds.dedup();
                    (decoded.time_ms, kinds)
                }
                Err(_) => (block.header.time_ms, vec![EventKind::Other]),
            };
            self.by_time.insert((time_ms, request.sn), height);
            for kind in kinds {
                self.by_kind
                    .entry(kind)
                    .or_default()
                    .insert((time_ms, request.sn), height);
            }
        }
    }

    /// Height of the block containing sequence number `sn`, if archived.
    pub fn height_of_sn(&self, sn: u64) -> Option<u64> {
        self.by_sn.get(&sn).copied()
    }

    /// Locations of all requests with `from_ms <= time_ms <= to_ms`, in
    /// (time, sn) order.
    pub fn in_time_range(&self, from_ms: u64, to_ms: u64) -> Vec<RequestLocation> {
        self.by_time
            .range((from_ms, 0)..=(to_ms, u64::MAX))
            .map(|(&(time_ms, sn), &height)| RequestLocation {
                height,
                sn,
                time_ms,
            })
            .collect()
    }

    /// Like [`in_time_range`](Self::in_time_range) but restricted to
    /// requests containing at least one event of one of `kinds`.
    /// Results are deduplicated and in (time, sn) order.
    pub fn in_time_range_of_kinds(
        &self,
        from_ms: u64,
        to_ms: u64,
        kinds: &[EventKind],
    ) -> Vec<RequestLocation> {
        let mut merged: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for kind in kinds {
            if let Some(index) = self.by_kind.get(kind) {
                for (&key, &height) in index.range((from_ms, 0)..=(to_ms, u64::MAX)) {
                    merged.insert(key, height);
                }
            }
        }
        merged
            .into_iter()
            .map(|((time_ms, sn), height)| RequestLocation {
                height,
                sn,
                time_ms,
            })
            .collect()
    }

    /// Number of indexed requests.
    pub fn len(&self) -> usize {
        self.by_sn.len()
    }

    /// Whether nothing has been indexed yet.
    pub fn is_empty(&self) -> bool {
        self.by_sn.is_empty()
    }
}
