//! The juridical archive proper: verified ingestion, durable segment
//! storage with crash recovery, and the indexed query surface.
//!
//! # Storage layout
//!
//! An on-disk archive directory contains:
//!
//! * `seg-<seq>.zas` — one file per segment: magic `ZGS1`, a content
//!   digest, and the canonical [`Segment`] encoding (the
//!   write-temp-fsync-rename discipline of the on-train `DiskStore`);
//! * `index.zai` — a small summary (`ZGI1`) of the expected segment
//!   sequence, used only to *detect* divergence on restart. Segments
//!   carry quorum certificates; the summary does not — so on any
//!   disagreement the segments win and the indexes are rebuilt.
//!
//! # Recovery
//!
//! [`Archive::open`] walks segment files ascending and keeps the longest
//! prefix that is gap-free, undamaged, chain-continuous, and passes full
//! [`Segment::verify`]; everything after the first defect is deleted so
//! the directory is append-consistent again. The in-memory indexes are
//! always rebuilt from the surviving segments.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

use zugchain_blockchain::Block;
use zugchain_crypto::{Digest, Keystore};
use zugchain_export::CertifiedSegment;
use zugchain_signals::analysis::Timeline;
use zugchain_signals::Request;
use zugchain_wire::{decode_seq, encode_seq, Decode, Encode, Reader, TrainId, WireError, Writer};

use crate::bundle::AuditBundle;
use crate::index::{ArchiveIndex, EventKind, RequestLocation};
use crate::merkle::MerklePath;
use crate::segment::{block_leaves, Segment, SegmentViolation};

/// Magic prefix of a segment (`.zas`) file.
pub const SEGMENT_MAGIC: &[u8; 4] = b"ZGS1";
/// Magic prefix of the index summary (`index.zai`) file.
pub const INDEX_MAGIC: &[u8; 4] = b"ZGI1";

/// Why a certified segment was refused at ingestion.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IngestError {
    /// The segment does not extend the archive head.
    NotContiguous {
        /// Height the archive expected the segment to build on.
        expected_height: u64,
        /// Hash the archive expected the segment to build on.
        expected_hash: Digest,
        /// Base height the segment declared.
        got_height: u64,
        /// Base hash the segment declared.
        got_hash: Digest,
    },
    /// The segment failed verification.
    Invalid(SegmentViolation),
    /// The segment belongs to another train: this archive (shard) only
    /// accepts its own train's chain.
    TrainMismatch {
        /// Train this archive shard stores.
        expected: TrainId,
        /// Origin train the segment declared.
        got: TrainId,
    },
    /// The segment's train has no registered replica keyset (fleet
    /// ingest only; a single-train [`Archive`] reports
    /// [`TrainMismatch`](Self::TrainMismatch) instead).
    UnknownTrain {
        /// The unregistered train.
        train: TrainId,
    },
    /// Persisting the verified segment failed; the in-memory state was
    /// left unchanged.
    Io(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::NotContiguous {
                expected_height,
                expected_hash,
                got_height,
                got_hash,
            } => write!(
                f,
                "segment base (height {got_height}, {}) does not extend archive head \
                 (height {expected_height}, {})",
                got_hash.short(),
                expected_hash.short()
            ),
            IngestError::Invalid(v) => write!(f, "segment rejected: {v}"),
            IngestError::TrainMismatch { expected, got } => write!(
                f,
                "segment from train {got} refused by train {expected}'s shard"
            ),
            IngestError::UnknownTrain { train } => {
                write!(f, "no replica keyset registered for train {train}")
            }
            IngestError::Io(e) => write!(f, "segment could not be persisted: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<SegmentViolation> for IngestError {
    fn from(v: SegmentViolation) -> Self {
        IngestError::Invalid(v)
    }
}

/// What [`Archive::open`] found and fixed while recovering a directory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Segments that survived recovery.
    pub segments_recovered: usize,
    /// Sequence numbers whose files were damaged, gapped, discontinuous,
    /// or unverifiable and were deleted.
    pub segments_discarded: Vec<u64>,
    /// Whether the index summary was missing, corrupt, or divergent and
    /// had to be rebuilt from the segments.
    pub index_rebuilt: bool,
}

/// One line of the on-disk index summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IndexEntry {
    seq: u64,
    last_height: u64,
    head_hash: Digest,
}

impl Encode for IndexEntry {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.seq);
        w.write_u64(self.last_height);
        self.head_hash.encode(w);
    }
}

impl Decode for IndexEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(IndexEntry {
            seq: r.read_u64()?,
            last_height: r.read_u64()?,
            head_hash: Digest::decode(r)?,
        })
    }
}

/// Durable segment files under one directory.
#[derive(Debug, Clone)]
struct SegmentStore {
    dir: PathBuf,
}

impl SegmentStore {
    fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    fn segment_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("seg-{seq:010}.zas"))
    }

    fn index_path(&self) -> PathBuf {
        self.dir.join("index.zai")
    }

    fn write_record(path: &Path, magic: &[u8; 4], body: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(magic)?;
            file.write_all(Digest::of(body).as_bytes())?;
            file.write_all(body)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, path)
    }

    fn read_record(path: &Path, magic: &[u8; 4]) -> io::Result<Vec<u8>> {
        let raw = fs::read(path)?;
        let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        if raw.len() < 36 || &raw[..4] != magic {
            return Err(invalid("bad magic"));
        }
        let stored = Digest::from_bytes(raw[4..36].try_into().expect("length checked"));
        let body = &raw[36..];
        if Digest::of(body) != stored {
            return Err(invalid("digest mismatch (torn or corrupted write)"));
        }
        Ok(body.to_vec())
    }

    fn write_segment(&self, segment: &Segment) -> io::Result<()> {
        Self::write_record(
            &self.segment_path(segment.header.seq),
            SEGMENT_MAGIC,
            &zugchain_wire::to_bytes(segment),
        )
    }

    fn read_segment(&self, seq: u64) -> io::Result<Segment> {
        let body = Self::read_record(&self.segment_path(seq), SEGMENT_MAGIC)?;
        zugchain_wire::from_bytes(&body).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("undecodable segment: {e}"),
            )
        })
    }

    fn remove_segment(&self, seq: u64) -> io::Result<()> {
        match fs::remove_file(self.segment_path(seq)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn seqs(&self) -> io::Result<Vec<u64>> {
        let mut seqs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(number) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".zas"))
            {
                if let Ok(seq) = number.parse() {
                    seqs.push(seq);
                }
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    fn write_summary(&self, entries: &[IndexEntry]) -> io::Result<()> {
        let mut w = Writer::new();
        encode_seq(entries, &mut w);
        Self::write_record(&self.index_path(), INDEX_MAGIC, w.as_bytes())
    }

    /// Reads the summary; `Ok(None)` means missing or unusable (any
    /// corruption is treated as "needs rebuild", never as fatal).
    fn read_summary(&self) -> Option<Vec<IndexEntry>> {
        let body = Self::read_record(&self.index_path(), INDEX_MAGIC).ok()?;
        let mut r = Reader::new(&body);
        let entries = decode_seq(&mut r).ok()?;
        r.is_empty().then_some(entries)
    }
}

/// The juridical archive: verified, indexed, durable block storage on the
/// data-center side of the export protocol.
#[derive(Debug)]
pub struct Archive {
    /// The train whose chain this archive (shard) stores. Segments from
    /// any other train are refused, and recovery discards files whose
    /// header names another train.
    train: TrainId,
    keystore: Keystore,
    quorum: usize,
    storage: Option<SegmentStore>,
    segments: Vec<Segment>,
    index: ArchiveIndex,
    metrics: ArchiveMetrics,
    telemetry: zugchain_telemetry::Telemetry,
}

/// Cached metric handles for an archive (see DESIGN.md §12). All handles
/// are inert until [`Archive::set_telemetry`] resolves them.
#[derive(Debug, Default)]
struct ArchiveMetrics {
    /// `zugchain_archive_ingests_total`: segments successfully ingested.
    ingests: zugchain_telemetry::Counter,
    /// `zugchain_archive_ingest_errors_total`: rejected segments
    /// (discontinuity, bad certificate, train mismatch, build or I/O
    /// failure).
    ingest_errors: zugchain_telemetry::Counter,
    /// `zugchain_archive_segments_total`: segments archived since this
    /// process started (monotonic; the `zugchain_archive_segments` gauge
    /// reports the absolute count including recovered segments).
    segments_total: zugchain_telemetry::Counter,
    /// `zugchain_archive_ingest_latency_us`: wall-clock microseconds per
    /// successful ingest (verify + persist + index).
    ingest_latency_us: zugchain_telemetry::Histogram,
    /// `zugchain_archive_bundle_builds_total`: court-ready audit bundles
    /// assembled.
    bundle_builds: zugchain_telemetry::Counter,
    /// `zugchain_archive_segments`: archived segment count.
    segments: zugchain_telemetry::Gauge,
    /// `zugchain_archive_requests`: indexed request count.
    requests: zugchain_telemetry::Gauge,
    /// `zugchain_record_to_servable_ms`: end-to-end latency from the MVB
    /// record's agreed bus time to the moment the request became
    /// servable from this archive shard — one observation per archived
    /// request, so its count equals the shard's indexed requests.
    record_to_servable: zugchain_telemetry::Histogram,
}

impl ArchiveMetrics {
    fn resolve(telemetry: &zugchain_telemetry::Telemetry) -> Self {
        ArchiveMetrics {
            ingests: telemetry.counter("zugchain_archive_ingests_total"),
            ingest_errors: telemetry.counter("zugchain_archive_ingest_errors_total"),
            segments_total: telemetry.counter("zugchain_archive_segments_total"),
            ingest_latency_us: telemetry.histogram("zugchain_archive_ingest_latency_us"),
            bundle_builds: telemetry.counter("zugchain_archive_bundle_builds_total"),
            segments: telemetry.gauge("zugchain_archive_segments"),
            requests: telemetry.gauge("zugchain_archive_requests"),
            record_to_servable: telemetry.histogram("zugchain_record_to_servable_ms"),
        }
    }
}

impl Archive {
    /// Hard engine-side cap on one [`page_by_sn`](Archive::page_by_sn)
    /// page. Serving layers must configure their own page limits at or
    /// below this, so the engine and HTTP bounds can never disagree.
    pub const MAX_PAGE_LIMIT: usize = 1024;

    /// Creates an ephemeral archive with no backing directory — used by
    /// the chaos harness and tests. Verification is identical to the
    /// durable form.
    pub fn in_memory(keystore: Keystore, quorum: usize) -> Self {
        Self::in_memory_for_train(TrainId::DEFAULT, keystore, quorum)
    }

    /// Like [`in_memory`](Self::in_memory), but as the shard of one
    /// specific train: only segments tagged `train` are accepted, and
    /// they must verify against that train's replica `keystore`.
    pub fn in_memory_for_train(train: TrainId, keystore: Keystore, quorum: usize) -> Self {
        Archive {
            train,
            keystore,
            quorum,
            storage: None,
            segments: Vec::new(),
            index: ArchiveIndex::new(),
            metrics: ArchiveMetrics::default(),
            telemetry: zugchain_telemetry::Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: resolves the archive's metric
    /// handles (`zugchain_archive_*`), publishes the current segment and
    /// request gauges, and enables ingest trace events.
    pub fn set_telemetry(&mut self, telemetry: &zugchain_telemetry::Telemetry) {
        self.metrics = ArchiveMetrics::resolve(telemetry);
        self.metrics.segments.set(self.segments.len() as i64);
        self.metrics.requests.set(self.index.len() as i64);
        self.telemetry = telemetry.clone();
    }

    /// Opens (creating if necessary) a durable archive at `dir`,
    /// recovering the longest verified segment prefix from whatever the
    /// directory contains.
    ///
    /// # Errors
    ///
    /// Only environment I/O errors. Damaged or unverifiable data is never
    /// an error — it is truncated away and reported in the
    /// [`RecoveryReport`].
    pub fn open(
        dir: impl AsRef<Path>,
        keystore: Keystore,
        quorum: usize,
    ) -> io::Result<(Self, RecoveryReport)> {
        Self::open_for_train(dir, TrainId::DEFAULT, keystore, quorum)
    }

    /// Like [`open`](Self::open), but as the durable shard of one
    /// specific train. Recovery additionally discards any segment file
    /// whose header names a different train — a misplaced or relabeled
    /// file can never leak another vehicle's records into this shard.
    pub fn open_for_train(
        dir: impl AsRef<Path>,
        train: TrainId,
        keystore: Keystore,
        quorum: usize,
    ) -> io::Result<(Self, RecoveryReport)> {
        let storage = SegmentStore::open(dir)?;
        let mut report = RecoveryReport::default();

        // Walk segment files ascending; the first gap, damaged file,
        // wrong embedded seq, chain discontinuity, or verification
        // failure truncates the rest.
        let mut segments: Vec<Segment> = Vec::new();
        let mut damaged = false;
        for seq in storage.seqs()? {
            if !damaged {
                let expected_seq = segments.len() as u64;
                let continuous = |segment: &Segment| match segments.last() {
                    None => true,
                    Some(prev) => {
                        segment.header.base_height == prev.header.last_height
                            && segment.header.base_hash == prev.header.head_hash
                    }
                };
                match storage.read_segment(seq) {
                    Ok(segment)
                        if seq == expected_seq
                            && segment.header.seq == seq
                            && segment.header.train == train
                            && continuous(&segment)
                            && segment.verify(&keystore, quorum).is_ok() =>
                    {
                        segments.push(segment);
                        continue;
                    }
                    _ => damaged = true,
                }
            }
            storage.remove_segment(seq)?;
            report.segments_discarded.push(seq);
        }
        report.segments_recovered = segments.len();

        // The summary only detects divergence; segments always win.
        let expected: Vec<IndexEntry> = segments
            .iter()
            .map(|s| IndexEntry {
                seq: s.header.seq,
                last_height: s.header.last_height,
                head_hash: s.header.head_hash,
            })
            .collect();
        if storage.read_summary().as_deref() != Some(&expected[..]) {
            storage.write_summary(&expected)?;
            report.index_rebuilt = true;
        }

        let mut index = ArchiveIndex::new();
        for segment in &segments {
            for block in &segment.blocks {
                index.index_block(block);
            }
        }
        Ok((
            Archive {
                train,
                keystore,
                quorum,
                storage: Some(storage),
                segments,
                index,
                metrics: ArchiveMetrics::default(),
                telemetry: zugchain_telemetry::Telemetry::disabled(),
            },
            report,
        ))
    }

    /// The train whose chain this archive stores.
    pub fn train(&self) -> TrainId {
        self.train
    }

    /// The `(height, hash)` the next segment must build on, or `None`
    /// while the archive is empty (the first segment fixes the base).
    pub fn head(&self) -> Option<(u64, Digest)> {
        self.segments
            .last()
            .map(|s| (s.header.last_height, s.header.head_hash))
    }

    /// The highest archived BFT sequence number, or `None` while the
    /// archive is empty — the bound a cursor walk terminates against.
    pub fn head_sn(&self) -> Option<u64> {
        self.segments
            .last()
            .and_then(|s| s.blocks.last())
            .map(|b| b.header.last_sn)
    }

    /// Number of archived segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of indexed requests across all segments.
    pub fn request_count(&self) -> usize {
        self.index.len()
    }

    /// All archived blocks, ascending by height — one contiguous run.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> {
        self.segments.iter().flat_map(|s| s.blocks.iter())
    }

    /// Verifies and ingests one certified segment from the export path,
    /// returning its archive sequence number.
    ///
    /// The segment must extend the current head exactly (the archive is
    /// append-only); it is fully re-verified — chain linkage, pruned-base
    /// continuity, and the 2f+1 checkpoint certificate — before anything
    /// is persisted or indexed. Persistence is segment file first, then
    /// index summary, then in-memory state, so a crash at any point leaves
    /// a directory [`Archive::open`] recovers cleanly.
    ///
    /// # Errors
    ///
    /// See [`IngestError`]; on error the archive is unchanged (except
    /// possibly an orphaned next-seq segment file on a summary-write
    /// failure, which recovery reconciles).
    pub fn ingest(&mut self, certified: &CertifiedSegment) -> Result<u64, IngestError> {
        let started = std::time::Instant::now();
        let result = self.ingest_inner(certified);
        match &result {
            Ok(seq) => {
                self.metrics.ingests.inc();
                self.metrics.segments_total.inc();
                self.metrics
                    .ingest_latency_us
                    .observe(started.elapsed().as_micros() as u64);
                self.metrics.segments.set(self.segments.len() as i64);
                self.metrics.requests.set(self.index.len() as i64);
                let seq = *seq;
                let blocks = certified.blocks.len() as u64;
                self.telemetry
                    .record_with(|| zugchain_telemetry::TraceEvent::ArchiveIngest { seq, blocks });
                self.trace_ingest_spans(certified);
            }
            Err(_) => self.metrics.ingest_errors.inc(),
        }
        result
    }

    /// Emits the ground-side tail of every archived request's trace —
    /// `ingest` (verified and indexed into this shard) and `servable`
    /// (available to the query front end, the end of the juridical
    /// pipeline) — and observes the end-to-end `record_to_servable`
    /// latency from the request's agreed bus time. Ground spans record
    /// under the node-0 convention, matching the export stage.
    fn trace_ingest_spans(&self, certified: &CertifiedSegment) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let train = self.train.0;
        let now = self.telemetry.now_ms();
        for block in &certified.blocks {
            for request in &block.requests {
                self.metrics
                    .record_to_servable
                    .observe(now.saturating_sub(block.header.time_ms));
                let digest = zugchain_crypto::Digest::of(&request.payload);
                let trace_id =
                    zugchain_wire::derive_trace_id(train, request.origin, digest.as_bytes());
                let ingest_span = zugchain_wire::derive_span_id(
                    trace_id,
                    zugchain_telemetry::Stage::Ingest.as_str(),
                    0,
                );
                self.telemetry.record_span(|| zugchain_telemetry::Span {
                    trace_id,
                    span_id: ingest_span,
                    parent_span: zugchain_wire::derive_span_id(
                        trace_id,
                        zugchain_telemetry::Stage::Export.as_str(),
                        0,
                    ),
                    stage: zugchain_telemetry::Stage::Ingest,
                    node: 0,
                    train,
                    sn: request.sn,
                    start_ms: now,
                    end_ms: now,
                });
                self.telemetry.record_span(|| zugchain_telemetry::Span {
                    trace_id,
                    span_id: zugchain_wire::derive_span_id(
                        trace_id,
                        zugchain_telemetry::Stage::Servable.as_str(),
                        0,
                    ),
                    parent_span: ingest_span,
                    stage: zugchain_telemetry::Stage::Servable,
                    node: 0,
                    train,
                    sn: request.sn,
                    start_ms: now,
                    end_ms: now,
                });
            }
        }
    }

    fn ingest_inner(&mut self, certified: &CertifiedSegment) -> Result<u64, IngestError> {
        if certified.train != self.train {
            return Err(IngestError::TrainMismatch {
                expected: self.train,
                got: certified.train,
            });
        }
        if let Some((expected_height, expected_hash)) = self.head() {
            if certified.base_height != expected_height || certified.base_hash != expected_hash {
                return Err(IngestError::NotContiguous {
                    expected_height,
                    expected_hash,
                    got_height: certified.base_height,
                    got_hash: certified.base_hash,
                });
            }
        }
        let seq = self.segments.len() as u64;
        let segment = Segment::build(seq, certified)?;
        segment.verify(&self.keystore, self.quorum)?;

        if let Some(storage) = &self.storage {
            storage
                .write_segment(&segment)
                .map_err(|e| IngestError::Io(e.to_string()))?;
            let mut entries: Vec<IndexEntry> = self
                .segments
                .iter()
                .chain(std::iter::once(&segment))
                .map(|s| IndexEntry {
                    seq: s.header.seq,
                    last_height: s.header.last_height,
                    head_hash: s.header.head_hash,
                })
                .collect();
            entries.sort_unstable_by_key(|e| e.seq);
            storage
                .write_summary(&entries)
                .map_err(|e| IngestError::Io(e.to_string()))?;
        }

        for block in &segment.blocks {
            self.index.index_block(block);
        }
        self.segments.push(segment);
        Ok(seq)
    }

    fn segment_of_height(&self, height: u64) -> Option<&Segment> {
        let idx = self
            .segments
            .partition_point(|s| s.header.last_height < height);
        let segment = self.segments.get(idx)?;
        (segment.header.first_height <= height).then_some(segment)
    }

    /// The archived block at `height`, if any.
    pub fn block_at(&self, height: u64) -> Option<&Block> {
        let segment = self.segment_of_height(height)?;
        segment
            .blocks
            .get((height - segment.header.first_height) as usize)
    }

    /// The archived block containing BFT sequence number `sn`, if any.
    pub fn block_by_sn(&self, sn: u64) -> Option<&Block> {
        self.block_at(self.index.height_of_sn(sn)?)
    }

    /// One page of a cursor walk over the chain, ordered by height.
    ///
    /// Returns up to `limit` summaries of blocks whose sn range ends at
    /// or after `from_sn` — i.e. the page starts at the block containing
    /// `from_sn` (or the first block after a pruned gap). Because blocks
    /// carry contiguous ascending sn ranges and the archive is
    /// append-only, resuming with `last_sn + 1` of the final returned
    /// block yields every block exactly once, in order, even while new
    /// segments are being ingested between pages.
    ///
    /// `limit` is clamped to [`Archive::MAX_PAGE_LIMIT`] — no caller
    /// mistake can request an unbounded page — and `limit == 0` returns
    /// an empty page. A `from_sn` past [`head_sn`](Archive::head_sn) is
    /// simply a cursor past the end: the page is empty, not an error.
    pub fn page_by_sn(&self, from_sn: u64, limit: usize) -> Vec<BlockInfo> {
        let limit = limit.min(Self::MAX_PAGE_LIMIT);
        let mut out = Vec::with_capacity(limit.min(256));
        let seg_idx = self
            .segments
            .partition_point(|s| !s.blocks.last().is_some_and(|b| b.header.last_sn >= from_sn));
        'segments: for segment in &self.segments[seg_idx..] {
            let start = segment
                .blocks
                .partition_point(|b| b.header.last_sn < from_sn);
            for block in &segment.blocks[start..] {
                if out.len() >= limit {
                    break 'segments;
                }
                out.push(BlockInfo::of(block));
            }
        }
        out
    }

    /// Builds the [`AuditBundle`] for the block containing sequence
    /// number `sn` — the shape the serving layer's bundle download uses
    /// (readers know sns from block pages, not archive heights).
    pub fn bundle_by_sn(&self, sn: u64) -> Option<AuditBundle> {
        self.audit_bundle(self.index.height_of_sn(sn)?)
    }

    fn resolve(&self, locations: Vec<RequestLocation>) -> Vec<(u64, u64, Request)> {
        let mut out = Vec::with_capacity(locations.len());
        for location in locations {
            let Some(block) = self.block_at(location.height) else {
                continue;
            };
            let Some(logged) = block.requests.iter().find(|r| r.sn == location.sn) else {
                continue;
            };
            if let Ok(request) = zugchain_wire::from_bytes::<Request>(&logged.payload) {
                out.push((logged.sn, logged.origin, request));
            }
        }
        out
    }

    /// All decodable signal requests with `from_ms <= time_ms <= to_ms`,
    /// as `(sn, origin, request)` in time order — the shape
    /// [`Timeline::from_requests`] consumes.
    pub fn requests_in(&self, from_ms: u64, to_ms: u64) -> Vec<(u64, u64, Request)> {
        self.resolve(self.index.in_time_range(from_ms, to_ms))
    }

    /// Like [`requests_in`](Self::requests_in), restricted to requests
    /// carrying at least one event of one of `kinds`.
    pub fn requests_of_kinds(
        &self,
        from_ms: u64,
        to_ms: u64,
        kinds: &[EventKind],
    ) -> Vec<(u64, u64, Request)> {
        self.resolve(self.index.in_time_range_of_kinds(from_ms, to_ms, kinds))
    }

    /// Reconstructs the juridical [`Timeline`] over a time range.
    pub fn timeline(&self, from_ms: u64, to_ms: u64) -> Timeline {
        Timeline::from_requests(self.requests_in(from_ms, to_ms))
    }

    /// Builds a court-ready [`AuditBundle`] for the block at `height`:
    /// the block bytes, its Merkle inclusion path, the header chain to
    /// the segment head, and the checkpoint certificate.
    pub fn audit_bundle(&self, height: u64) -> Option<AuditBundle> {
        let segment = self.segment_of_height(height)?;
        let idx = (height - segment.header.first_height) as usize;
        let leaves = block_leaves(self.train, &segment.blocks);
        self.metrics.bundle_builds.inc();
        Some(AuditBundle {
            train: self.train,
            block_bytes: zugchain_wire::to_bytes(&segment.blocks[idx]),
            merkle_path: MerklePath::build(&leaves, idx),
            merkle_root: segment.header.merkle_root,
            link_headers: segment.blocks[idx + 1..]
                .iter()
                .map(|b| b.header.clone())
                .collect(),
            proof: segment.proof.clone(),
        })
    }

    /// Builds audit bundles for every block containing a request in the
    /// given time range — "give me provable records for that day".
    pub fn audit_bundles_in(&self, from_ms: u64, to_ms: u64) -> Vec<AuditBundle> {
        let mut heights: Vec<u64> = self
            .index
            .in_time_range(from_ms, to_ms)
            .into_iter()
            .map(|l| l.height)
            .collect();
        heights.sort_unstable();
        heights.dedup();
        heights
            .into_iter()
            .filter_map(|h| self.audit_bundle(h))
            .collect()
    }
}

/// Summary of one archived block, the unit of the serving layer's
/// cursor pagination — everything a reader needs to walk the chain and
/// decide which blocks to pull full [`AuditBundle`]s for, without
/// shipping payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// Chain height of the block.
    pub height: u64,
    /// Hash of the block (header + payload commitment).
    pub hash: Digest,
    /// First BFT sequence number logged in the block.
    pub first_sn: u64,
    /// Last BFT sequence number logged in the block.
    pub last_sn: u64,
    /// Bus time stamped into the block.
    pub time_ms: u64,
    /// Number of logged requests in the block.
    pub requests: usize,
}

impl BlockInfo {
    /// Summarizes one archived block.
    pub fn of(block: &Block) -> Self {
        BlockInfo {
            height: block.header.height,
            hash: block.hash(),
            first_sn: block.header.first_sn,
            last_sn: block.header.last_sn,
            time_ms: block.header.time_ms,
            requests: block.requests.len(),
        }
    }
}

/// Concurrent handle over an [`Archive`]: ingestion takes the write
/// lock, queries share the read lock, and clones are cheap — the query
/// path of a data center serving several auditors while export keeps
/// appending.
#[derive(Debug, Clone)]
pub struct QueryEngine {
    inner: Arc<RwLock<Archive>>,
}

impl QueryEngine {
    /// Wraps an archive for shared use.
    pub fn new(archive: Archive) -> Self {
        QueryEngine {
            inner: Arc::new(RwLock::new(archive)),
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Archive> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// See [`Archive::set_telemetry`].
    pub fn set_telemetry(&self, telemetry: &zugchain_telemetry::Telemetry) {
        self.inner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .set_telemetry(telemetry);
    }

    /// Ingests a certified segment (writer-isolated; readers block only
    /// for the in-memory swap, not for verification I/O done under the
    /// same lock here for simplicity).
    ///
    /// # Errors
    ///
    /// See [`Archive::ingest`].
    pub fn ingest(&self, certified: &CertifiedSegment) -> Result<u64, IngestError> {
        self.inner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .ingest(certified)
    }

    /// See [`Archive::head`].
    pub fn head(&self) -> Option<(u64, Digest)> {
        self.read().head()
    }

    /// See [`Archive::segment_count`].
    pub fn segment_count(&self) -> usize {
        self.read().segment_count()
    }

    /// See [`Archive::request_count`].
    pub fn request_count(&self) -> usize {
        self.read().request_count()
    }

    /// See [`Archive::block_by_sn`] (cloned out of the lock).
    pub fn block_by_sn(&self, sn: u64) -> Option<Block> {
        self.read().block_by_sn(sn).cloned()
    }

    /// See [`Archive::requests_in`].
    pub fn requests_in(&self, from_ms: u64, to_ms: u64) -> Vec<(u64, u64, Request)> {
        self.read().requests_in(from_ms, to_ms)
    }

    /// See [`Archive::requests_of_kinds`].
    pub fn requests_of_kinds(
        &self,
        from_ms: u64,
        to_ms: u64,
        kinds: &[EventKind],
    ) -> Vec<(u64, u64, Request)> {
        self.read().requests_of_kinds(from_ms, to_ms, kinds)
    }

    /// See [`Archive::timeline`].
    pub fn timeline(&self, from_ms: u64, to_ms: u64) -> Timeline {
        self.read().timeline(from_ms, to_ms)
    }

    /// See [`Archive::audit_bundle`].
    pub fn audit_bundle(&self, height: u64) -> Option<AuditBundle> {
        self.read().audit_bundle(height)
    }

    /// See [`Archive::audit_bundles_in`].
    pub fn audit_bundles_in(&self, from_ms: u64, to_ms: u64) -> Vec<AuditBundle> {
        self.read().audit_bundles_in(from_ms, to_ms)
    }

    /// See [`Archive::page_by_sn`].
    pub fn page_by_sn(&self, from_sn: u64, limit: usize) -> Vec<BlockInfo> {
        self.read().page_by_sn(from_sn, limit)
    }

    /// See [`Archive::bundle_by_sn`].
    pub fn bundle_by_sn(&self, sn: u64) -> Option<AuditBundle> {
        self.read().bundle_by_sn(sn)
    }

    /// Runs `f` under the read lock — the serving layer uses this to
    /// compute a response and observe the segment count in one atomic
    /// snapshot (the cache-key soundness argument needs both to come
    /// from the same lock acquisition).
    pub fn with_archive<R>(&self, f: impl FnOnce(&Archive) -> R) -> R {
        f(&self.read())
    }
}
