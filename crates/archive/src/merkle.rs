//! Binary Merkle tree over segment blocks.
//!
//! Each archived segment commits to its blocks with a Merkle root so the
//! archive can hand out compact per-block inclusion proofs inside
//! [`AuditBundle`](crate::AuditBundle)s. The construction is the
//! RFC 6962 style: leaves and interior nodes are hashed under distinct
//! domain-separation prefixes (so an interior node can never be passed
//! off as a leaf), and an unpaired node at the end of a level is carried
//! up unchanged rather than duplicated (duplication admits the classic
//! CVE-2012-2459 ambiguity between `[..., x]` and `[..., x, x]`).

use zugchain_crypto::Digest;
use zugchain_wire::{decode_seq, encode_seq, Decode, Encode, Reader, WireError, Writer};

/// Domain-separation prefix for leaf hashes.
const LEAF_PREFIX: &[u8] = &[0x00];
/// Domain-separation prefix for interior-node hashes.
const NODE_PREFIX: &[u8] = &[0x01];

/// Hashes one leaf's content bytes.
pub fn leaf_digest(content: &[u8]) -> Digest {
    Digest::chain([LEAF_PREFIX, content])
}

fn node_digest(left: &Digest, right: &Digest) -> Digest {
    Digest::chain([
        NODE_PREFIX,
        left.as_bytes().as_slice(),
        right.as_bytes().as_slice(),
    ])
}

/// Computes the Merkle root over already-hashed leaves.
///
/// The root of an empty leaf set is defined as [`Digest::ZERO`]; archived
/// segments are never empty, so this case only arises in codec tests.
pub fn merkle_root(leaves: &[Digest]) -> Digest {
    if leaves.is_empty() {
        return Digest::ZERO;
    }
    let mut level = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            match pair {
                [left, right] => next.push(node_digest(left, right)),
                [lone] => next.push(*lone),
                _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
            }
        }
        level = next;
    }
    level[0]
}

/// One step of a Merkle inclusion path: the sibling digest and which side
/// it sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MerkleStep {
    /// `true` if the sibling is the *left* input of the parent hash.
    pub sibling_is_left: bool,
    /// The sibling digest.
    pub sibling: Digest,
}

impl Encode for MerkleStep {
    fn encode(&self, w: &mut Writer) {
        self.sibling_is_left.encode(w);
        self.sibling.encode(w);
    }
}

impl Decode for MerkleStep {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MerkleStep {
            sibling_is_left: bool::decode(r)?,
            sibling: Digest::decode(r)?,
        })
    }
}

/// A Merkle inclusion path from one leaf to the root.
///
/// Levels where the node was carried up unpaired contribute no step, so
/// the path length is at most ⌈log₂ n⌉.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MerklePath {
    /// Steps from the leaf level upward.
    pub steps: Vec<MerkleStep>,
}

impl MerklePath {
    /// Builds the inclusion path for `leaf_index` over `leaves`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_index` is out of bounds — callers index into their
    /// own segment.
    pub fn build(leaves: &[Digest], leaf_index: usize) -> Self {
        assert!(leaf_index < leaves.len(), "leaf index within segment");
        let mut steps = Vec::new();
        let mut level = leaves.to_vec();
        let mut index = leaf_index;
        while level.len() > 1 {
            let sibling_index = index ^ 1;
            if sibling_index < level.len() {
                steps.push(MerkleStep {
                    sibling_is_left: sibling_index < index,
                    sibling: level[sibling_index],
                });
            }
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                match pair {
                    [left, right] => next.push(node_digest(left, right)),
                    [lone] => next.push(*lone),
                    _ => unreachable!(),
                }
            }
            level = next;
            index /= 2;
        }
        MerklePath { steps }
    }

    /// Recomputes the root this path proves for `leaf`.
    pub fn root_for(&self, leaf: Digest) -> Digest {
        let mut current = leaf;
        for step in &self.steps {
            current = if step.sibling_is_left {
                node_digest(&step.sibling, &current)
            } else {
                node_digest(&current, &step.sibling)
            };
        }
        current
    }
}

impl Encode for MerklePath {
    fn encode(&self, w: &mut Writer) {
        encode_seq(&self.steps, w);
    }
}

impl Decode for MerklePath {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MerklePath {
            steps: decode_seq(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n).map(|i| leaf_digest(&[i as u8; 8])).collect()
    }

    #[test]
    fn every_leaf_proves_inclusion() {
        for n in 1..=17 {
            let leaves = leaves(n);
            let root = merkle_root(&leaves);
            for (i, leaf) in leaves.iter().enumerate() {
                let path = MerklePath::build(&leaves, i);
                assert_eq!(path.root_for(*leaf), root, "leaf {i} of {n}");
            }
        }
    }

    #[test]
    fn wrong_leaf_fails_inclusion() {
        let leaves = leaves(9);
        let root = merkle_root(&leaves);
        let path = MerklePath::build(&leaves, 4);
        assert_ne!(path.root_for(leaves[5]), root);
        assert_ne!(path.root_for(leaf_digest(b"forged")), root);
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // An interior node's digest must differ from a leaf over the
        // same 64 bytes, or a two-leaf tree could be replayed as one leaf.
        let a = leaf_digest(&[1; 8]);
        let b = leaf_digest(&[2; 8]);
        let node = merkle_root(&[a, b]);
        let mut concat = Vec::new();
        concat.extend_from_slice(a.as_bytes());
        concat.extend_from_slice(b.as_bytes());
        assert_ne!(node, leaf_digest(&concat));
    }

    #[test]
    fn appending_a_duplicate_leaf_changes_the_root() {
        // The carry-up construction distinguishes [a, b, c] from
        // [a, b, c, c] — the ambiguity the duplicate-last scheme admits.
        let three = leaves(3);
        let mut four = three.clone();
        four.push(three[2]);
        assert_ne!(merkle_root(&three), merkle_root(&four));
    }

    #[test]
    fn empty_tree_has_zero_root() {
        assert_eq!(merkle_root(&[]), Digest::ZERO);
    }

    #[test]
    fn path_round_trips_on_the_wire() {
        let leaves = leaves(6);
        let path = MerklePath::build(&leaves, 3);
        let back: MerklePath = zugchain_wire::from_bytes(&zugchain_wire::to_bytes(&path)).unwrap();
        assert_eq!(back, path);
    }
}
