//! Replica public-key files for the standalone auditor.
//!
//! A court-appointed verifier runs `zugchain-audit` with nothing but
//! audit bundles and the consensus group's public keys. The key file is
//! deliberately plain text — one `<replica-id> <64-hex-digit-pubkey>`
//! line per replica, `#` comments allowed — so the keys themselves can
//! be read aloud, printed, and compared against an out-of-band source
//! (the operator's key ceremony record) without any tooling.
//!
//! In a fleet, each train has its own replica keyset; a key file may
//! declare which train its keys belong to with a single
//! `train <decimal id>` directive line. The directive is optional (an
//! undirected file verifies bundles from any train, as before) and at
//! most one is allowed.

use std::fmt::Write as _;
use std::io::{self, Read as _};
use std::path::Path;

use zugchain_crypto::{Keystore, PublicKey};
use zugchain_wire::TrainId;

/// Renders a keystore as the text key-file format.
pub fn keys_to_string(keystore: &Keystore) -> String {
    let mut out = String::from("# ZugChain replica public keys: <id> <ed25519 pubkey hex>\n");
    let mut entries: Vec<(u64, &PublicKey)> = keystore.iter().collect();
    entries.sort_unstable_by_key(|(id, _)| *id);
    for (id, key) in entries {
        let mut hex = String::with_capacity(64);
        for byte in key.to_bytes() {
            let _ = write!(hex, "{byte:02x}");
        }
        let _ = writeln!(out, "{id} {hex}");
    }
    out
}

/// Renders a train's keystore as the text key-file format, with the
/// `train <id>` directive naming the keyset's owner.
pub fn keys_to_string_for_train(train: TrainId, keystore: &Keystore) -> String {
    format!("train {train}\n{}", keys_to_string(keystore))
}

/// Writes a keystore to `path` in the text key-file format.
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_keys(path: &Path, keystore: &Keystore) -> io::Result<()> {
    std::fs::write(path, keys_to_string(keystore))
}

/// Writes a train's keystore to `path` with the `train <id>` directive.
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_keys_for_train(path: &Path, train: TrainId, keystore: &Keystore) -> io::Result<()> {
    std::fs::write(path, keys_to_string_for_train(train, keystore))
}

fn parse_hex32(hex: &str) -> Option<[u8; 32]> {
    if hex.len() != 64 || !hex.is_ascii() {
        return None;
    }
    let mut out = [0u8; 32];
    for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
        let pair = std::str::from_utf8(chunk).ok()?;
        out[i] = u8::from_str_radix(pair, 16).ok()?;
    }
    Some(out)
}

/// Parses the text key-file format back into a keystore, ignoring any
/// `train` directive. Use [`parse_keys_full`] when the declared train
/// matters (e.g. `zugchain-audit --train`).
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] naming the first malformed line.
pub fn parse_keys(text: &str) -> io::Result<Keystore> {
    parse_keys_full(text).map(|(_, keystore)| keystore)
}

/// Parses the text key-file format, returning the optional `train`
/// directive alongside the keystore.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] naming the first malformed line
/// (including a malformed or duplicated `train` directive).
pub fn parse_keys_full(text: &str) -> io::Result<(Option<TrainId>, Keystore)> {
    let invalid = |line: usize, what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("key file line {line}: {what}"),
        )
    };
    let mut train = None;
    let mut entries = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let number = number + 1;
        if let Some(rest) = line.strip_prefix("train ") {
            if train.is_some() {
                return Err(invalid(number, "duplicate train directive"));
            }
            train = Some(
                TrainId::parse(rest)
                    .ok_or_else(|| invalid(number, "train directive needs a decimal id"))?,
            );
            continue;
        }
        let mut parts = line.split_whitespace();
        let id: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| invalid(number, "expected a numeric replica id"))?;
        let hex = parts
            .next()
            .ok_or_else(|| invalid(number, "missing public key"))?;
        if parts.next().is_some() {
            return Err(invalid(number, "trailing tokens after public key"));
        }
        let bytes =
            parse_hex32(hex).ok_or_else(|| invalid(number, "public key is not 64 hex digits"))?;
        let key = PublicKey::try_from_bytes(&bytes)
            .map_err(|_| invalid(number, "bytes are not a valid ed25519 public key"))?;
        entries.push((id, key));
    }
    Ok((train, Keystore::with_ids(entries)))
}

/// Reads a key file from disk.
///
/// # Errors
///
/// I/O errors, or [`io::ErrorKind::InvalidData`] for malformed content.
pub fn read_keys(path: &Path) -> io::Result<Keystore> {
    read_keys_full(path).map(|(_, keystore)| keystore)
}

/// Reads a key file from disk, returning the optional `train` directive
/// alongside the keystore.
///
/// # Errors
///
/// I/O errors, or [`io::ErrorKind::InvalidData`] for malformed content.
pub fn read_keys_full(path: &Path) -> io::Result<(Option<TrainId>, Keystore)> {
    let mut text = String::new();
    std::fs::File::open(path)?.read_to_string(&mut text)?;
    parse_keys_full(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keystore_round_trips_through_text() {
        let (_, keystore) = Keystore::generate(4, 7);
        let text = keys_to_string(&keystore);
        let back = parse_keys(&text).unwrap();
        assert_eq!(back.len(), 4);
        let original: Vec<_> = {
            let mut v: Vec<_> = keystore.iter().map(|(id, k)| (id, k.to_bytes())).collect();
            v.sort_unstable_by_key(|(id, _)| *id);
            v
        };
        let reparsed: Vec<_> = {
            let mut v: Vec<_> = back.iter().map(|(id, k)| (id, k.to_bytes())).collect();
            v.sort_unstable_by_key(|(id, _)| *id);
            v
        };
        assert_eq!(original, reparsed);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let (_, keystore) = Keystore::generate(1, 1);
        let text = format!("# heading\n\n{}\n  \n", keys_to_string(&keystore));
        assert_eq!(parse_keys(&text).unwrap().len(), 1);
    }

    #[test]
    fn train_directive_round_trips() {
        let (_, keystore) = Keystore::generate(4, 7);
        let text = keys_to_string_for_train(TrainId(12), &keystore);
        let (train, back) = parse_keys_full(&text).unwrap();
        assert_eq!(train, Some(TrainId(12)));
        assert_eq!(back.len(), 4);
        // The directive-free file parses with no train.
        let (train, _) = parse_keys_full(&keys_to_string(&keystore)).unwrap();
        assert_eq!(train, None);
        // The train-agnostic parser tolerates the directive.
        assert_eq!(parse_keys(&text).unwrap().len(), 4);
    }

    #[test]
    fn bad_train_directives_are_rejected() {
        for bad in ["train twelve", "train 1\ntrain 2", "train "] {
            let err = parse_keys_full(bad).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        for bad in [
            "notanumber deadbeef",
            "1 deadbeef", // too short
            "1",          // missing key
            &format!("1 {} extra", "ab".repeat(32)),
        ] {
            let err = parse_keys(bad).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad}");
            assert!(err.to_string().contains("line 1"), "{bad}: {err}");
        }
    }
}
