//! Court-ready audit bundles: self-contained proofs for a single block.
//!
//! An [`AuditBundle`] lets a verifier holding nothing but the replica
//! public keys check that one block was logged by the consensus group:
//!
//! 1. the block bytes decode to a payload-consistent block;
//! 2. a Merkle path ties the bytes to the archive segment's root — this
//!    binds the bundle to *what the archive stored*, and lets the archive
//!    later prove the same block to multiple parties from one commitment;
//! 3. a run of successor headers hash-links the block to a head hash;
//! 4. a checkpoint certificate with 2f+1 replica signatures covers that
//!    head hash.
//!
//! Steps 3–4 carry the juridical weight: they chain the block to a
//! digest that a signature quorum of replicas vouched for, so forging a
//! bundle requires breaking the hash chain or the signature scheme. The
//! Merkle root (step 2) is the *archive's own* commitment — it is checked
//! for internal consistency but is not what makes the block court-proof.

use std::fmt;
use std::io::{self, Read as _, Write as _};
use std::path::Path;

use zugchain_blockchain::{Block, BlockHeader};
use zugchain_crypto::{Digest, Keystore};
use zugchain_pbft::CheckpointProof;
use zugchain_wire::{decode_seq, encode_seq, Decode, Encode, Reader, TrainId, WireError, Writer};

use crate::merkle::{leaf_digest, MerklePath};

/// Magic prefix of an audit-bundle (`.zab`) file.
pub const BUNDLE_MAGIC: &[u8; 4] = b"ZAB1";

/// A self-contained, offline-verifiable proof that one block was logged
/// by the consensus group and archived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditBundle {
    /// Origin train of the audited block. Bound into the Merkle leaf
    /// (the leaf covers the train id followed by the block bytes), so a
    /// tampered train id fails inclusion rather than attributing the
    /// record to another vehicle. Cross-train forgery is additionally
    /// blocked by the keys: another train's certificate never verifies
    /// against this train's replica keyset.
    pub train: TrainId,
    /// Canonical encoding of the block under audit.
    pub block_bytes: Vec<u8>,
    /// Merkle inclusion path of `block_bytes` in the archived segment.
    pub merkle_path: MerklePath,
    /// The segment's Merkle root the path must resolve to.
    pub merkle_root: Digest,
    /// Headers of the blocks *after* this one up to the certified head,
    /// lowest height first; empty when the block is the head itself.
    pub link_headers: Vec<BlockHeader>,
    /// Checkpoint certificate covering the head hash.
    pub proof: CheckpointProof,
}

/// Why an audit bundle failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AuditError {
    /// The block bytes do not decode to a canonical block.
    MalformedBlock(WireError),
    /// The decoded block's payload hash disagrees with its requests.
    PayloadMismatch,
    /// The Merkle path does not resolve to the declared root.
    NotInSegment,
    /// A link header does not extend the chain from the block.
    BrokenLink {
        /// Height of the offending header.
        height: u64,
    },
    /// The hash chain ends at a head the certificate does not cover.
    UncertifiedHead {
        /// Head hash the link headers resolve to.
        linked: Digest,
        /// `state_digest` the certificate actually covers.
        certified: Digest,
    },
    /// The certificate lacks a quorum of valid replica signatures.
    BadCertificate,
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::MalformedBlock(e) => write!(f, "block bytes malformed: {e}"),
            AuditError::PayloadMismatch => {
                write!(f, "block payload does not match its header")
            }
            AuditError::NotInSegment => {
                write!(f, "Merkle path does not tie the block to the segment root")
            }
            AuditError::BrokenLink { height } => {
                write!(f, "link header at height {height} breaks the hash chain")
            }
            AuditError::UncertifiedHead { linked, certified } => write!(
                f,
                "chain links to head {} but certificate covers {}",
                linked.short(),
                certified.short()
            ),
            AuditError::BadCertificate => {
                write!(f, "checkpoint certificate lacks a valid signature quorum")
            }
        }
    }
}

impl std::error::Error for AuditError {}

impl AuditBundle {
    /// Verifies the bundle against replica public keys only.
    ///
    /// Returns the decoded block on success so callers can inspect the
    /// juridical content they just proved.
    ///
    /// # Errors
    ///
    /// The first [`AuditError`] found, in the order documented on the
    /// type: decode, payload, Merkle inclusion, chain links, certificate.
    pub fn verify(&self, keystore: &Keystore, quorum: usize) -> Result<Block, AuditError> {
        let block: Block =
            zugchain_wire::from_bytes(&self.block_bytes).map_err(AuditError::MalformedBlock)?;
        if !block.payload_is_consistent() {
            return Err(AuditError::PayloadMismatch);
        }

        let leaf = {
            let mut content = Vec::with_capacity(8 + self.block_bytes.len());
            content.extend_from_slice(&self.train.to_le_bytes());
            content.extend_from_slice(&self.block_bytes);
            leaf_digest(&content)
        };
        if self.merkle_path.root_for(leaf) != self.merkle_root {
            return Err(AuditError::NotInSegment);
        }

        let mut linked = block.hash();
        let mut height = block.height();
        for header in &self.link_headers {
            if header.prev_hash != linked || header.height != height + 1 {
                return Err(AuditError::BrokenLink {
                    height: header.height,
                });
            }
            linked = header.hash();
            height = header.height;
        }
        let certified = self.proof.checkpoint.state_digest;
        if linked != certified {
            return Err(AuditError::UncertifiedHead { linked, certified });
        }

        if !self.proof.verify(keystore, quorum) {
            return Err(AuditError::BadCertificate);
        }
        Ok(block)
    }

    /// The bundle in `.zab` framing: magic, content digest, canonical
    /// encoding. The digest is an integrity checksum for transport
    /// damage — verification never trusts it. This is the byte shape of
    /// a `.zab` file *and* of the serving layer's bundle download, so a
    /// bundle fetched over HTTP pipes straight into `zugchain-audit -`.
    pub fn to_zab_bytes(&self) -> Vec<u8> {
        let body = zugchain_wire::to_bytes(self);
        let mut out = Vec::with_capacity(BUNDLE_MAGIC.len() + 32 + body.len());
        out.extend_from_slice(BUNDLE_MAGIC);
        out.extend_from_slice(Digest::of(&body).as_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes `.zab` framing produced by [`AuditBundle::to_zab_bytes`],
    /// checking magic, checksum, and canonical decoding.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on any mismatch.
    pub fn from_zab_bytes(raw: &[u8]) -> io::Result<Self> {
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        if raw.len() < BUNDLE_MAGIC.len() + 32 {
            return Err(invalid("bundle file truncated".into()));
        }
        let (magic, rest) = raw.split_at(BUNDLE_MAGIC.len());
        if magic != BUNDLE_MAGIC {
            return Err(invalid("not an audit bundle (bad magic)".into()));
        }
        let (checksum, body) = rest.split_at(32);
        if Digest::of(body).as_bytes() != checksum {
            return Err(invalid("bundle checksum mismatch".into()));
        }
        zugchain_wire::from_bytes(body).map_err(|e| invalid(format!("bundle malformed: {e}")))
    }

    /// Serializes the bundle into a `.zab` file
    /// (see [`AuditBundle::to_zab_bytes`]).
    ///
    /// # Errors
    ///
    /// Any underlying I/O error.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(&self.to_zab_bytes())?;
        file.sync_all()
    }

    /// Reads a bundle back from a `.zab` file, checking magic, checksum,
    /// and canonical decoding.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on any mismatch, or the underlying
    /// I/O error.
    pub fn read_from(path: &Path) -> io::Result<Self> {
        let mut raw = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut raw)?;
        Self::from_zab_bytes(&raw)
    }
}

impl Encode for AuditBundle {
    fn encode(&self, w: &mut Writer) {
        self.train.encode(w);
        self.block_bytes.encode(w);
        self.merkle_path.encode(w);
        self.merkle_root.encode(w);
        encode_seq(&self.link_headers, w);
        self.proof.encode(w);
    }
}

impl Decode for AuditBundle {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AuditBundle {
            train: TrainId::decode(r)?,
            block_bytes: Vec::<u8>::decode(r)?,
            merkle_path: MerklePath::decode(r)?,
            merkle_root: Digest::decode(r)?,
            link_headers: decode_seq(r)?,
            proof: CheckpointProof::decode(r)?,
        })
    }
}
