//! Data-center-side juridical archive for exported ZugChain blocks.
//!
//! The export protocol (paper §III-D) moves checkpoint-certified block
//! segments off the train; this crate is what catches them. The paper's
//! juridical premise — recordings must hold up "in front of a court" —
//! does not end at export: the data center must be able to prove, years
//! later and to a skeptical third party, that a stored block is exactly
//! what the consensus group logged. The archive therefore:
//!
//! * **re-verifies before storing** — every ingested segment is checked
//!   for chain linkage, continuity with the pruned base, and a 2f+1
//!   checkpoint certificate ([`Segment::verify`]); the archive never
//!   trusts the export pipeline, only the replicas' signatures;
//! * **stores durably** — append-only segment files with the same
//!   magic/digest/tmp-rename discipline as the on-train `DiskStore`, and
//!   restart recovery to the longest *verified* prefix ([`Archive::open`]);
//! * **answers queries** — by sequence number, time range, and decoded
//!   signal-event kind ([`EventKind`]), feeding the timeline
//!   reconstruction in `zugchain-signals`; a [`QueryEngine`] handle
//!   serves concurrent readers while ingestion continues;
//! * **emits proofs** — every answer can be escorted by an
//!   [`AuditBundle`]: block bytes, Merkle inclusion path, hash-chain
//!   links to the certified head, and the checkpoint certificate. The
//!   standalone `zugchain-audit` binary verifies bundles offline with
//!   nothing but the replica public keys ([`keyfile`]).

#![warn(missing_docs)]

mod archive;
mod bundle;
mod fleet;
mod index;
pub mod keyfile;
mod merkle;
mod segment;

pub use archive::{
    Archive, BlockInfo, IngestError, QueryEngine, RecoveryReport, INDEX_MAGIC, SEGMENT_MAGIC,
};
pub use bundle::{AuditBundle, AuditError, BUNDLE_MAGIC};
pub use fleet::{FleetArchive, IngestLock};
pub use index::{ArchiveIndex, EventKind, RequestLocation};
pub use merkle::{leaf_digest, merkle_root, MerklePath, MerkleStep};
pub use segment::{block_leaves, Segment, SegmentHeader, SegmentViolation};
