//! Checkpoint-certified block segments — the archive's unit of storage.
//!
//! The export protocol hands the data center contiguous runs of blocks
//! covered by a stable-checkpoint certificate ([`CertifiedSegment`]).
//! The archive re-verifies each run and persists it as a [`Segment`]:
//! the blocks, the 2f+1 certificate that makes them juridically binding,
//! and a header of derived commitments (chain endpoints, Merkle root,
//! time bounds) that the indexes and audit bundles are built from.
//! `Segment::verify` recomputes every derived field, so a segment read
//! back from disk is trusted only after it passes the same checks as one
//! arriving fresh from the export path.

use std::fmt;

use zugchain_blockchain::{verify_chain, Block, ChainViolation};
use zugchain_crypto::{Digest, Keystore};
use zugchain_export::CertifiedSegment;
use zugchain_pbft::CheckpointProof;
use zugchain_wire::{decode_seq, encode_seq, Decode, Encode, Reader, TrainId, WireError, Writer};

use crate::merkle::{leaf_digest, merkle_root};

/// Derived commitments over one segment's blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Origin train of the blocks. Bound into every Merkle leaf (see
    /// [`block_leaves`]), so a relabeled segment fails `merkle_root`
    /// verification rather than silently landing in another train's
    /// shard.
    pub train: TrainId,
    /// Position of this segment in the archive's append-only sequence.
    pub seq: u64,
    /// Height of the last block *before* this segment (0 for genesis).
    pub base_height: u64,
    /// Hash the first block's `prev_hash` must equal.
    pub base_hash: Digest,
    /// Height of the first block in the segment.
    pub first_height: u64,
    /// Height of the last block in the segment.
    pub last_height: u64,
    /// Hash of the last block — what the checkpoint certificate covers.
    pub head_hash: Digest,
    /// Merkle root over the canonical encodings of the blocks.
    pub merkle_root: Digest,
    /// Earliest block timestamp in the segment (milliseconds).
    pub min_time_ms: u64,
    /// Latest block timestamp in the segment (milliseconds).
    pub max_time_ms: u64,
}

impl Encode for SegmentHeader {
    fn encode(&self, w: &mut Writer) {
        self.train.encode(w);
        w.write_u64(self.seq);
        w.write_u64(self.base_height);
        self.base_hash.encode(w);
        w.write_u64(self.first_height);
        w.write_u64(self.last_height);
        self.head_hash.encode(w);
        self.merkle_root.encode(w);
        w.write_u64(self.min_time_ms);
        w.write_u64(self.max_time_ms);
    }
}

impl Decode for SegmentHeader {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SegmentHeader {
            train: TrainId::decode(r)?,
            seq: r.read_u64()?,
            base_height: r.read_u64()?,
            base_hash: Digest::decode(r)?,
            first_height: r.read_u64()?,
            last_height: r.read_u64()?,
            head_hash: Digest::decode(r)?,
            merkle_root: Digest::decode(r)?,
            min_time_ms: r.read_u64()?,
            max_time_ms: r.read_u64()?,
        })
    }
}

/// One archived segment: header commitments, the blocks themselves, and
/// the checkpoint certificate binding them to 2f+1 replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Derived commitments; re-checked against the blocks on every verify.
    pub header: SegmentHeader,
    /// The contiguous block run, lowest height first.
    pub blocks: Vec<Block>,
    /// Stable-checkpoint certificate whose `state_digest` is `head_hash`.
    pub proof: CheckpointProof,
}

/// Why a segment failed verification or ingestion.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SegmentViolation {
    /// The segment contains no blocks.
    Empty,
    /// The chain inside the segment is inconsistent.
    Chain(ChainViolation),
    /// The first block's height does not follow the declared base.
    BaseHeightGap {
        /// `base_height` from the header.
        base_height: u64,
        /// Height actually found on the first block.
        first_height: u64,
    },
    /// A header field disagrees with what the blocks derive to.
    HeaderMismatch {
        /// Name of the inconsistent field.
        field: &'static str,
    },
    /// The checkpoint certificate does not cover the segment head.
    CertifiesWrongHead {
        /// Hash of the last block in the segment.
        head_hash: Digest,
        /// `state_digest` the certificate actually covers.
        certified: Digest,
    },
    /// The certificate lacks a quorum of valid replica signatures.
    BadCertificate,
}

impl fmt::Display for SegmentViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentViolation::Empty => write!(f, "segment contains no blocks"),
            SegmentViolation::Chain(v) => write!(f, "segment chain invalid: {v}"),
            SegmentViolation::BaseHeightGap {
                base_height,
                first_height,
            } => write!(
                f,
                "first block height {first_height} does not follow base height {base_height}"
            ),
            SegmentViolation::HeaderMismatch { field } => {
                write!(f, "segment header field `{field}` does not match blocks")
            }
            SegmentViolation::CertifiesWrongHead {
                head_hash,
                certified,
            } => write!(
                f,
                "certificate covers {} but segment head is {}",
                certified.short(),
                head_hash.short()
            ),
            SegmentViolation::BadCertificate => {
                write!(f, "checkpoint certificate lacks a valid signature quorum")
            }
        }
    }
}

impl std::error::Error for SegmentViolation {}

impl From<ChainViolation> for SegmentViolation {
    fn from(v: ChainViolation) -> Self {
        SegmentViolation::Chain(v)
    }
}

/// Computes the Merkle leaf digests for a run of blocks belonging to
/// `train`. Each leaf covers the train id (8 bytes little-endian)
/// followed by the canonical block encoding, under the leaf domain
/// prefix — so the same blocks committed for two different trains
/// produce different roots, and a train id cannot be swapped after the
/// fact without breaking every inclusion proof.
pub fn block_leaves(train: TrainId, blocks: &[Block]) -> Vec<Digest> {
    blocks
        .iter()
        .map(|b| {
            let encoded = zugchain_wire::to_bytes(b);
            let mut content = Vec::with_capacity(8 + encoded.len());
            content.extend_from_slice(&train.to_le_bytes());
            content.extend_from_slice(&encoded);
            leaf_digest(&content)
        })
        .collect()
}

impl Segment {
    /// Builds a segment at archive position `seq` from a certified run of
    /// blocks, computing all derived header fields.
    ///
    /// # Errors
    ///
    /// Returns [`SegmentViolation::Empty`] if the run has no blocks; all
    /// other invariants are checked by [`Segment::verify`].
    pub fn build(seq: u64, certified: &CertifiedSegment) -> Result<Self, SegmentViolation> {
        let blocks = &certified.blocks;
        let first = blocks.first().ok_or(SegmentViolation::Empty)?;
        let last = blocks.last().expect("nonempty");
        let header = SegmentHeader {
            train: certified.train,
            seq,
            base_height: certified.base_height,
            base_hash: certified.base_hash,
            first_height: first.height(),
            last_height: last.height(),
            head_hash: last.hash(),
            merkle_root: merkle_root(&block_leaves(certified.train, blocks)),
            min_time_ms: blocks
                .iter()
                .map(|b| b.header.time_ms)
                .min()
                .expect("nonempty"),
            max_time_ms: blocks
                .iter()
                .map(|b| b.header.time_ms)
                .max()
                .expect("nonempty"),
        };
        Ok(Segment {
            header,
            blocks: blocks.clone(),
            proof: certified.proof.clone(),
        })
    }

    /// Fully re-verifies the segment: chain consistency against the
    /// declared base, every derived header field, and the checkpoint
    /// certificate (quorum signatures *and* that it covers the head).
    ///
    /// # Errors
    ///
    /// The first [`SegmentViolation`] found.
    pub fn verify(&self, keystore: &Keystore, quorum: usize) -> Result<(), SegmentViolation> {
        let first = self.blocks.first().ok_or(SegmentViolation::Empty)?;
        let last = self.blocks.last().expect("nonempty");
        if first.height() != self.header.base_height + 1 {
            return Err(SegmentViolation::BaseHeightGap {
                base_height: self.header.base_height,
                first_height: first.height(),
            });
        }
        verify_chain(&self.blocks, Some(self.header.base_hash))?;

        let mismatch = |field| Err(SegmentViolation::HeaderMismatch { field });
        if self.header.first_height != first.height() {
            return mismatch("first_height");
        }
        if self.header.last_height != last.height() {
            return mismatch("last_height");
        }
        if self.header.head_hash != last.hash() {
            return mismatch("head_hash");
        }
        if self.header.merkle_root != merkle_root(&block_leaves(self.header.train, &self.blocks)) {
            return mismatch("merkle_root");
        }
        let min = self
            .blocks
            .iter()
            .map(|b| b.header.time_ms)
            .min()
            .expect("nonempty");
        let max = self
            .blocks
            .iter()
            .map(|b| b.header.time_ms)
            .max()
            .expect("nonempty");
        if self.header.min_time_ms != min {
            return mismatch("min_time_ms");
        }
        if self.header.max_time_ms != max {
            return mismatch("max_time_ms");
        }

        if self.proof.checkpoint.state_digest != self.header.head_hash {
            return Err(SegmentViolation::CertifiesWrongHead {
                head_hash: self.header.head_hash,
                certified: self.proof.checkpoint.state_digest,
            });
        }
        if !self.proof.verify(keystore, quorum) {
            return Err(SegmentViolation::BadCertificate);
        }
        Ok(())
    }
}

impl Encode for Segment {
    fn encode(&self, w: &mut Writer) {
        self.header.encode(w);
        encode_seq(&self.blocks, w);
        self.proof.encode(w);
    }
}

impl Decode for Segment {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Segment {
            header: SegmentHeader::decode(r)?,
            blocks: decode_seq(r)?,
            proof: CheckpointProof::decode(r)?,
        })
    }
}
