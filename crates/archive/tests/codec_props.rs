//! Property tests for the archive wire codecs: [`Segment`] and
//! [`AuditBundle`] must survive an encode/decode roundtrip unchanged,
//! every strict prefix of an encoding must be rejected (a torn file read
//! never yields a phantom segment), and trailing garbage after a valid
//! encoding must be rejected — appended bytes can never ride along
//! inside a court exhibit.

mod common;

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use zugchain_archive::{Archive, AuditBundle, Segment};
use zugchain_wire::{from_bytes, to_bytes, Decode, Encode, TrainId};

use common::{certified_chain, certified_chain_for_train, keys, QUORUM};

/// Roundtrip + truncation + trailing-garbage checks for one value.
fn check_codec<T>(value: &T, what: &str, garbage: &[u8]) -> Result<(), TestCaseError>
where
    T: Encode + Decode + PartialEq + std::fmt::Debug,
{
    let bytes = to_bytes(value);

    let decoded: T = match from_bytes(&bytes) {
        Ok(decoded) => decoded,
        Err(e) => return Err(TestCaseError::fail(format!("{what} decode failed: {e:?}"))),
    };
    prop_assert_eq!(&decoded, value);

    for cut in 0..bytes.len() {
        prop_assert!(
            from_bytes::<T>(&bytes[..cut]).is_err(),
            "{} prefix of length {} of a {}-byte encoding decoded",
            what,
            cut,
            bytes.len(),
        );
    }

    let mut extended = bytes;
    extended.extend_from_slice(garbage);
    prop_assert!(
        from_bytes::<T>(&extended).is_err(),
        "{} encoding with {} trailing garbage bytes decoded",
        what,
        garbage.len(),
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    /// Train-tagged segments, their headers, and the audit bundles cut
    /// from them have exact codecs at arbitrary train ids.
    fn segment_and_bundle_codecs_are_exact(
        train in any::<u64>(),
        n_segments in 1usize..3,
        blocks_per_segment in 1usize..4,
        garbage in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        let train = TrainId(train);
        let (pairs, keystore) = keys();
        let mut archive = Archive::in_memory_for_train(train, keystore, QUORUM);
        for (seq, certified) in certified_chain_for_train(train, &pairs, n_segments, blocks_per_segment)
            .iter()
            .enumerate()
        {
            let segment = Segment::build(seq as u64, certified)
                .map_err(|e| TestCaseError::fail(format!("build: {e}")))?;
            prop_assert_eq!(segment.header.train, train);
            check_codec(&segment, "segment", &garbage)?;
            check_codec(&segment.header, "segment header", &garbage)?;
            archive
                .ingest(certified)
                .map_err(|e| TestCaseError::fail(format!("ingest: {e}")))?;
        }
        // One bundle per archived block, including interior blocks whose
        // Merkle paths and link-header runs are nonempty.
        let heights: Vec<u64> = archive.blocks().map(|b| b.height()).collect();
        for height in heights {
            let bundle = archive.audit_bundle(height).expect("archived height");
            prop_assert_eq!(bundle.train, train);
            check_codec(&bundle, "bundle", &garbage)?;
        }
    }
}

#[test]
fn bundle_codec_rejects_truncation_through_file_io() {
    // The .zab file framing (magic + checksum) must also catch torn
    // files before the codec even runs.
    let (pairs, keystore) = keys();
    let mut archive = Archive::in_memory(keystore, QUORUM);
    for certified in certified_chain(&pairs, 1, 3) {
        archive.ingest(&certified).unwrap();
    }
    let bundle = archive.audit_bundle(2).unwrap();
    let dir = std::env::temp_dir().join(format!("zugchain-zab-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bundle.zab");
    bundle.write_to(&path).unwrap();
    assert_eq!(AuditBundle::read_from(&path).unwrap(), bundle);

    let raw = std::fs::read(&path).unwrap();
    for cut in [0, 3, 20, raw.len() / 2, raw.len() - 1] {
        std::fs::write(&path, &raw[..cut]).unwrap();
        assert!(AuditBundle::read_from(&path).is_err(), "cut at {cut}");
    }
}
