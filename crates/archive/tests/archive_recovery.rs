//! Crash-recovery tests for the durable archive: a restarting data
//! center must come back to the longest *verified* segment prefix no
//! matter how the previous process died.

mod common;

use std::fs;
use std::path::PathBuf;

use common::{certified_chain, keys, QUORUM};
use zugchain_archive::{Archive, IngestError, SegmentViolation};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zugchain-archive-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn seg_path(dir: &std::path::Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:010}.zas"))
}

/// Populates a fresh on-disk archive with `n` verified segments.
fn populated(tag: &str, n: usize) -> (PathBuf, zugchain_crypto::Keystore, usize) {
    let (pairs, keystore) = keys();
    let dir = tempdir(tag);
    let (mut archive, report) = Archive::open(&dir, keystore.clone(), QUORUM).unwrap();
    assert_eq!(report.segments_recovered, 0);
    let mut requests = 0;
    for certified in certified_chain(&pairs, n, 3) {
        requests += certified
            .blocks
            .iter()
            .map(|b| b.requests.len())
            .sum::<usize>();
        archive.ingest(&certified).unwrap();
    }
    (dir, keystore, requests)
}

#[test]
fn clean_reopen_is_lossless() {
    let (dir, keystore, requests) = populated("clean", 4);
    let (archive, report) = Archive::open(&dir, keystore, QUORUM).unwrap();
    assert_eq!(report.segments_recovered, 4);
    assert!(report.segments_discarded.is_empty());
    assert!(!report.index_rebuilt, "summary on disk already matched");
    assert_eq!(archive.segment_count(), 4);
    assert_eq!(archive.request_count(), requests);
}

#[test]
fn torn_final_segment_is_truncated() {
    let (dir, keystore, _) = populated("torn", 3);
    // Power loss mid-write of the last segment: cut the file in half.
    let path = seg_path(&dir, 2);
    let raw = fs::read(&path).unwrap();
    fs::write(&path, &raw[..raw.len() / 2]).unwrap();

    let (archive, report) = Archive::open(&dir, keystore.clone(), QUORUM).unwrap();
    assert_eq!(report.segments_recovered, 2);
    assert_eq!(report.segments_discarded, vec![2]);
    assert!(
        report.index_rebuilt,
        "summary still listed the torn segment"
    );
    assert_eq!(archive.segment_count(), 2);
    // The torn file is gone; a second restart is clean and idempotent.
    assert!(!path.exists());
    let (_, again) = Archive::open(&dir, keystore, QUORUM).unwrap();
    assert_eq!(again.segments_recovered, 2);
    assert!(again.segments_discarded.is_empty());
}

#[test]
fn gap_in_segment_sequence_truncates_the_rest() {
    let (dir, keystore, _) = populated("gap", 5);
    fs::remove_file(seg_path(&dir, 2)).unwrap();

    let (archive, report) = Archive::open(&dir, keystore, QUORUM).unwrap();
    assert_eq!(report.segments_recovered, 2);
    // Segments 3 and 4 still verify in isolation but no longer extend a
    // contiguous prefix — juridically they are unanchored, so they go.
    assert_eq!(report.segments_discarded, vec![3, 4]);
    assert_eq!(archive.segment_count(), 2);
    assert!(!seg_path(&dir, 3).exists());
    assert!(!seg_path(&dir, 4).exists());
}

#[test]
fn bitflip_inside_a_segment_is_caught_by_the_checksum() {
    let (dir, keystore, _) = populated("bitflip", 3);
    let path = seg_path(&dir, 1);
    let mut raw = fs::read(&path).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0x01;
    fs::write(&path, raw).unwrap();

    let (archive, report) = Archive::open(&dir, keystore, QUORUM).unwrap();
    assert_eq!(report.segments_recovered, 1);
    assert_eq!(report.segments_discarded, vec![1, 2]);
    assert_eq!(archive.segment_count(), 1);
}

#[test]
fn divergent_index_summary_is_rebuilt_from_segments() {
    let (dir, keystore, requests) = populated("diverge", 3);
    // Corrupt the summary: flip a byte inside its body. Segments carry
    // quorum certificates, the summary does not — segments must win.
    let path = dir.join("index.zai");
    let mut raw = fs::read(&path).unwrap();
    let last = raw.len() - 1;
    raw[last] ^= 0xFF;
    fs::write(&path, raw).unwrap();

    let (archive, report) = Archive::open(&dir, keystore.clone(), QUORUM).unwrap();
    assert_eq!(report.segments_recovered, 3);
    assert!(report.segments_discarded.is_empty());
    assert!(report.index_rebuilt);
    assert_eq!(archive.request_count(), requests);

    // Deleting the summary outright is equally recoverable.
    fs::remove_file(&path).unwrap();
    let (_, report) = Archive::open(&dir, keystore, QUORUM).unwrap();
    assert!(report.index_rebuilt);
    assert!(path.exists(), "summary rewritten on recovery");
}

#[test]
fn recovered_archive_accepts_the_next_segment() {
    let (pairs, keystore) = keys();
    let dir = tempdir("resume");
    let segments = certified_chain(&pairs, 4, 2);
    {
        let (mut archive, _) = Archive::open(&dir, keystore.clone(), QUORUM).unwrap();
        for certified in &segments[..3] {
            archive.ingest(certified).unwrap();
        }
    }
    // Tear the last segment; recovery drops it; re-ingesting segment 2
    // and then 3 must succeed — the export path replays from its cursor.
    let path = seg_path(&dir, 2);
    let raw = fs::read(&path).unwrap();
    fs::write(&path, &raw[..20]).unwrap();

    let (mut archive, report) = Archive::open(&dir, keystore, QUORUM).unwrap();
    assert_eq!(report.segments_recovered, 2);
    archive.ingest(&segments[2]).unwrap();
    archive.ingest(&segments[3]).unwrap();
    assert_eq!(archive.segment_count(), 4);

    // And a stale replay is refused, not silently re-appended.
    let err = archive.ingest(&segments[1]).unwrap_err();
    assert!(matches!(err, IngestError::NotContiguous { .. }));
}

#[test]
fn tampered_certificate_never_survives_recovery() {
    let (pairs, keystore) = keys();
    let dir = tempdir("forge");
    let mut segments = certified_chain(&pairs, 2, 2);
    {
        let (mut archive, _) = Archive::open(&dir, keystore.clone(), QUORUM).unwrap();
        archive.ingest(&segments[0]).unwrap();
        archive.ingest(&segments[1]).unwrap();
    }
    // Forge segment 1 on disk: valid file framing (magic + checksum) but
    // the certificate inside signs a different head. This simulates an
    // attacker with disk access but no replica keys.
    segments[1].proof = segments[0].proof.clone();
    let body = {
        use zugchain_archive::Segment;
        let forged = Segment::build(1, &segments[1]).unwrap();
        zugchain_wire::to_bytes(&forged)
    };
    let mut raw = Vec::new();
    raw.extend_from_slice(b"ZGS1");
    raw.extend_from_slice(zugchain_crypto::Digest::of(&body).as_bytes());
    raw.extend_from_slice(&body);
    fs::write(seg_path(&dir, 1), raw).unwrap();

    let (archive, report) = Archive::open(&dir, keystore.clone(), QUORUM).unwrap();
    assert_eq!(report.segments_recovered, 1);
    assert_eq!(report.segments_discarded, vec![1]);
    assert_eq!(archive.segment_count(), 1);

    // Direct ingestion of the forgery is rejected for the same reason.
    let mut fresh = Archive::in_memory(keystore, QUORUM);
    fresh.ingest(&segments[0]).unwrap();
    let err = fresh.ingest(&segments[1]).unwrap_err();
    assert!(matches!(
        err,
        IngestError::Invalid(SegmentViolation::CertifiesWrongHead { .. })
    ));
}
