//! Fleet-archive integration: per-train shards ingest independently,
//! cross-train contamination is refused at every boundary (ingest,
//! recovery, audit), and fleet-wide queries route through the cross
//! index.

mod common;

use zugchain_archive::{FleetArchive, IngestError, IngestLock};
use zugchain_crypto::Keystore;
use zugchain_wire::TrainId;

use common::{certified_chain_for_train, keys, QUORUM};

#[test]
fn shards_ingest_and_query_independently() {
    let (pairs, keystore) = keys();
    let fleet = FleetArchive::in_memory(QUORUM);
    let trains = [TrainId(1), TrainId(2), TrainId(3)];
    for train in trains {
        fleet.register_train(train, keystore.clone()).unwrap();
        for certified in certified_chain_for_train(train, &pairs, 2, 3) {
            fleet.ingest(&certified).unwrap();
        }
    }
    assert_eq!(fleet.trains(), trains.to_vec());
    assert_eq!(fleet.segment_count(), 6);
    for train in trains {
        assert_eq!(fleet.segment_count_of(train), 2);
        // Identical chains per train → identical shard heads.
        assert_eq!(fleet.head_of(train), fleet.head_of(trains[0]));
    }
    // Fleet-wide time-range query returns every train's records, tagged.
    let all = fleet.requests_in(0, u64::MAX);
    assert_eq!(all.len(), 3 * 12);
    for train in trains {
        assert_eq!(all.iter().filter(|(t, ..)| *t == train).count(), 12);
    }
    let timelines = fleet.timelines_in(0, u64::MAX);
    assert_eq!(timelines.len(), 3);
    // A window covering nothing routes to no shard at all.
    assert!(fleet.trains_in(u64::MAX - 1, u64::MAX).is_empty());
}

#[test]
fn cross_train_segments_and_unknown_trains_are_refused() {
    let (pairs, keystore) = keys();
    let fleet = FleetArchive::in_memory(QUORUM);
    fleet.register_train(TrainId(1), keystore.clone()).unwrap();

    // Unregistered origin train.
    let stray = certified_chain_for_train(TrainId(9), &pairs, 1, 2);
    assert_eq!(
        fleet.ingest(&stray[0]),
        Err(IngestError::UnknownTrain { train: TrainId(9) })
    );

    // Another train's segment relabeled to a registered train fails:
    // train 9's replicas are a different keyset, so its checkpoint
    // certificate never verifies against train 1's shard.
    let (foreign_pairs, _) = Keystore::generate(4, 0x9999);
    let foreign = certified_chain_for_train(TrainId(9), &foreign_pairs, 1, 2);
    let mut relabeled = foreign[0].clone();
    relabeled.train = TrainId(1);
    assert!(matches!(
        fleet.ingest(&relabeled),
        Err(IngestError::Invalid(_))
    ));
    assert_eq!(fleet.segment_count(), 0);

    // Re-registering is refused, as is registering under a shared fleet
    // with a different keyset for the same id.
    let (_, other_keys) = Keystore::generate(4, 0xFEED);
    assert!(fleet.register_train(TrainId(1), other_keys).is_err());
}

#[test]
fn per_train_keysets_isolate_equivocating_neighbors() {
    // Train 2's replicas (a different keystore) certify a chain; train
    // 1's shard must reject it even when the segment claims train 1,
    // because the certificate never verifies against train 1's keys.
    let (pairs_1, keystore_1) = keys();
    let (pairs_2, keystore_2) = Keystore::generate(4, 0xB0B0);
    let fleet = FleetArchive::in_memory(QUORUM);
    fleet.register_train(TrainId(1), keystore_1).unwrap();
    fleet.register_train(TrainId(2), keystore_2).unwrap();

    let mut forged = certified_chain_for_train(TrainId(1), &pairs_2, 1, 2);
    assert!(matches!(
        fleet.ingest(&forged.remove(0)),
        Err(IngestError::Invalid(_))
    ));
    // The honest chains still land.
    for certified in certified_chain_for_train(TrainId(1), &pairs_1, 1, 2) {
        fleet.ingest(&certified).unwrap();
    }
    for certified in certified_chain_for_train(TrainId(2), &pairs_2, 1, 2) {
        fleet.ingest(&certified).unwrap();
    }
    assert_eq!(fleet.segment_count_of(TrainId(1)), 1);
    assert_eq!(fleet.segment_count_of(TrainId(2)), 1);
}

#[test]
fn durable_shards_recover_independently() {
    let (pairs, keystore) = keys();
    let dir = std::env::temp_dir().join(format!("zugchain-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    {
        let fleet = FleetArchive::open(&dir, QUORUM).unwrap();
        for train in [TrainId(1), TrainId(2)] {
            fleet.register_train(train, keystore.clone()).unwrap();
            for certified in certified_chain_for_train(train, &pairs, 2, 3) {
                fleet.ingest(&certified).unwrap();
            }
        }
    }

    // Corrupt train 1's second segment file; train 2's shard and a
    // cross-planted foreign segment file must not survive either.
    let shard_1 = dir.join("trains").join("1");
    let seg = shard_1.join("seg-0000000001.zas");
    let mut raw = std::fs::read(&seg).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0xFF;
    std::fs::write(&seg, &raw).unwrap();
    // Plant train 2's first segment into train 1's shard under the next
    // sequence slot — recovery must discard it as a wrong-train file.
    std::fs::copy(
        dir.join("trains").join("2").join("seg-0000000000.zas"),
        shard_1.join("seg-0000000002.zas"),
    )
    .unwrap();

    let fleet = FleetArchive::open(&dir, QUORUM).unwrap();
    let report_1 = fleet.register_train(TrainId(1), keystore.clone()).unwrap();
    let report_2 = fleet.register_train(TrainId(2), keystore.clone()).unwrap();
    assert_eq!(report_1.segments_recovered, 1);
    assert_eq!(report_1.segments_discarded, vec![1, 2]);
    assert_eq!(report_2.segments_recovered, 2);
    assert!(report_2.segments_discarded.is_empty());
    assert_eq!(fleet.segment_count_of(TrainId(1)), 1);
    assert_eq!(fleet.segment_count_of(TrainId(2)), 2);
    // The cross index reflects only recovered records.
    assert_eq!(fleet.request_count(), 6 + 12);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn global_lock_mode_matches_per_shard_results() {
    let (pairs, keystore) = keys();
    let per_shard = FleetArchive::in_memory(QUORUM);
    let global = FleetArchive::in_memory(QUORUM).with_lock_mode(IngestLock::Global);
    assert_eq!(global.lock_mode(), IngestLock::Global);
    for fleet in [&per_shard, &global] {
        for train in [TrainId(1), TrainId(2)] {
            fleet.register_train(train, keystore.clone()).unwrap();
        }
        std::thread::scope(|scope| {
            for train in [TrainId(1), TrainId(2)] {
                let fleet = fleet.clone();
                let pairs = &pairs;
                scope.spawn(move || {
                    for certified in certified_chain_for_train(train, pairs, 3, 2) {
                        fleet.ingest(&certified).unwrap();
                    }
                });
            }
        });
    }
    assert_eq!(per_shard.segment_count(), global.segment_count());
    assert_eq!(per_shard.request_count(), global.request_count());
    assert_eq!(per_shard.head_of(TrainId(1)), global.head_of(TrainId(1)));
}

#[test]
fn fleet_audit_bundles_verify_per_train_only() {
    let (pairs, keystore) = keys();
    let (_, foreign_keys) = Keystore::generate(4, 0xD00D);
    let fleet = FleetArchive::in_memory(QUORUM);
    fleet.register_train(TrainId(7), keystore.clone()).unwrap();
    for certified in certified_chain_for_train(TrainId(7), &pairs, 1, 3) {
        fleet.ingest(&certified).unwrap();
    }
    let bundle = fleet.audit_bundle(TrainId(7), 2).expect("archived height");
    assert_eq!(bundle.train, TrainId(7));
    assert!(bundle.verify(&keystore, QUORUM).is_ok());
    // Another train's keyset never vouches for this bundle.
    assert!(bundle.verify(&foreign_keys, QUORUM).is_err());
    assert!(fleet.audit_bundle(TrainId(8), 2).is_none());
}
