//! Query-surface tests: indexed lookups, event-kind filters, timeline
//! reconstruction, audit bundles, and the concurrent [`QueryEngine`].

mod common;

use zugchain_archive::{Archive, AuditError, EventKind, QueryEngine};
use zugchain_blockchain::{Block, BlockBuilder, LoggedRequest};
use zugchain_export::CertifiedSegment;
use zugchain_signals::analysis::Finding;
use zugchain_signals::SignalValue;

use common::{certify, keys, signal_payload, QUORUM};

/// One certified segment with a scripted emergency-stop sequence: speed
/// ramp, emergency brake at t = 500 ms, doors at t = 700 ms, plus one
/// undecodable foreign payload.
fn scripted_segment(pairs: &[zugchain_crypto::KeyPair]) -> CertifiedSegment {
    let script: Vec<(u64, Vec<u8>)> = vec![
        (
            100,
            signal_payload(1, 100, "v_actual", SignalValue::U16(160)),
        ),
        (
            200,
            signal_payload(2, 200, "v_actual", SignalValue::U16(158)),
        ),
        (
            300,
            signal_payload(3, 300, "atp_intervention", SignalValue::Bool(true)),
        ),
        (
            400,
            signal_payload(4, 400, "v_actual", SignalValue::U16(140)),
        ),
        (
            500,
            signal_payload(5, 500, "emergency_brake", SignalValue::Bool(true)),
        ),
        (
            600,
            signal_payload(6, 600, "v_actual", SignalValue::U16(60)),
        ),
        (
            700,
            signal_payload(7, 700, "doors_released", SignalValue::Bool(true)),
        ),
        (800, b"\xde\xad\xbe\xef not a signals request".to_vec()),
    ];
    let mut builder = BlockBuilder::new(2);
    let mut blocks = Vec::new();
    for (index, (time_ms, payload)) in script.into_iter().enumerate() {
        let sn = index as u64 + 1;
        if let Some(block) = builder.push(
            LoggedRequest {
                sn,
                origin: 0,
                payload,
            },
            time_ms,
        ) {
            blocks.push(block);
        }
    }
    let base = Block::genesis();
    let head = blocks.last().unwrap().clone();
    CertifiedSegment {
        train: zugchain_wire::TrainId::DEFAULT,
        base_height: base.height(),
        base_hash: base.hash(),
        blocks,
        proof: certify(pairs, 8, &head),
    }
}

fn scripted_archive() -> Archive {
    let (pairs, keystore) = keys();
    let mut archive = Archive::in_memory(keystore, QUORUM);
    archive.ingest(&scripted_segment(&pairs)).unwrap();
    archive
}

#[test]
fn point_lookup_by_sequence_number() {
    let archive = scripted_archive();
    let block = archive.block_by_sn(5).expect("sn 5 archived");
    assert!(block.requests.iter().any(|r| r.sn == 5));
    assert!(archive.block_by_sn(99).is_none());
}

#[test]
fn kind_filtered_time_range_hits_only_matching_requests() {
    let archive = scripted_archive();
    let brakes = archive.requests_of_kinds(0, 10_000, &[EventKind::Brake]);
    assert_eq!(brakes.len(), 1);
    assert_eq!(brakes[0].2.time_ms, 500);
    assert_eq!(brakes[0].2.events[0].name, "emergency_brake");

    let doors_and_atp = archive.requests_of_kinds(0, 10_000, &[EventKind::Door, EventKind::Atp]);
    let times: Vec<u64> = doors_and_atp.iter().map(|(_, _, r)| r.time_ms).collect();
    assert_eq!(times, vec![300, 700]);

    // Time bounds are inclusive and actually bound.
    assert!(archive
        .requests_of_kinds(501, 10_000, &[EventKind::Brake])
        .is_empty());
    assert_eq!(
        archive
            .requests_of_kinds(500, 500, &[EventKind::Brake])
            .len(),
        1
    );

    // The undecodable payload is reachable under Other, by block time.
    let other = archive.requests_of_kinds(0, 10_000, &[EventKind::Other]);
    assert!(
        other.is_empty(),
        "undecodable payloads index but do not decode"
    );
}

#[test]
fn timeline_reconstruction_reports_the_emergency_stop() {
    let archive = scripted_archive();
    let timeline = archive.timeline(0, 10_000);
    assert!(
        timeline
            .findings()
            .iter()
            .any(|f| matches!(f, Finding::EmergencyBraking { time_ms: 500, .. })),
        "expected an emergency-braking finding at t=500, got {:?}",
        timeline.findings()
    );
}

#[test]
fn audit_bundles_verify_for_every_archived_block() {
    let (pairs, keystore) = keys();
    let mut archive = Archive::in_memory(keystore.clone(), QUORUM);
    archive.ingest(&scripted_segment(&pairs)).unwrap();
    let heights: Vec<u64> = archive.blocks().map(|b| b.height()).collect();
    assert!(heights.len() >= 3);
    for height in heights {
        let bundle = archive.audit_bundle(height).unwrap();
        let block = bundle.verify(&keystore, QUORUM).unwrap();
        assert_eq!(block.height(), height);
    }
    assert!(archive.audit_bundle(999).is_none());
}

#[test]
fn audit_bundle_fails_against_wrong_keys_or_raised_quorum() {
    let (pairs, keystore) = keys();
    let mut archive = Archive::in_memory(keystore.clone(), QUORUM);
    archive.ingest(&scripted_segment(&pairs)).unwrap();
    let bundle = archive.audit_bundle(1).unwrap();

    let (_, strangers) = zugchain_crypto::Keystore::generate(4, 0xBAD5EED);
    assert_eq!(
        bundle.verify(&strangers, QUORUM).unwrap_err(),
        AuditError::BadCertificate
    );
    // All 4 replicas signed; demanding 5 must fail.
    assert_eq!(
        bundle.verify(&keystore, 5).unwrap_err(),
        AuditError::BadCertificate
    );
}

#[test]
fn query_engine_serves_readers_while_a_writer_ingests() {
    let (pairs, keystore) = keys();
    let engine = QueryEngine::new(Archive::in_memory(keystore, QUORUM));
    let segments = common::certified_chain(&pairs, 8, 2);

    let writer = {
        let engine = engine.clone();
        std::thread::spawn(move || {
            for certified in &segments {
                engine.ingest(certified).unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let engine = engine.clone();
            std::thread::spawn(move || {
                // Concurrent queries must always see a consistent prefix:
                // every visible speed reading decodes and stays ordered.
                let mut max_seen = 0;
                for _ in 0..200 {
                    let speeds = engine.requests_of_kinds(0, u64::MAX, &[EventKind::Speed]);
                    assert!(speeds.len() >= max_seen, "archive shrank mid-query");
                    max_seen = speeds.len();
                    let mut last = 0;
                    for (_, _, request) in &speeds {
                        assert!(request.time_ms >= last, "time order violated");
                        last = request.time_ms;
                    }
                }
                max_seen
            })
        })
        .collect();
    writer.join().unwrap();
    for reader in readers {
        reader.join().unwrap();
    }
    assert_eq!(engine.segment_count(), 8);
    assert!(engine.head().is_some());
}
