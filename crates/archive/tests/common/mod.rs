//! Shared fixture: build genuinely-signed certified segments, so archive
//! tests exercise the same verification path as real export traffic.

use zugchain_blockchain::{Block, BlockBuilder, LoggedRequest};
use zugchain_crypto::{KeyPair, Keystore};
use zugchain_export::CertifiedSegment;
use zugchain_mvb::PortAddress;
use zugchain_pbft::{Checkpoint, CheckpointProof, Message, NodeId};
use zugchain_signals::{Request, SignalValue, TrainEvent};
use zugchain_wire::TrainId;

/// 4 replicas, f = 1 → quorum 3.
pub const QUORUM: usize = 3;

pub fn keys() -> (Vec<KeyPair>, Keystore) {
    Keystore::generate(4, 0xA0D1_7001)
}

/// A stable-checkpoint certificate all `pairs` sign — exactly the bytes
/// replicas sign when broadcasting `Message::Checkpoint`.
pub fn certify(pairs: &[KeyPair], sn: u64, head: &Block) -> CheckpointProof {
    let checkpoint = Checkpoint {
        sn,
        state_digest: head.hash(),
    };
    let message = zugchain_wire::to_bytes(&Message::Checkpoint(checkpoint));
    let signatures = pairs
        .iter()
        .enumerate()
        .map(|(id, pair)| (NodeId(id as u64), pair.sign(&message)))
        .collect();
    CheckpointProof {
        checkpoint,
        signatures,
    }
}

/// Canonical payload bytes for one decoded signal event.
pub fn signal_payload(cycle: u64, time_ms: u64, name: &str, value: SignalValue) -> Vec<u8> {
    zugchain_wire::to_bytes(&Request {
        cycle,
        time_ms,
        events: vec![TrainEvent {
            name: name.to_string(),
            port: PortAddress(0x42),
            cycle,
            time_ms,
            value,
        }],
    })
}

/// Builds `n_segments` contiguous certified segments of
/// `blocks_per_segment` blocks each (2 requests per block), chained off
/// genesis, each certified by every key in `pairs`. Request `sn` doubles
/// as the driver for a 100 ms-per-request synthetic clock.
#[allow(dead_code)] // not every test binary uses the default-train form
pub fn certified_chain(
    pairs: &[KeyPair],
    n_segments: usize,
    blocks_per_segment: usize,
) -> Vec<CertifiedSegment> {
    certified_chain_for_train(TrainId::DEFAULT, pairs, n_segments, blocks_per_segment)
}

/// As [`certified_chain`], tagged with an origin train.
pub fn certified_chain_for_train(
    train: TrainId,
    pairs: &[KeyPair],
    n_segments: usize,
    blocks_per_segment: usize,
) -> Vec<CertifiedSegment> {
    let mut builder = BlockBuilder::new(2);
    let mut base = Block::genesis();
    let mut segments = Vec::new();
    let mut sn = 0u64;
    for _ in 0..n_segments {
        let mut blocks = Vec::new();
        while blocks.len() < blocks_per_segment {
            sn += 1;
            let time_ms = sn * 100;
            let payload = signal_payload(sn, time_ms, "v_actual", SignalValue::U16(sn as u16));
            if let Some(block) = builder.push(
                LoggedRequest {
                    sn,
                    origin: sn % 4,
                    payload,
                },
                time_ms,
            ) {
                blocks.push(block);
            }
        }
        let head = blocks.last().expect("nonempty").clone();
        segments.push(CertifiedSegment {
            train,
            base_height: base.height(),
            base_hash: base.hash(),
            blocks,
            proof: certify(pairs, sn, &head),
        });
        base = head;
    }
    segments
}
