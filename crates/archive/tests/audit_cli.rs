//! Exercises the real `zugchain-audit` binary end to end, including the
//! stdin (`-`) path the serving layer's bundle download pipes into:
//! `curl .../bundle/<sn> | zugchain-audit --keys keys.txt --quorum 3 -`.
//! The bytes on stdin are the same `.zab` framing as bundle files, so a
//! fetched exhibit verifies with nothing but the replica public keys.

mod common;

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use zugchain_archive::{keyfile, Archive};
use zugchain_wire::TrainId;

use common::{certified_chain_for_train, keys, QUORUM};

const TRAIN: TrainId = TrainId(3);

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zugchain-audit-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds a 3-segment archive for train 3 and returns the bundle bytes
/// for one block plus a written replica key file.
fn fixture(tag: &str) -> (PathBuf, Vec<u8>, PathBuf) {
    let (pairs, keystore) = keys();
    let mut archive = Archive::in_memory_for_train(TRAIN, keystore.clone(), QUORUM);
    for segment in &certified_chain_for_train(TRAIN, &pairs, 3, 3) {
        archive.ingest(segment).unwrap();
    }
    let bundle = archive.audit_bundle(5).expect("height 5 exists");

    let dir = tempdir(tag);
    let bundle_path = dir.join("height-5.zab");
    bundle.write_to(&bundle_path).unwrap();
    let keys_path = dir.join("replica-keys.txt");
    keyfile::write_keys_for_train(&keys_path, TRAIN, &keystore).unwrap();
    (bundle_path, bundle.to_zab_bytes(), keys_path)
}

fn audit() -> Command {
    Command::new(env!("CARGO_BIN_EXE_zugchain-audit"))
}

#[test]
fn verifies_a_bundle_file_and_the_same_bytes_on_stdin() {
    let (bundle_path, zab_bytes, keys_path) = fixture("roundtrip");

    // File path form.
    let from_file = audit()
        .args(["--keys"])
        .arg(&keys_path)
        .args(["--quorum", "3", "--train", "3"])
        .arg(&bundle_path)
        .output()
        .unwrap();
    assert!(
        from_file.status.success(),
        "file verify failed: {}",
        String::from_utf8_lossy(&from_file.stderr),
    );

    // The exact bytes a `.zab` file (or an HTTP bundle download) holds,
    // piped through stdin via the `-` pseudo-path.
    let mut child = audit()
        .args(["--keys"])
        .arg(&keys_path)
        .args(["--quorum", "3", "--train", "3", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(&zab_bytes).unwrap();
    let from_stdin = child.wait_with_output().unwrap();
    assert!(
        from_stdin.status.success(),
        "stdin verify failed: {}",
        String::from_utf8_lossy(&from_stdin.stderr),
    );
    let stdout = String::from_utf8_lossy(&from_stdin.stdout).to_string();
    assert!(stdout.contains("OK   -"), "stdout: {stdout}");

    // The file bytes on disk are byte-for-byte what stdin consumed.
    assert_eq!(std::fs::read(&bundle_path).unwrap(), zab_bytes);
}

#[test]
fn tampered_stdin_bytes_are_rejected() {
    let (_, mut zab_bytes, keys_path) = fixture("tamper");
    let last = zab_bytes.len() - 1;
    zab_bytes[last] ^= 1;

    let mut child = audit()
        .args(["--keys"])
        .arg(&keys_path)
        .args(["--quorum", "3", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(&zab_bytes).unwrap();
    let output = child.wait_with_output().unwrap();
    assert!(
        !output.status.success(),
        "a tampered bundle must fail the audit",
    );
}

#[test]
fn wrong_train_scope_is_rejected() {
    let (bundle_path, _, keys_path) = fixture("scope");
    let output = audit()
        .args(["--keys"])
        .arg(&keys_path)
        .args(["--quorum", "3", "--train", "9"])
        .arg(&bundle_path)
        .output()
        .unwrap();
    assert!(
        !output.status.success(),
        "train 3's bundle must not pass an audit scoped to train 9",
    );
}
