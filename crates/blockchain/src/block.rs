use std::fmt;

use zugchain_crypto::Digest;
use zugchain_wire::{decode_seq, encode_seq, Decode, Encode, Reader, WireError, Writer};

/// One totally ordered request as logged by the ZugChain layer.
///
/// Carries the BFT sequence number and the id of the node that received
/// the request from the bus (paper Alg. 1: `LOG(req, id, sn)` — "append
/// to log, include id of origin node").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedRequest {
    /// BFT sequence number assigned by consensus.
    pub sn: u64,
    /// Id of the node that proposed/received this request.
    pub origin: u64,
    /// The request payload (a consolidated bus cycle, canonically encoded).
    pub payload: Vec<u8>,
}

impl LoggedRequest {
    /// Digest of the payload only — the identity used for duplicate
    /// filtering (content-based, independent of `sn`/`origin`).
    pub fn payload_digest(&self) -> Digest {
        Digest::of(&self.payload)
    }
}

impl Encode for LoggedRequest {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.sn);
        w.write_u64(self.origin);
        w.write_bytes(&self.payload);
    }
}

impl Decode for LoggedRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LoggedRequest {
            sn: r.read_u64()?,
            origin: r.read_u64()?,
            payload: r.read_bytes()?.to_vec(),
        })
    }
}

/// The header of a block: everything needed to verify chain linkage
/// without the request payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Height in the chain; the genesis block has height 0.
    pub height: u64,
    /// Hash of the previous block ([`Digest::ZERO`] for genesis).
    pub prev_hash: Digest,
    /// Digest over the block's logged requests.
    pub payload_hash: Digest,
    /// First BFT sequence number bundled in this block (0 for genesis).
    pub first_sn: u64,
    /// Last BFT sequence number bundled in this block (0 for genesis).
    pub last_sn: u64,
    /// Bus time at block creation in milliseconds.
    pub time_ms: u64,
}

impl BlockHeader {
    /// The block hash: digest of the canonically encoded header.
    ///
    /// Because the header commits to `payload_hash`, the hash covers the
    /// full block content.
    pub fn hash(&self) -> Digest {
        Digest::of_encoded(self)
    }
}

impl Encode for BlockHeader {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.height);
        self.prev_hash.encode(w);
        self.payload_hash.encode(w);
        w.write_u64(self.first_sn);
        w.write_u64(self.last_sn);
        w.write_u64(self.time_ms);
    }
}

impl Decode for BlockHeader {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(BlockHeader {
            height: r.read_u64()?,
            prev_hash: Digest::decode(r)?,
            payload_hash: Digest::decode(r)?,
            first_sn: r.read_u64()?,
            last_sn: r.read_u64()?,
            time_ms: r.read_u64()?,
        })
    }
}

/// A block: header plus the ordered requests it bundles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The block header.
    pub header: BlockHeader,
    /// Requests in sequence-number order.
    pub requests: Vec<LoggedRequest>,
}

impl Block {
    /// The well-known genesis block that every ZugChain deployment starts
    /// from.
    pub fn genesis() -> Self {
        Block {
            header: BlockHeader {
                height: 0,
                prev_hash: Digest::ZERO,
                payload_hash: Self::payload_hash_of(&[]),
                first_sn: 0,
                last_sn: 0,
                time_ms: 0,
            },
            requests: Vec::new(),
        }
    }

    /// Computes the payload digest over a request list.
    pub fn payload_hash_of(requests: &[LoggedRequest]) -> Digest {
        let mut w = Writer::new();
        encode_seq(requests, &mut w);
        Digest::of(w.as_bytes())
    }

    /// Builds the successor of the block with hash `prev_hash` at
    /// `height`, bundling `requests`.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty or not sorted by `sn` — block
    /// creation is deterministic on ordered input by construction.
    pub fn next(
        height: u64,
        prev_hash: Digest,
        requests: Vec<LoggedRequest>,
        time_ms: u64,
    ) -> Self {
        assert!(
            !requests.is_empty(),
            "a non-genesis block bundles at least one request"
        );
        assert!(
            requests.windows(2).all(|w| w[0].sn < w[1].sn),
            "requests must be strictly ordered by sequence number"
        );
        let header = BlockHeader {
            height,
            prev_hash,
            payload_hash: Self::payload_hash_of(&requests),
            first_sn: requests.first().expect("nonempty").sn,
            last_sn: requests.last().expect("nonempty").sn,
            time_ms,
        };
        Block { header, requests }
    }

    /// The block hash (see [`BlockHeader::hash`]).
    pub fn hash(&self) -> Digest {
        self.header.hash()
    }

    /// Height accessor, for symmetry with `hash`.
    pub fn height(&self) -> u64 {
        self.header.height
    }

    /// Checks that the header's payload hash matches the actual requests.
    pub fn payload_is_consistent(&self) -> bool {
        self.header.payload_hash == Self::payload_hash_of(&self.requests)
    }

    /// Encoded size in bytes — the unit of memory and bandwidth accounting.
    pub fn encoded_size(&self) -> usize {
        self.encoded_len()
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block #{} ({} requests, sn {}..={}, hash {})",
            self.header.height,
            self.requests.len(),
            self.header.first_sn,
            self.header.last_sn,
            self.hash().short()
        )
    }
}

impl Encode for Block {
    fn encode(&self, w: &mut Writer) {
        self.header.encode(w);
        encode_seq(&self.requests, w);
    }
}

impl Decode for Block {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Block {
            header: BlockHeader::decode(r)?,
            requests: decode_seq(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests(range: std::ops::RangeInclusive<u64>) -> Vec<LoggedRequest> {
        range
            .map(|sn| LoggedRequest {
                sn,
                origin: 0,
                payload: vec![sn as u8; 8],
            })
            .collect()
    }

    #[test]
    fn genesis_is_stable() {
        assert_eq!(Block::genesis().hash(), Block::genesis().hash());
        assert_eq!(Block::genesis().header.prev_hash, Digest::ZERO);
        assert_eq!(Block::genesis().height(), 0);
    }

    #[test]
    fn block_hash_commits_to_payload() {
        let genesis = Block::genesis();
        let a = Block::next(1, genesis.hash(), requests(1..=3), 100);
        let mut tampered_requests = requests(1..=3);
        tampered_requests[1].payload = vec![0xFF];
        let b = Block::next(1, genesis.hash(), tampered_requests, 100);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn block_hash_commits_to_prev() {
        let a = Block::next(1, Digest::of(b"x"), requests(1..=1), 0);
        let b = Block::next(1, Digest::of(b"y"), requests(1..=1), 0);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn tampering_breaks_payload_consistency() {
        let mut block = Block::next(1, Digest::ZERO, requests(1..=3), 0);
        assert!(block.payload_is_consistent());
        block.requests[0].payload = vec![9, 9, 9];
        assert!(!block.payload_is_consistent());
    }

    #[test]
    #[should_panic(expected = "strictly ordered")]
    fn unordered_requests_panic() {
        let mut reqs = requests(1..=2);
        reqs.reverse();
        let _ = Block::next(1, Digest::ZERO, reqs, 0);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn empty_block_panics() {
        let _ = Block::next(1, Digest::ZERO, vec![], 0);
    }

    #[test]
    fn block_wire_round_trip() {
        let block = Block::next(4, Digest::of(b"prev"), requests(10..=19), 640);
        let back: Block = zugchain_wire::from_bytes(&zugchain_wire::to_bytes(&block)).unwrap();
        assert_eq!(back, block);
        assert_eq!(back.hash(), block.hash());
    }

    #[test]
    fn sequence_range_is_recorded() {
        let block = Block::next(2, Digest::ZERO, requests(5..=9), 0);
        assert_eq!(block.header.first_sn, 5);
        assert_eq!(block.header.last_sn, 9);
    }
}
