use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use zugchain_crypto::Digest;

use crate::{verify_chain, Block, ChainViolation};

/// Persists blocks to disk, one file per block, fsynced on write.
///
/// The JRU requirement list demands that data survive power loss; the
/// paper persists the blockchain on disk and reports ~5 ms per block write
/// on the testbed. Files are named by height (`block-0000000042.zc`) and
/// verified against their recorded digest on load, so torn writes are
/// detected rather than silently accepted.
///
/// # Examples
///
/// ```no_run
/// use zugchain_blockchain::{Block, DiskStore};
///
/// # fn main() -> std::io::Result<()> {
/// let store = DiskStore::open("/var/lib/zugchain")?;
/// store.write_block(&Block::genesis())?;
/// let loaded = store.read_block(0)?;
/// assert_eq!(loaded, Block::genesis());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// Magic bytes prefixed to every block file.
    const MAGIC: &'static [u8; 4] = b"ZGC1";

    /// Opens (creating if necessary) a block directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory blocks are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, height: u64) -> PathBuf {
        self.dir.join(format!("block-{height:010}.zc"))
    }

    /// Writes `block` durably: encode, prefix with magic and digest,
    /// write to a temp file, fsync, then rename into place.
    ///
    /// # Errors
    ///
    /// Any underlying I/O error.
    pub fn write_block(&self, block: &Block) -> io::Result<()> {
        let encoded = zugchain_wire::to_bytes(block);
        let digest = Digest::of(&encoded);
        let final_path = self.path_for(block.height());
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp_path)?;
            file.write_all(Self::MAGIC)?;
            file.write_all(digest.as_bytes())?;
            file.write_all(&encoded)?;
            file.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        Ok(())
    }

    /// Reads and verifies the block at `height`.
    ///
    /// # Errors
    ///
    /// * [`io::ErrorKind::NotFound`] if no such block is stored;
    /// * [`io::ErrorKind::InvalidData`] if the file is corrupt (bad magic,
    ///   digest mismatch, or undecodable).
    pub fn read_block(&self, height: u64) -> io::Result<Block> {
        let raw = fs::read(self.path_for(height))?;
        Self::decode_file(&raw)
    }

    fn decode_file(raw: &[u8]) -> io::Result<Block> {
        let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        if raw.len() < 36 || &raw[..4] != Self::MAGIC {
            return Err(invalid("bad magic"));
        }
        let stored_digest =
            Digest::from_bytes(raw[4..36].try_into().expect("length checked above"));
        let body = &raw[36..];
        if Digest::of(body) != stored_digest {
            return Err(invalid("digest mismatch (torn or corrupted write)"));
        }
        zugchain_wire::from_bytes(body).map_err(|e| invalid(&format!("undecodable block: {e}")))
    }

    /// Persists an opaque checkpoint-proof blob alongside the blocks
    /// (`ckpt-<sn>.zcp`), fsynced like blocks. The blockchain crate does
    /// not interpret the bytes — the consensus layer owns the format.
    ///
    /// # Errors
    ///
    /// Any underlying I/O error.
    pub fn write_proof(&self, sn: u64, encoded: &[u8]) -> io::Result<()> {
        let final_path = self.dir.join(format!("ckpt-{sn:010}.zcp"));
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp_path)?;
            file.write_all(Self::MAGIC)?;
            file.write_all(Digest::of(encoded).as_bytes())?;
            file.write_all(encoded)?;
            file.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        Ok(())
    }

    /// Loads all stored checkpoint-proof blobs, ascending by sequence
    /// number, verifying their digests.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] for corrupt files.
    pub fn load_proofs(&self) -> io::Result<Vec<(u64, Vec<u8>)>> {
        let mut sns = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(number) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".zcp"))
            {
                if let Ok(sn) = number.parse::<u64>() {
                    sns.push(sn);
                }
            }
        }
        sns.sort_unstable();
        let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let mut proofs = Vec::new();
        for sn in sns {
            let raw = fs::read(self.dir.join(format!("ckpt-{sn:010}.zcp")))?;
            if raw.len() < 36 || &raw[..4] != Self::MAGIC {
                return Err(invalid("bad proof magic"));
            }
            let stored = Digest::from_bytes(raw[4..36].try_into().expect("length checked"));
            let body = &raw[36..];
            if Digest::of(body) != stored {
                return Err(invalid("proof digest mismatch"));
            }
            proofs.push((sn, body.to_vec()));
        }
        Ok(proofs)
    }

    /// Deletes the stored block at `height`, if present.
    ///
    /// # Errors
    ///
    /// Any I/O error other than the file being absent.
    pub fn remove_block(&self, height: u64) -> io::Result<()> {
        match fs::remove_file(self.path_for(height)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Heights of all stored blocks, ascending.
    ///
    /// # Errors
    ///
    /// Directory read failures.
    pub fn heights(&self) -> io::Result<Vec<u64>> {
        let mut heights = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(number) = name
                .strip_prefix("block-")
                .and_then(|s| s.strip_suffix(".zc"))
            {
                if let Ok(height) = number.parse() {
                    heights.push(height);
                }
            }
        }
        heights.sort_unstable();
        Ok(heights)
    }

    /// Loads every stored block and verifies the chain linkage.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors, or [`io::ErrorKind::InvalidData`] wrapping
    /// a [`ChainViolation`] if the stored blocks do not form a valid chain.
    pub fn load_chain(&self) -> io::Result<Vec<Block>> {
        let mut blocks = Vec::new();
        for height in self.heights()? {
            blocks.push(self.read_block(height)?);
        }
        if !blocks.is_empty() {
            verify_chain(&blocks, None).map_err(|violation: ChainViolation| {
                io::Error::new(io::ErrorKind::InvalidData, violation.to_string())
            })?;
        }
        Ok(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockBuilder, LoggedRequest};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("zugchain-disk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_chain(n: u64) -> Vec<Block> {
        let mut builder = BlockBuilder::new(2);
        let mut blocks = vec![Block::genesis()];
        for sn in 1..=n * 2 {
            if let Some(block) = builder.push(
                LoggedRequest {
                    sn,
                    origin: 1,
                    payload: vec![0xAB; 64],
                },
                sn * 64,
            ) {
                blocks.push(block);
            }
        }
        blocks
    }

    #[test]
    fn write_read_round_trip() {
        let store = DiskStore::open(tempdir("rt")).unwrap();
        for block in sample_chain(3) {
            store.write_block(&block).unwrap();
        }
        let loaded = store.read_block(2).unwrap();
        assert_eq!(loaded.height(), 2);
        assert!(loaded.payload_is_consistent());
    }

    #[test]
    fn load_chain_verifies_linkage() {
        let store = DiskStore::open(tempdir("chain")).unwrap();
        let chain = sample_chain(4);
        for block in &chain {
            store.write_block(block).unwrap();
        }
        let loaded = store.load_chain().unwrap();
        assert_eq!(loaded, chain);
    }

    #[test]
    fn corruption_is_detected() {
        let store = DiskStore::open(tempdir("corrupt")).unwrap();
        let chain = sample_chain(1);
        store.write_block(&chain[1]).unwrap();
        // Flip a byte in the stored payload region.
        let path = store.path_for(1);
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        fs::write(&path, raw).unwrap();
        let err = store.read_block(1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn missing_block_is_not_found() {
        let store = DiskStore::open(tempdir("missing")).unwrap();
        assert_eq!(
            store.read_block(7).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
    }

    #[test]
    fn remove_is_idempotent() {
        let store = DiskStore::open(tempdir("remove")).unwrap();
        let chain = sample_chain(1);
        store.write_block(&chain[1]).unwrap();
        store.remove_block(1).unwrap();
        store.remove_block(1).unwrap();
        assert!(store.heights().unwrap().is_empty());
    }

    #[test]
    fn heights_are_sorted() {
        let store = DiskStore::open(tempdir("heights")).unwrap();
        let chain = sample_chain(5);
        // Write out of order.
        for index in [3usize, 1, 4, 2, 0, 5] {
            store.write_block(&chain[index]).unwrap();
        }
        assert_eq!(store.heights().unwrap(), vec![0, 1, 2, 3, 4, 5]);
    }
}
