use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use zugchain_crypto::Digest;

use crate::{verify_chain, Block, ChainViolation};

/// Persists blocks to disk, one file per block, fsynced on write.
///
/// The JRU requirement list demands that data survive power loss; the
/// paper persists the blockchain on disk and reports ~5 ms per block write
/// on the testbed. Files are named by height (`block-0000000042.zc`) and
/// verified against their recorded digest on load, so torn writes are
/// detected rather than silently accepted.
///
/// # Examples
///
/// ```no_run
/// use zugchain_blockchain::{Block, DiskStore};
///
/// # fn main() -> std::io::Result<()> {
/// let store = DiskStore::open("/var/lib/zugchain")?;
/// store.write_block(&Block::genesis())?;
/// let loaded = store.read_block(0)?;
/// assert_eq!(loaded, Block::genesis());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiskStore {
    dir: PathBuf,
}

/// What [`DiskStore::recover_chain`] salvaged from a block directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredChain {
    /// The longest valid chain prefix, ascending, starting just above
    /// the recovery anchor (genesis or the pruned base).
    pub blocks: Vec<Block>,
    /// Heights whose files were damaged, unlinkable, or stale and were
    /// deleted from disk.
    pub discarded: Vec<u64>,
}

impl DiskStore {
    /// Magic bytes prefixed to every block file.
    const MAGIC: &'static [u8; 4] = b"ZGC1";

    /// Opens (creating if necessary) a block directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory blocks are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, height: u64) -> PathBuf {
        self.dir.join(format!("block-{height:010}.zc"))
    }

    /// Writes `block` durably: encode, prefix with magic and digest,
    /// write to a temp file, fsync, then rename into place.
    ///
    /// # Errors
    ///
    /// Any underlying I/O error.
    pub fn write_block(&self, block: &Block) -> io::Result<()> {
        let encoded = zugchain_wire::to_bytes(block);
        let digest = Digest::of(&encoded);
        let final_path = self.path_for(block.height());
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp_path)?;
            file.write_all(Self::MAGIC)?;
            file.write_all(digest.as_bytes())?;
            file.write_all(&encoded)?;
            file.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        Ok(())
    }

    /// Reads and verifies the block at `height`.
    ///
    /// # Errors
    ///
    /// * [`io::ErrorKind::NotFound`] if no such block is stored;
    /// * [`io::ErrorKind::InvalidData`] if the file is corrupt (bad magic,
    ///   digest mismatch, or undecodable).
    pub fn read_block(&self, height: u64) -> io::Result<Block> {
        let raw = fs::read(self.path_for(height))?;
        Self::decode_file(&raw)
    }

    fn decode_file(raw: &[u8]) -> io::Result<Block> {
        let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        if raw.len() < 36 || &raw[..4] != Self::MAGIC {
            return Err(invalid("bad magic"));
        }
        let stored_digest =
            Digest::from_bytes(raw[4..36].try_into().expect("length checked above"));
        let body = &raw[36..];
        if Digest::of(body) != stored_digest {
            return Err(invalid("digest mismatch (torn or corrupted write)"));
        }
        zugchain_wire::from_bytes(body).map_err(|e| invalid(&format!("undecodable block: {e}")))
    }

    /// Persists an opaque checkpoint-proof blob alongside the blocks
    /// (`ckpt-<sn>.zcp`), fsynced like blocks. The blockchain crate does
    /// not interpret the bytes — the consensus layer owns the format.
    ///
    /// # Errors
    ///
    /// Any underlying I/O error.
    pub fn write_proof(&self, sn: u64, encoded: &[u8]) -> io::Result<()> {
        let final_path = self.dir.join(format!("ckpt-{sn:010}.zcp"));
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp_path)?;
            file.write_all(Self::MAGIC)?;
            file.write_all(Digest::of(encoded).as_bytes())?;
            file.write_all(encoded)?;
            file.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        Ok(())
    }

    /// Loads all stored checkpoint-proof blobs, ascending by sequence
    /// number, verifying their digests.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] for corrupt files.
    pub fn load_proofs(&self) -> io::Result<Vec<(u64, Vec<u8>)>> {
        let mut sns = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(number) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".zcp"))
            {
                if let Ok(sn) = number.parse::<u64>() {
                    sns.push(sn);
                }
            }
        }
        sns.sort_unstable();
        let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let mut proofs = Vec::new();
        for sn in sns {
            let raw = fs::read(self.dir.join(format!("ckpt-{sn:010}.zcp")))?;
            if raw.len() < 36 || &raw[..4] != Self::MAGIC {
                return Err(invalid("bad proof magic"));
            }
            let stored = Digest::from_bytes(raw[4..36].try_into().expect("length checked"));
            let body = &raw[36..];
            if Digest::of(body) != stored {
                return Err(invalid("proof digest mismatch"));
            }
            proofs.push((sn, body.to_vec()));
        }
        Ok(proofs)
    }

    /// Deletes the stored block at `height`, if present.
    ///
    /// # Errors
    ///
    /// Any I/O error other than the file being absent.
    pub fn remove_block(&self, height: u64) -> io::Result<()> {
        match fs::remove_file(self.path_for(height)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Heights of all stored blocks, ascending.
    ///
    /// # Errors
    ///
    /// Directory read failures.
    pub fn heights(&self) -> io::Result<Vec<u64>> {
        let mut heights = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(number) = name
                .strip_prefix("block-")
                .and_then(|s| s.strip_suffix(".zc"))
            {
                if let Ok(height) = number.parse() {
                    heights.push(height);
                }
            }
        }
        heights.sort_unstable();
        Ok(heights)
    }

    /// Recovers the longest valid chain prefix from a possibly damaged
    /// block directory — the restart path after power loss mid-write.
    ///
    /// Stored blocks are read ascending by height. The walk stops at the
    /// first height that is missing, torn (digest mismatch), undecodable,
    /// or does not link onto the block before it; everything from that
    /// height on is deleted from disk so the store is self-consistent for
    /// subsequent appends. `base` is the pruned-base anchor for chains
    /// whose early blocks were pruned after export: the first stored
    /// block must sit at `base` height + 1 and link to the base hash, or
    /// the whole directory is discarded. Without a `base`, the first
    /// stored block must be the genesis block or link directly onto it.
    ///
    /// # Errors
    ///
    /// Only environment I/O errors (directory unreadable, deletion
    /// failing). Damaged data is never an error — it is truncated away
    /// and reported in [`RecoveredChain::discarded`].
    pub fn recover_chain(&self, base: Option<(u64, Digest)>) -> io::Result<RecoveredChain> {
        let heights = self.heights()?;
        let (base_height, base_hash) = match base {
            Some((height, hash)) => (height, hash),
            None => {
                let genesis = Block::genesis();
                (genesis.height(), genesis.hash())
            }
        };
        let mut blocks: Vec<Block> = Vec::new();
        let mut discarded = Vec::new();
        let mut damaged = false;
        for height in heights {
            // Files at or below the anchor do not affect the suffix:
            // keep an intact genesis file when anchoring at genesis,
            // delete stale remnants from before the last pruning.
            if height <= base_height {
                let intact_genesis = base.is_none()
                    && height == base_height
                    && matches!(self.read_block(height), Ok(b) if b.hash() == base_hash);
                if !intact_genesis {
                    self.remove_block(height)?;
                    discarded.push(height);
                }
                continue;
            }
            if !damaged {
                let expected_height = base_height + blocks.len() as u64 + 1;
                let expected_prev = blocks.last().map_or(base_hash, Block::hash);
                match self.read_block(height) {
                    Ok(block)
                        if height == expected_height
                            && block.header.prev_hash == expected_prev
                            && block.payload_is_consistent() =>
                    {
                        blocks.push(block);
                        continue;
                    }
                    _ => damaged = true,
                }
            }
            // The first damage truncates the rest of the directory.
            self.remove_block(height)?;
            discarded.push(height);
        }
        debug_assert!(blocks.is_empty() || verify_chain(&blocks, Some(base_hash)).is_ok());
        Ok(RecoveredChain { blocks, discarded })
    }

    /// Loads every stored block and verifies the chain linkage.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors, or [`io::ErrorKind::InvalidData`] wrapping
    /// a [`ChainViolation`] if the stored blocks do not form a valid chain.
    pub fn load_chain(&self) -> io::Result<Vec<Block>> {
        let mut blocks = Vec::new();
        for height in self.heights()? {
            blocks.push(self.read_block(height)?);
        }
        if !blocks.is_empty() {
            verify_chain(&blocks, None).map_err(|violation: ChainViolation| {
                io::Error::new(io::ErrorKind::InvalidData, violation.to_string())
            })?;
        }
        Ok(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockBuilder, LoggedRequest};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("zugchain-disk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_chain(n: u64) -> Vec<Block> {
        let mut builder = BlockBuilder::new(2);
        let mut blocks = vec![Block::genesis()];
        for sn in 1..=n * 2 {
            if let Some(block) = builder.push(
                LoggedRequest {
                    sn,
                    origin: 1,
                    payload: vec![0xAB; 64],
                },
                sn * 64,
            ) {
                blocks.push(block);
            }
        }
        blocks
    }

    #[test]
    fn write_read_round_trip() {
        let store = DiskStore::open(tempdir("rt")).unwrap();
        for block in sample_chain(3) {
            store.write_block(&block).unwrap();
        }
        let loaded = store.read_block(2).unwrap();
        assert_eq!(loaded.height(), 2);
        assert!(loaded.payload_is_consistent());
    }

    #[test]
    fn load_chain_verifies_linkage() {
        let store = DiskStore::open(tempdir("chain")).unwrap();
        let chain = sample_chain(4);
        for block in &chain {
            store.write_block(block).unwrap();
        }
        let loaded = store.load_chain().unwrap();
        assert_eq!(loaded, chain);
    }

    #[test]
    fn corruption_is_detected() {
        let store = DiskStore::open(tempdir("corrupt")).unwrap();
        let chain = sample_chain(1);
        store.write_block(&chain[1]).unwrap();
        // Flip a byte in the stored payload region.
        let path = store.path_for(1);
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        fs::write(&path, raw).unwrap();
        let err = store.read_block(1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn missing_block_is_not_found() {
        let store = DiskStore::open(tempdir("missing")).unwrap();
        assert_eq!(
            store.read_block(7).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
    }

    #[test]
    fn remove_is_idempotent() {
        let store = DiskStore::open(tempdir("remove")).unwrap();
        let chain = sample_chain(1);
        store.write_block(&chain[1]).unwrap();
        store.remove_block(1).unwrap();
        store.remove_block(1).unwrap();
        assert!(store.heights().unwrap().is_empty());
    }

    /// Simulates a torn write by cutting the stored file mid-record.
    fn truncate_file(store: &DiskStore, height: u64) {
        let path = store.path_for(height);
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() / 2]).unwrap();
    }

    #[test]
    fn recover_after_torn_write_keeps_valid_prefix() {
        let dir = tempdir("recover-torn");
        let chain = sample_chain(5);
        {
            let store = DiskStore::open(&dir).unwrap();
            for block in &chain {
                store.write_block(block).unwrap();
            }
            // Power loss mid-write of block 4.
            truncate_file(&store, 4);
        }
        // Reopen, as a restarting node would.
        let store = DiskStore::open(&dir).unwrap();
        let recovered = store.recover_chain(None).unwrap();
        assert_eq!(recovered.blocks, chain[1..4].to_vec());
        assert_eq!(recovered.discarded, vec![4, 5]);
        // The directory is now self-consistent: recovery is idempotent.
        assert_eq!(store.heights().unwrap(), vec![0, 1, 2, 3]);
        let again = store.recover_chain(None).unwrap();
        assert_eq!(again.blocks, recovered.blocks);
        assert!(again.discarded.is_empty());
    }

    #[test]
    fn recover_clean_chain_is_lossless() {
        let store = DiskStore::open(tempdir("recover-clean")).unwrap();
        let chain = sample_chain(4);
        for block in &chain {
            store.write_block(block).unwrap();
        }
        let recovered = store.recover_chain(None).unwrap();
        assert_eq!(recovered.blocks, chain[1..].to_vec());
        assert!(recovered.discarded.is_empty());
    }

    #[test]
    fn recover_truncates_at_height_gap() {
        let store = DiskStore::open(tempdir("recover-gap")).unwrap();
        let chain = sample_chain(5);
        for block in &chain {
            store.write_block(block).unwrap();
        }
        store.remove_block(3).unwrap();
        let recovered = store.recover_chain(None).unwrap();
        assert_eq!(recovered.blocks, chain[1..3].to_vec());
        // Blocks after the gap cannot be trusted to extend the prefix.
        assert_eq!(recovered.discarded, vec![4, 5]);
    }

    #[test]
    fn recover_verifies_against_pruned_base() {
        let dir = tempdir("recover-base");
        let chain = sample_chain(5);
        {
            let store = DiskStore::open(&dir).unwrap();
            // Blocks 1–2 were pruned after export; 3–5 remain, plus a
            // stale remnant of block 1.
            for block in &chain[3..] {
                store.write_block(block).unwrap();
            }
            store.write_block(&chain[1]).unwrap();
        }
        let store = DiskStore::open(&dir).unwrap();
        let base = (chain[2].height(), chain[2].hash());
        let recovered = store.recover_chain(Some(base)).unwrap();
        assert_eq!(recovered.blocks, chain[3..].to_vec());
        assert_eq!(recovered.discarded, vec![1]);

        // A wrong base hash discards the whole suffix: nothing on disk
        // verifiably extends the claimed export state.
        let bogus = store
            .recover_chain(Some((chain[2].height(), Digest::ZERO)))
            .unwrap();
        assert!(bogus.blocks.is_empty());
        assert_eq!(bogus.discarded, vec![3, 4, 5]);
    }

    #[test]
    fn recover_discards_corrupted_genesis_remnant() {
        let dir = tempdir("recover-genesis");
        let chain = sample_chain(2);
        {
            let store = DiskStore::open(&dir).unwrap();
            store.write_block(&Block::genesis()).unwrap();
            for block in &chain[1..] {
                store.write_block(block).unwrap();
            }
            truncate_file(&store, 0);
        }
        // A torn genesis file is dropped; the suffix still anchors on
        // the well-known genesis hash.
        let store = DiskStore::open(&dir).unwrap();
        let recovered = store.recover_chain(None).unwrap();
        assert_eq!(recovered.blocks, chain[1..].to_vec());
        assert_eq!(recovered.discarded, vec![0]);
    }

    #[test]
    fn heights_are_sorted() {
        let store = DiskStore::open(tempdir("heights")).unwrap();
        let chain = sample_chain(5);
        // Write out of order.
        for index in [3usize, 1, 4, 2, 0, 5] {
            store.write_block(&chain[index]).unwrap();
        }
        assert_eq!(store.heights().unwrap(), vec![0, 1, 2, 3, 4, 5]);
    }
}
