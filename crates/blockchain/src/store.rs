use std::fmt;

use zugchain_crypto::Digest;

use crate::{Block, BlockHeader};

/// Errors from [`ChainStore`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChainError {
    /// The appended block does not extend the current head.
    DoesNotExtendHead {
        /// Hash of the current head.
        head: Digest,
        /// `prev_hash` of the rejected block.
        got: Digest,
    },
    /// The appended block's height is not `head + 1`.
    WrongHeight {
        /// Expected height.
        expected: u64,
        /// Height of the rejected block.
        actual: u64,
    },
    /// The block's payload hash does not match its requests.
    InconsistentPayload,
    /// A prune was requested up to a height the store does not contain.
    UnknownHeight(u64),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::DoesNotExtendHead { head, got } => {
                write!(f, "block prev {got} does not extend head {head}")
            }
            ChainError::WrongHeight { expected, actual } => {
                write!(f, "expected height {expected}, got {actual}")
            }
            ChainError::InconsistentPayload => write!(f, "block payload does not match header"),
            ChainError::UnknownHeight(height) => write!(f, "height {height} is not in the store"),
        }
    }
}

impl std::error::Error for ChainError {}

/// The base of a pruned chain: the last exported block's identity plus the
/// evidence that the prune was authorized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrunedBase {
    /// Height of the block kept as the new chain base.
    pub height: u64,
    /// Hash of that block.
    pub hash: Digest,
    /// Opaque proof that the deletion was authorized: the canonical
    /// encoding of the data centers' signed *delete* messages (§III-D) or
    /// the on-chain joint agreement for emergency header-only retention.
    pub delete_proof: Vec<u8>,
}

/// The replica-side blockchain store.
///
/// Holds the suffix of the chain that has not yet been exported, the
/// genesis or pruned base it chains onto, and header-only stubs for blocks
/// whose payloads were discarded in an emergency (paper §III-D, error
/// scenario (v)). Tracks an estimate of resident bytes for the memory
/// accounting used in the evaluation.
///
/// # Examples
///
/// ```
/// use zugchain_blockchain::{Block, ChainStore, LoggedRequest};
///
/// let mut store = ChainStore::new();
/// let block = Block::next(
///     1,
///     Block::genesis().hash(),
///     vec![LoggedRequest { sn: 1, origin: 0, payload: vec![1, 2] }],
///     64,
/// );
/// store.append(block).unwrap();
/// assert_eq!(store.height(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ChainStore {
    /// Blocks currently resident, oldest first. The front block's
    /// `prev_hash` equals `base_hash`.
    blocks: Vec<Block>,
    /// Height of the block the resident suffix chains onto.
    base_height: u64,
    /// Hash of that block.
    base_hash: Digest,
    /// Evidence for the most recent prune, if any.
    pruned_base: Option<PrunedBase>,
    /// Header-only stubs kept during emergency memory reclamation.
    header_stubs: Vec<BlockHeader>,
    resident_bytes: usize,
}

impl ChainStore {
    /// Creates a store rooted at the genesis block.
    pub fn new() -> Self {
        let genesis = Block::genesis();
        Self {
            blocks: Vec::new(),
            base_height: genesis.height(),
            base_hash: genesis.hash(),
            pruned_base: None,
            header_stubs: Vec::new(),
            resident_bytes: genesis.encoded_size(),
        }
    }

    /// Creates a store resuming from a pruned base (e.g. after restart or
    /// state transfer).
    pub fn resume(base: PrunedBase) -> Self {
        Self {
            blocks: Vec::new(),
            base_height: base.height,
            base_hash: base.hash,
            resident_bytes: base.delete_proof.len(),
            pruned_base: Some(base),
            header_stubs: Vec::new(),
        }
    }

    /// Height of the newest block (the base if no blocks are resident).
    pub fn height(&self) -> u64 {
        self.blocks.last().map_or(self.base_height, Block::height)
    }

    /// Hash of the newest block (the base hash if no blocks are resident).
    pub fn head_hash(&self) -> Digest {
        self.blocks.last().map_or(self.base_hash, Block::hash)
    }

    /// Height and hash of the base the resident suffix chains onto.
    pub fn base(&self) -> (u64, Digest) {
        (self.base_height, self.base_hash)
    }

    /// Evidence for the most recent prune, if the chain was ever pruned.
    pub fn pruned_base(&self) -> Option<&PrunedBase> {
        self.pruned_base.as_ref()
    }

    /// Number of blocks currently resident.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Estimated resident bytes (blocks + stubs + proofs).
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// The resident blocks, oldest first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Looks up a resident block by height.
    pub fn get(&self, height: u64) -> Option<&Block> {
        let first = self.blocks.first()?.height();
        let index = height.checked_sub(first)? as usize;
        self.blocks.get(index)
    }

    /// Returns the resident blocks in `(from, to]`, oldest first — the
    /// read range of the export protocol (`last_sn` exclusive to
    /// `curr_sn` inclusive, in block heights).
    pub fn range(&self, from_exclusive: u64, to_inclusive: u64) -> Vec<Block> {
        self.blocks
            .iter()
            .filter(|b| b.height() > from_exclusive && b.height() <= to_inclusive)
            .cloned()
            .collect()
    }

    /// Header-only stubs kept during emergency memory reclamation.
    pub fn header_stubs(&self) -> &[BlockHeader] {
        &self.header_stubs
    }

    /// Appends a block to the chain head.
    ///
    /// # Errors
    ///
    /// * [`ChainError::WrongHeight`] if the height is not `head + 1`;
    /// * [`ChainError::DoesNotExtendHead`] if the hash link is wrong;
    /// * [`ChainError::InconsistentPayload`] if the payload hash lies.
    pub fn append(&mut self, block: Block) -> Result<(), ChainError> {
        let expected_height = self.height() + 1;
        if block.height() != expected_height {
            return Err(ChainError::WrongHeight {
                expected: expected_height,
                actual: block.height(),
            });
        }
        if block.header.prev_hash != self.head_hash() {
            return Err(ChainError::DoesNotExtendHead {
                head: self.head_hash(),
                got: block.header.prev_hash,
            });
        }
        if !block.payload_is_consistent() {
            return Err(ChainError::InconsistentPayload);
        }
        self.resident_bytes += block.encoded_size();
        self.blocks.push(block);
        Ok(())
    }

    /// Prunes all blocks up to and including `base.height`, keeping that
    /// block's identity as the new chain base (paper §III-D step ⑥:
    /// "remove the blocks up to this index, keeping the last exported
    /// block to serve as the first block for the pruned blockchain").
    ///
    /// # Errors
    ///
    /// [`ChainError::UnknownHeight`] if `base.height` is above the head;
    /// pruning below the current base is a no-op.
    pub fn prune_to(&mut self, base: PrunedBase) -> Result<usize, ChainError> {
        if base.height > self.height() {
            return Err(ChainError::UnknownHeight(base.height));
        }
        let keep_from = self
            .blocks
            .iter()
            .position(|b| b.height() > base.height)
            .unwrap_or(self.blocks.len());
        let removed = keep_from;
        for block in self.blocks.drain(..keep_from) {
            self.resident_bytes = self.resident_bytes.saturating_sub(block.encoded_size());
        }
        if base.height >= self.base_height {
            self.base_height = base.height;
            self.base_hash = base.hash;
            self.resident_bytes += base.delete_proof.len();
            self.pruned_base = Some(base);
        }
        Ok(removed)
    }

    /// Emergency memory reclamation: drops the payloads of the `count`
    /// oldest resident blocks, keeping only their headers so chain
    /// integrity remains verifiable (paper §III-D, scenario (v)).
    ///
    /// Returns the number of blocks stubbed.
    pub fn retain_headers_only(&mut self, count: usize) -> usize {
        let mut stubbed = 0;
        for _ in 0..count {
            // Never stub past the head: the head must stay appendable.
            if self.blocks.len() <= 1 {
                break;
            }
            let block = self.blocks.remove(0);
            let height = block.height();
            self.resident_bytes = self.resident_bytes.saturating_sub(block.encoded_size());
            let header = block.header;
            self.resident_bytes += zugchain_wire::to_bytes(&header).len();
            self.header_stubs.push(header);
            stubbed += 1;
            // The suffix now chains onto the stubbed block.
            self.base_height = height;
            self.base_hash = self.header_stubs.last().expect("just pushed").hash();
        }
        stubbed
    }
}

impl Default for ChainStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoggedRequest;

    fn block_at(height: u64, prev: Digest) -> Block {
        let first_sn = (height - 1) * 2 + 1;
        let requests = (first_sn..first_sn + 2)
            .map(|sn| LoggedRequest {
                sn,
                origin: 0,
                payload: vec![sn as u8; 32],
            })
            .collect();
        Block::next(height, prev, requests, height * 64)
    }

    fn store_with(n: u64) -> ChainStore {
        let mut store = ChainStore::new();
        let mut prev = store.head_hash();
        for height in 1..=n {
            let block = block_at(height, prev);
            prev = block.hash();
            store.append(block).unwrap();
        }
        store
    }

    #[test]
    fn append_rejects_wrong_height() {
        let mut store = store_with(2);
        let block = block_at(5, store.head_hash());
        assert!(matches!(
            store.append(block),
            Err(ChainError::WrongHeight {
                expected: 3,
                actual: 5
            })
        ));
    }

    #[test]
    fn append_rejects_broken_link() {
        let mut store = store_with(2);
        let block = block_at(3, Digest::of(b"garbage"));
        assert!(matches!(
            store.append(block),
            Err(ChainError::DoesNotExtendHead { .. })
        ));
    }

    #[test]
    fn append_rejects_tampered_payload() {
        let mut store = store_with(1);
        let mut block = block_at(2, store.head_hash());
        block.requests[0].payload = vec![0xBB];
        assert_eq!(store.append(block), Err(ChainError::InconsistentPayload));
    }

    #[test]
    fn range_is_exclusive_inclusive() {
        let store = store_with(5);
        let blocks = store.range(1, 4);
        let heights: Vec<u64> = blocks.iter().map(Block::height).collect();
        assert_eq!(heights, vec![2, 3, 4]);
    }

    #[test]
    fn prune_keeps_exported_block_as_base() {
        let mut store = store_with(5);
        let block3 = store.get(3).unwrap().clone();
        let removed = store
            .prune_to(PrunedBase {
                height: 3,
                hash: block3.hash(),
                delete_proof: vec![1, 2, 3],
            })
            .unwrap();
        assert_eq!(removed, 3);
        assert_eq!(store.len(), 2);
        assert_eq!(store.base(), (3, block3.hash()));
        // Appending continues seamlessly on the pruned chain.
        let mut next = block_at(6, store.head_hash());
        next.header.first_sn = 11;
        next.header.last_sn = 12;
        assert_eq!(store.height(), 5);
        let _ = next;
    }

    #[test]
    fn prune_above_head_is_rejected() {
        let mut store = store_with(2);
        let err = store
            .prune_to(PrunedBase {
                height: 9,
                hash: Digest::ZERO,
                delete_proof: vec![],
            })
            .unwrap_err();
        assert_eq!(err, ChainError::UnknownHeight(9));
    }

    #[test]
    fn prune_is_idempotent_below_base() {
        let mut store = store_with(4);
        let block2 = store.get(2).unwrap().clone();
        let base = PrunedBase {
            height: 2,
            hash: block2.hash(),
            delete_proof: vec![],
        };
        assert_eq!(store.prune_to(base.clone()).unwrap(), 2);
        assert_eq!(store.prune_to(base).unwrap(), 0);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn memory_accounting_shrinks_on_prune() {
        let mut store = store_with(10);
        let before = store.resident_bytes();
        let block5 = store.get(5).unwrap().clone();
        store
            .prune_to(PrunedBase {
                height: 5,
                hash: block5.hash(),
                delete_proof: vec![],
            })
            .unwrap();
        assert!(store.resident_bytes() < before);
    }

    #[test]
    fn header_stubs_preserve_linkage() {
        let mut store = store_with(5);
        let stubbed = store.retain_headers_only(2);
        assert_eq!(stubbed, 2);
        assert_eq!(store.header_stubs().len(), 2);
        assert_eq!(store.len(), 3);
        // The remaining front block chains onto the last stub.
        assert_eq!(
            store.blocks().first().unwrap().header.prev_hash,
            store.header_stubs().last().unwrap().hash()
        );
    }

    #[test]
    fn header_stubbing_never_consumes_the_head() {
        let mut store = store_with(2);
        let stubbed = store.retain_headers_only(10);
        assert_eq!(stubbed, 1, "head block must remain");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn get_by_height() {
        let store = store_with(3);
        assert_eq!(store.get(2).unwrap().height(), 2);
        assert!(store.get(9).is_none());
        assert!(store.get(0).is_none(), "genesis is not resident");
    }
}
