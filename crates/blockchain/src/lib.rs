//! The ZugChain blockchain: tamper-evident storage for ordered train
//! events.
//!
//! Once the BFT layer has ordered requests, replicas deterministically
//! bundle them into blocks (paper §III-C, "Blockchain Application"): each
//! block carries the digest of its predecessor, so deleting, reordering or
//! modifying logged events after the fact is impossible without detection —
//! even if only a single replica's chain survives an accident.
//!
//! The crate provides:
//!
//! * [`Block`]/[`BlockHeader`]/[`LoggedRequest`] — the chain data model,
//!   with canonical encoding and hashing;
//! * [`BlockBuilder`] — deterministic bundling of ordered requests into
//!   blocks at a configured block size;
//! * [`ChainStore`] — the replica-side store with pruning after export
//!   (the last exported block is kept as the base of the pruned chain) and
//!   header-only retention as the memory-exhaustion fallback (§III-D,
//!   error scenario (v));
//! * [`DiskStore`] — simple, crash-tolerant persistence of blocks to disk,
//!   satisfying the JRU requirement that data survive power loss;
//! * [`verify_chain`] — validation used by data centers and when
//!   transferring state between replicas.
//!
//! # Examples
//!
//! ```
//! use zugchain_blockchain::{BlockBuilder, ChainStore, LoggedRequest, verify_chain};
//!
//! let mut builder = BlockBuilder::new(2); // 2 requests per block
//! let mut store = ChainStore::new();
//!
//! for sn in 1..=4u64 {
//!     let request = LoggedRequest { sn, origin: 0, payload: vec![sn as u8] };
//!     if let Some(block) = builder.push(request, sn * 64) {
//!         store.append(block).unwrap();
//!     }
//! }
//! assert_eq!(store.height(), 2);
//! assert!(verify_chain(store.blocks(), None).is_ok());
//! ```

#![warn(missing_docs)]

mod block;
mod builder;
mod disk;
mod store;
mod verify;

pub use block::{Block, BlockHeader, LoggedRequest};
pub use builder::BlockBuilder;
pub use disk::{DiskStore, RecoveredChain};
pub use store::{ChainError, ChainStore, PrunedBase};
pub use verify::{verify_chain, ChainViolation};
