use std::fmt;

use zugchain_crypto::Digest;

use crate::Block;

/// A violation detected while verifying a chain segment.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChainViolation {
    /// The segment is empty.
    Empty,
    /// A block's `prev_hash` does not match its predecessor's hash.
    BrokenLink {
        /// Height of the block whose link is broken.
        height: u64,
    },
    /// Heights are not consecutive.
    HeightGap {
        /// Expected height.
        expected: u64,
        /// Actual height found.
        actual: u64,
    },
    /// A block's payload hash does not match its requests (tampering).
    PayloadMismatch {
        /// Height of the inconsistent block.
        height: u64,
    },
    /// The first block does not chain onto the expected base hash.
    WrongBase {
        /// The base hash the segment was expected to extend.
        expected: Digest,
        /// The `prev_hash` actually found on the first block.
        actual: Digest,
    },
    /// Sequence numbers overlap or go backwards between blocks.
    SequenceOverlap {
        /// Height of the offending block.
        height: u64,
    },
}

impl fmt::Display for ChainViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainViolation::Empty => write!(f, "chain segment is empty"),
            ChainViolation::BrokenLink { height } => {
                write!(f, "block {height} does not link to its predecessor")
            }
            ChainViolation::HeightGap { expected, actual } => {
                write!(f, "expected block height {expected}, found {actual}")
            }
            ChainViolation::PayloadMismatch { height } => {
                write!(f, "block {height} payload does not match its header")
            }
            ChainViolation::WrongBase { expected, actual } => {
                write!(
                    f,
                    "segment base {actual} does not match expected {expected}"
                )
            }
            ChainViolation::SequenceOverlap { height } => {
                write!(
                    f,
                    "block {height} overlaps its predecessor's sequence numbers"
                )
            }
        }
    }
}

impl std::error::Error for ChainViolation {}

/// Verifies a contiguous chain segment.
///
/// Checks, per block: payload consistency, consecutive heights, hash
/// linkage, and monotonically increasing sequence-number ranges. If
/// `base` is given, the first block's `prev_hash` must equal it — data
/// centers use this to verify exported segments against the last block
/// they already hold; replicas use it when ingesting a transferred
/// checkpoint onto a pruned chain (paper §III-D, scenario (ii)).
///
/// # Errors
///
/// The first [`ChainViolation`] encountered, scanning front to back.
pub fn verify_chain(blocks: &[Block], base: Option<Digest>) -> Result<(), ChainViolation> {
    let first = blocks.first().ok_or(ChainViolation::Empty)?;
    if let Some(expected) = base {
        if first.header.prev_hash != expected {
            return Err(ChainViolation::WrongBase {
                expected,
                actual: first.header.prev_hash,
            });
        }
    }

    let mut prev_hash = None;
    let mut prev_height = None;
    let mut prev_last_sn = None;
    for block in blocks {
        let height = block.height();
        if !block.payload_is_consistent() {
            return Err(ChainViolation::PayloadMismatch { height });
        }
        if let Some(expected) = prev_height.map(|h: u64| h + 1) {
            if height != expected {
                return Err(ChainViolation::HeightGap {
                    expected,
                    actual: height,
                });
            }
        }
        if let Some(prev) = prev_hash {
            if block.header.prev_hash != prev {
                return Err(ChainViolation::BrokenLink { height });
            }
        }
        if let Some(last_sn) = prev_last_sn {
            // Genesis carries sn 0..=0; real blocks start at sn ≥ 1.
            if block.header.first_sn <= last_sn && !(last_sn == 0 && block.header.first_sn == 1) {
                return Err(ChainViolation::SequenceOverlap { height });
            }
        }
        prev_hash = Some(block.hash());
        prev_height = Some(height);
        prev_last_sn = Some(block.header.last_sn);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockBuilder, LoggedRequest};

    fn chain(n_blocks: u64) -> Vec<Block> {
        let mut builder = BlockBuilder::new(2);
        let mut blocks = vec![Block::genesis()];
        for sn in 1..=n_blocks * 2 {
            if let Some(block) = builder.push(
                LoggedRequest {
                    sn,
                    origin: 0,
                    payload: vec![sn as u8],
                },
                sn * 64,
            ) {
                blocks.push(block);
            }
        }
        blocks
    }

    #[test]
    fn valid_chain_verifies() {
        assert_eq!(verify_chain(&chain(5), None), Ok(()));
    }

    #[test]
    fn valid_chain_verifies_against_base() {
        let blocks = chain(3);
        // Segment starting after genesis, verified against genesis hash.
        assert_eq!(verify_chain(&blocks[1..], Some(blocks[0].hash())), Ok(()));
    }

    #[test]
    fn wrong_base_is_detected() {
        let blocks = chain(3);
        let err = verify_chain(&blocks[1..], Some(Digest::of(b"bogus"))).unwrap_err();
        assert!(matches!(err, ChainViolation::WrongBase { .. }));
    }

    #[test]
    fn empty_segment_is_rejected() {
        assert_eq!(verify_chain(&[], None), Err(ChainViolation::Empty));
    }

    #[test]
    fn missing_block_is_detected() {
        let mut blocks = chain(4);
        blocks.remove(2);
        let err = verify_chain(&blocks, None).unwrap_err();
        assert!(matches!(err, ChainViolation::HeightGap { .. }));
    }

    #[test]
    fn tampered_payload_is_detected() {
        let mut blocks = chain(3);
        blocks[2].requests[0].payload = vec![0xFF, 0xFF];
        assert_eq!(
            verify_chain(&blocks, None),
            Err(ChainViolation::PayloadMismatch { height: 2 })
        );
    }

    #[test]
    fn relinked_header_is_detected() {
        let mut blocks = chain(3);
        // Tamper with a payload *and* fix up the payload hash: the broken
        // hash link to the next block still exposes it.
        blocks[2].requests[0].payload = vec![0xFF, 0xFF];
        blocks[2].header.payload_hash = Block::payload_hash_of(&blocks[2].requests);
        let err = verify_chain(&blocks, None).unwrap_err();
        assert_eq!(err, ChainViolation::BrokenLink { height: 3 });
    }

    #[test]
    fn sequence_overlap_is_detected() {
        let blocks = chain(2);
        let mut overlapping = blocks.clone();
        // Forge block 2 to re-bundle block 1's sequence numbers.
        let forged_requests: Vec<LoggedRequest> = blocks[1].requests.clone();
        overlapping[2] = Block::next(2, blocks[1].hash(), forged_requests, 0);
        assert_eq!(
            verify_chain(&overlapping, None),
            Err(ChainViolation::SequenceOverlap { height: 2 })
        );
    }
}
