use zugchain_crypto::Digest;

use crate::{Block, LoggedRequest};

/// Deterministically bundles ordered requests into blocks.
///
/// Replicas create a block "once a certain threshold of ordered requests
/// has been reached" (paper §III-C). Since all correct replicas feed the
/// builder the same totally ordered requests, all produce bit-identical
/// blocks. The evaluation uses a block size of 10 requests.
///
/// # Examples
///
/// ```
/// use zugchain_blockchain::{BlockBuilder, LoggedRequest};
///
/// let mut builder = BlockBuilder::new(3);
/// assert!(builder.push(LoggedRequest { sn: 1, origin: 0, payload: vec![1] }, 64).is_none());
/// assert!(builder.push(LoggedRequest { sn: 2, origin: 1, payload: vec![2] }, 128).is_none());
/// let block = builder.push(LoggedRequest { sn: 3, origin: 0, payload: vec![3] }, 192).unwrap();
/// assert_eq!(block.requests.len(), 3);
/// assert_eq!(block.height(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BlockBuilder {
    block_size: usize,
    pending: Vec<LoggedRequest>,
    next_height: u64,
    prev_hash: Digest,
}

impl BlockBuilder {
    /// Creates a builder chaining onto the genesis block.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: usize) -> Self {
        let genesis = Block::genesis();
        Self::resume(block_size, genesis.height(), genesis.hash())
    }

    /// Creates a builder that chains onto an existing block — used when a
    /// replica restarts from a pruned chain or a transferred checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn resume(block_size: usize, last_height: u64, last_hash: Digest) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self {
            block_size,
            pending: Vec::new(),
            next_height: last_height + 1,
            prev_hash: last_hash,
        }
    }

    /// The configured number of requests per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Requests buffered but not yet bundled into a block.
    pub fn pending(&self) -> &[LoggedRequest] {
        &self.pending
    }

    /// Appends the next ordered request; returns a finished block once
    /// `block_size` requests have accumulated.
    ///
    /// `time_ms` is the logical time of the decide, stamped into the block
    /// header when the block completes.
    ///
    /// # Panics
    ///
    /// Panics if `request.sn` is not greater than the last buffered
    /// sequence number — the BFT layer delivers in order.
    pub fn push(&mut self, request: LoggedRequest, time_ms: u64) -> Option<Block> {
        if let Some(last) = self.pending.last() {
            assert!(
                request.sn > last.sn,
                "decides must arrive in sequence order ({} after {})",
                request.sn,
                last.sn
            );
        }
        self.pending.push(request);
        if self.pending.len() < self.block_size {
            return None;
        }
        let requests = std::mem::take(&mut self.pending);
        let block = Block::next(self.next_height, self.prev_hash, requests, time_ms);
        self.next_height += 1;
        self.prev_hash = block.hash();
        Some(block)
    }

    /// Flushes buffered requests into a (possibly undersized) block.
    ///
    /// Used at shutdown or before an urgent export so that no ordered
    /// request stays outside the chain. Returns `None` if nothing is
    /// buffered.
    pub fn flush(&mut self, time_ms: u64) -> Option<Block> {
        if self.pending.is_empty() {
            return None;
        }
        let requests = std::mem::take(&mut self.pending);
        let block = Block::next(self.next_height, self.prev_hash, requests, time_ms);
        self.next_height += 1;
        self.prev_hash = block.hash();
        Some(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(sn: u64) -> LoggedRequest {
        LoggedRequest {
            sn,
            origin: sn % 4,
            payload: vec![sn as u8; 16],
        }
    }

    #[test]
    fn blocks_chain_correctly() {
        let mut builder = BlockBuilder::new(2);
        assert!(builder.push(req(1), 0).is_none());
        let b1 = builder
            .push(req(2), 64)
            .expect("second push completes the block");
        assert!(builder.push(req(3), 128).is_none());
        let b2 = builder.push(req(4), 192).expect("fourth push completes");
        assert_eq!(b1.height(), 1);
        assert_eq!(b2.height(), 2);
        assert_eq!(b2.header.prev_hash, b1.hash());
        assert_eq!(b1.header.prev_hash, Block::genesis().hash());
    }

    #[test]
    fn identical_input_gives_identical_blocks() {
        let run = || {
            let mut builder = BlockBuilder::new(3);
            let mut blocks = Vec::new();
            for sn in 1..=9 {
                if let Some(block) = builder.push(req(sn), sn * 64) {
                    blocks.push(block);
                }
            }
            blocks
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(
            a.iter().map(Block::hash).collect::<Vec<_>>(),
            b.iter().map(Block::hash).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "sequence order")]
    fn out_of_order_decide_panics() {
        let mut builder = BlockBuilder::new(10);
        builder.push(req(5), 0);
        builder.push(req(4), 0);
    }

    #[test]
    fn flush_produces_undersized_block() {
        let mut builder = BlockBuilder::new(10);
        builder.push(req(1), 0);
        builder.push(req(2), 64);
        let block = builder.flush(100).expect("pending requests flush");
        assert_eq!(block.requests.len(), 2);
        assert!(builder.flush(200).is_none());
    }

    #[test]
    fn resume_continues_a_pruned_chain() {
        let mut first = BlockBuilder::new(1);
        let b1 = first.push(req(1), 0).unwrap();
        let mut resumed = BlockBuilder::resume(1, b1.height(), b1.hash());
        let b2 = resumed.push(req(2), 64).unwrap();
        assert_eq!(b2.height(), 2);
        assert_eq!(b2.header.prev_hash, b1.hash());
    }
}
