//! Edge-case tests for the signal pipeline: malformed telegrams must be
//! logged (never dropped, never poisoning analysis), extreme speed
//! values must flow through decoding and analysis intact, and on-change
//! suppression must behave correctly across bus-cycle boundaries.

use zugchain_mvb::{Nsdb, PortAddress, Telegram};
use zugchain_signals::{
    analysis::Timeline, CycleConsolidator, ParseOutcome, Request, SignalParser, SignalValue,
    TrainEvent,
};

const V_ACTUAL: PortAddress = PortAddress(0x100);
const ODOMETER: PortAddress = PortAddress(0x102);
const EMERGENCY: PortAddress = PortAddress(0x112);

fn speed_telegram(cycle: u64, speed: u16) -> Telegram {
    Telegram::new(V_ACTUAL, cycle, cycle * 64, speed.to_le_bytes().to_vec())
}

// --- malformed telegrams ------------------------------------------------

#[test]
fn empty_payload_on_known_port_is_logged_raw() {
    let parser = SignalParser::new(Nsdb::jru_default());
    let (event, outcome) = parser.parse(&Telegram::new(V_ACTUAL, 0, 0, vec![]));
    assert_eq!(outcome, ParseOutcome::WidthMismatch);
    assert_eq!(event.value, SignalValue::Raw(vec![]));
    assert_eq!(event.name, "v_actual", "port identity survives corruption");
}

#[test]
fn truncated_u32_payload_is_logged_raw() {
    // odometer_m is u32; deliver only 3 of its 4 bytes.
    let parser = SignalParser::new(Nsdb::jru_default());
    let (event, outcome) = parser.parse(&Telegram::new(ODOMETER, 2, 128, vec![0xAA, 0xBB, 0xCC]));
    assert_eq!(outcome, ParseOutcome::WidthMismatch);
    assert_eq!(event.value, SignalValue::Raw(vec![0xAA, 0xBB, 0xCC]));
}

#[test]
fn oversized_bool_payload_is_logged_raw() {
    let parser = SignalParser::new(Nsdb::jru_default());
    let (event, outcome) = parser.parse(&Telegram::new(EMERGENCY, 0, 0, vec![1, 0]));
    assert_eq!(outcome, ParseOutcome::WidthMismatch);
    assert_eq!(event.value, SignalValue::Raw(vec![1, 0]));
}

#[test]
fn unknown_port_with_empty_payload_is_logged() {
    let parser = SignalParser::new(Nsdb::jru_default());
    let (event, outcome) = parser.parse(&Telegram::new(PortAddress(0x7FF), 0, 0, vec![]));
    assert_eq!(outcome, ParseOutcome::UnknownPort);
    assert_eq!(event.name, "unknown_0x7ff");
    assert_eq!(event.value, SignalValue::Raw(vec![]));
}

#[test]
fn malformed_telegrams_are_never_suppressed_across_cycles() {
    // The same corrupt frame arriving cycle after cycle must be logged
    // every time: raw bytes cannot be compared semantically.
    let mut consolidator = CycleConsolidator::new(Nsdb::jru_default());
    for cycle in 0..4 {
        let corrupt = Telegram::new(V_ACTUAL, cycle, cycle * 64, vec![1, 2, 3]);
        let request = consolidator.consolidate(cycle, cycle * 64, &[corrupt]);
        assert!(request.is_some(), "cycle {cycle} dropped a corrupt frame");
    }
    let (admitted, suppressed) = consolidator.filter_stats();
    assert_eq!((admitted, suppressed), (4, 0));
}

// --- out-of-range speeds ------------------------------------------------

#[test]
fn maximum_encodable_speed_flows_through_analysis() {
    // u16::MAX is 655.35 km/h — far beyond any train, but the pipeline
    // must log and report it faithfully rather than clamp or drop it;
    // judging plausibility is the investigators' job.
    let parser = SignalParser::new(Nsdb::jru_default());
    let (event, outcome) = parser.parse(&speed_telegram(1, u16::MAX));
    assert_eq!(outcome, ParseOutcome::Decoded);
    assert_eq!(event.value, SignalValue::U16(u16::MAX));

    let timeline = Timeline::from_requests([(1, 0, Request::new(1, 64, vec![event]))]);
    assert_eq!(timeline.max_speed_ckmh(), Some(u16::MAX));
    assert_eq!(timeline.speed_profile(), &[(64, u16::MAX)]);
}

#[test]
fn corrupted_speed_does_not_poison_the_speed_profile() {
    // A width-mismatched speed telegram is logged raw; it must not enter
    // the speed profile, and an emergency braking afterwards must pair
    // with the last *valid* speed, not the garbage.
    let parser = SignalParser::new(Nsdb::jru_default());
    let (good, _) = parser.parse(&speed_telegram(1, 12_000));
    let (corrupt, _) = parser.parse(&Telegram::new(V_ACTUAL, 2, 128, vec![0xFF; 5]));
    let (brake, _) = parser.parse(&Telegram::new(EMERGENCY, 3, 192, vec![1]));

    let timeline = Timeline::from_requests([
        (1, 0, Request::new(1, 64, vec![good])),
        (2, 1, Request::new(2, 128, vec![corrupt])),
        (3, 2, Request::new(3, 192, vec![brake])),
    ]);
    assert_eq!(timeline.speed_profile(), &[(64, 12_000)]);
    assert!(timeline
        .emergency_brakings()
        .any(|f| f.to_string().contains("120.0 km/h")));
}

#[test]
fn zero_speed_is_a_logged_sample_not_an_absence() {
    let timeline = Timeline::from_requests([(
        1,
        0,
        Request::new(
            1,
            64,
            vec![TrainEvent {
                name: "v_actual".into(),
                port: V_ACTUAL,
                cycle: 1,
                time_ms: 64,
                value: SignalValue::U16(0),
            }],
        ),
    )]);
    assert_eq!(timeline.max_speed_ckmh(), Some(0));
}

// --- on-change suppression across cycle boundaries ----------------------

#[test]
fn unchanged_value_is_suppressed_over_many_cycles() {
    let mut consolidator = CycleConsolidator::new(Nsdb::jru_default());
    assert!(consolidator
        .consolidate(0, 0, &[speed_telegram(0, 500)])
        .is_some());
    for cycle in 1..10 {
        assert!(
            consolidator
                .consolidate(cycle, cycle * 64, &[speed_telegram(cycle, 500)])
                .is_none(),
            "cycle {cycle} re-logged an unchanged speed"
        );
    }
    let (admitted, suppressed) = consolidator.filter_stats();
    assert_eq!((admitted, suppressed), (1, 9));
}

#[test]
fn change_after_long_suppression_is_admitted() {
    let mut consolidator = CycleConsolidator::new(Nsdb::jru_default());
    consolidator.consolidate(0, 0, &[speed_telegram(0, 500)]);
    for cycle in 1..5 {
        consolidator.consolidate(cycle, cycle * 64, &[speed_telegram(cycle, 500)]);
    }
    let request = consolidator
        .consolidate(5, 320, &[speed_telegram(5, 501)])
        .expect("changed speed must be logged");
    assert_eq!(request.cycle, 5);
    assert_eq!(request.events[0].value, SignalValue::U16(501));
}

#[test]
fn value_returning_to_earlier_reading_is_a_change() {
    // A → B → A across three cycles: the return to A differs from the
    // *last logged* value B, so it must be admitted — the filter keeps
    // one value of history, not a set of values ever seen.
    let mut consolidator = CycleConsolidator::new(Nsdb::jru_default());
    for (cycle, speed) in [(0, 100u16), (1, 200), (2, 100)] {
        let request = consolidator.consolidate(cycle, cycle * 64, &[speed_telegram(cycle, speed)]);
        assert!(request.is_some(), "cycle {cycle} suppressed a change");
    }
    let (admitted, suppressed) = consolidator.filter_stats();
    assert_eq!((admitted, suppressed), (3, 0));
}

#[test]
fn suppression_is_per_port_across_cycles() {
    // The speed stays constant while the brake toggles: only the brake
    // events cross the filter after cycle 0.
    let mut consolidator = CycleConsolidator::new(Nsdb::jru_default());
    let brake = |cycle: u64, applied: u8| {
        Telegram::new(PortAddress(0x111), cycle, cycle * 64, vec![applied])
    };

    let first = consolidator
        .consolidate(0, 0, &[speed_telegram(0, 900), brake(0, 0)])
        .expect("first cycle logs both signals");
    assert_eq!(first.events.len(), 2);

    for cycle in 1..4 {
        let request = consolidator
            .consolidate(
                cycle,
                cycle * 64,
                &[speed_telegram(cycle, 900), brake(cycle, (cycle % 2) as u8)],
            )
            .expect("brake toggles every cycle");
        assert_eq!(request.events.len(), 1, "cycle {cycle}");
        assert_eq!(request.events[0].name, "brake_applied");
    }
}

#[test]
fn duplicate_telegrams_within_one_cycle_are_suppressed_too() {
    // A chattering device repeats the same frame inside a single cycle;
    // only the first instance is juridically relevant.
    let mut consolidator = CycleConsolidator::new(Nsdb::jru_default());
    let request = consolidator
        .consolidate(
            0,
            0,
            &[
                speed_telegram(0, 700),
                speed_telegram(0, 700),
                speed_telegram(0, 700),
            ],
        )
        .expect("first instance logs");
    assert_eq!(request.events.len(), 1);
    let (admitted, suppressed) = consolidator.filter_stats();
    assert_eq!((admitted, suppressed), (1, 2));
}
