use std::fmt;

use zugchain_mvb::PortAddress;
use zugchain_wire::{Decode, Encode, Reader, WireError, Writer};

/// A decoded signal value.
///
/// The variants match the NSDB signal kinds
/// ([`SignalKind`](zugchain_mvb::SignalKind)); [`SignalValue::Raw`] records
/// telegrams that failed to decode (width mismatch after bus corruption) or
/// that are opaque by configuration — both must still be logged.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SignalValue {
    /// A discrete on/off signal.
    Bool(bool),
    /// An unsigned 16-bit scaled value.
    U16(u16),
    /// An unsigned 32-bit scaled value.
    U32(u32),
    /// A signed 16-bit scaled value.
    I16(i16),
    /// Undecoded payload bytes, logged as-is.
    Raw(Vec<u8>),
}

impl SignalValue {
    const TAG_BOOL: u8 = 0;
    const TAG_U16: u8 = 1;
    const TAG_U32: u8 = 2;
    const TAG_I16: u8 = 3;
    const TAG_RAW: u8 = 4;
}

impl fmt::Display for SignalValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalValue::Bool(v) => write!(f, "{v}"),
            SignalValue::U16(v) => write!(f, "{v}"),
            SignalValue::U32(v) => write!(f, "{v}"),
            SignalValue::I16(v) => write!(f, "{v}"),
            SignalValue::Raw(bytes) => write!(f, "raw[{} bytes]", bytes.len()),
        }
    }
}

impl Encode for SignalValue {
    fn encode(&self, w: &mut Writer) {
        match self {
            SignalValue::Bool(v) => {
                w.write_u8(Self::TAG_BOOL);
                v.encode(w);
            }
            SignalValue::U16(v) => {
                w.write_u8(Self::TAG_U16);
                w.write_u16(*v);
            }
            SignalValue::U32(v) => {
                w.write_u8(Self::TAG_U32);
                w.write_u32(*v);
            }
            SignalValue::I16(v) => {
                w.write_u8(Self::TAG_I16);
                w.write_u16(*v as u16);
            }
            SignalValue::Raw(bytes) => {
                w.write_u8(Self::TAG_RAW);
                w.write_bytes(bytes);
            }
        }
    }
}

impl Decode for SignalValue {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            Self::TAG_BOOL => Ok(SignalValue::Bool(bool::decode(r)?)),
            Self::TAG_U16 => Ok(SignalValue::U16(r.read_u16()?)),
            Self::TAG_U32 => Ok(SignalValue::U32(r.read_u32()?)),
            Self::TAG_I16 => Ok(SignalValue::I16(r.read_u16()? as i16)),
            Self::TAG_RAW => Ok(SignalValue::Raw(r.read_bytes()?.to_vec())),
            tag => Err(WireError::InvalidDiscriminant {
                type_name: "SignalValue",
                value: u64::from(tag),
            }),
        }
    }
}

/// One juridically relevant train event: a named signal observation with
/// its bus timestamp, in a format compatible with JRU analysis tooling.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TrainEvent {
    /// Signal name from the NSDB (e.g. `"emergency_brake"`), or a
    /// placeholder for unconfigured ports.
    pub name: String,
    /// Source port on the bus.
    pub port: PortAddress,
    /// Bus cycle during which the signal was transmitted.
    pub cycle: u64,
    /// Bus time of transmission in milliseconds.
    pub time_ms: u64,
    /// The decoded value.
    pub value: SignalValue,
}

impl fmt::Display for TrainEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} ms] {} = {} ({})",
            self.time_ms, self.name, self.value, self.port
        )
    }
}

impl Encode for TrainEvent {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        self.port.encode(w);
        w.write_u64(self.cycle);
        w.write_u64(self.time_ms);
        self.value.encode(w);
    }
}

impl Decode for TrainEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TrainEvent {
            name: String::decode(r)?,
            port: PortAddress::decode(r)?,
            cycle: r.read_u64()?,
            time_ms: r.read_u64()?,
            value: SignalValue::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainEvent {
        TrainEvent {
            name: "v_actual".into(),
            port: PortAddress(0x100),
            cycle: 12,
            time_ms: 768,
            value: SignalValue::U16(14_250),
        }
    }

    #[test]
    fn event_wire_round_trip() {
        let event = sample();
        let back: TrainEvent = zugchain_wire::from_bytes(&zugchain_wire::to_bytes(&event)).unwrap();
        assert_eq!(back, event);
    }

    #[test]
    fn every_value_variant_round_trips() {
        let values = [
            SignalValue::Bool(true),
            SignalValue::Bool(false),
            SignalValue::U16(65_535),
            SignalValue::U32(4_000_000_000),
            SignalValue::I16(-220),
            SignalValue::Raw(vec![1, 2, 3]),
            SignalValue::Raw(vec![]),
        ];
        for value in values {
            let back: SignalValue =
                zugchain_wire::from_bytes(&zugchain_wire::to_bytes(&value)).unwrap();
            assert_eq!(back, value);
        }
    }

    #[test]
    fn unknown_value_tag_is_rejected() {
        let err = zugchain_wire::from_bytes::<SignalValue>(&[9]).unwrap_err();
        assert!(matches!(
            err,
            zugchain_wire::WireError::InvalidDiscriminant {
                type_name: "SignalValue",
                value: 9
            }
        ));
    }

    #[test]
    fn display_is_analysis_friendly() {
        assert_eq!(
            sample().to_string(),
            "[768 ms] v_actual = 14250 (port 0x100)"
        );
    }
}
