//! From bus signals to BFT requests.
//!
//! This crate implements the "From Signals to Blocks" pipeline of the paper
//! (§III-A) up to the point where data enters consensus:
//!
//! 1. **Parse** raw telegrams into typed [`TrainEvent`]s using the same
//!    NSDB configuration that drives the bus ([`SignalParser`]). The
//!    transformation is value-preserving and side-effect free, mirroring
//!    the verified JRU transformation steps.
//! 2. **Filter** events as is common practice in JRUs, e.g. logging the
//!    speed only upon changes ([`ChangeFilter`]).
//! 3. **Consolidate** all signals of one bus cycle into a single BFT
//!    [`Request`] ([`CycleConsolidator`]), as required by §III-B: *"All
//!    signals transmitted in a bus cycle are consolidated into one BFT
//!    request."*
//!
//! Corrupted telegrams (e.g. width mismatches from bus bit flips) are not
//! discarded: the paper requires that *all data sent over the bus is
//! considered valid data to be logged*. They are recorded as
//! [`SignalValue::Raw`] events instead.
//!
//! # Examples
//!
//! ```
//! use zugchain_mvb::{Bus, BusConfig, SignalGenerator};
//! use zugchain_signals::CycleConsolidator;
//!
//! let config = BusConfig::jru_default(64);
//! let mut bus = Bus::new(config.clone(), 1, 0);
//! bus.attach_device(Box::new(SignalGenerator::new(7)));
//!
//! let mut consolidator = CycleConsolidator::new(config.nsdb);
//! let cycle = bus.run_cycle();
//! let request = consolidator
//!     .consolidate(cycle.cycle, cycle.time_ms, &cycle.observations[0].telegrams)
//!     .expect("first cycle logs every signal");
//! assert!(!request.events.is_empty());
//! ```

#![warn(missing_docs)]

pub mod analysis;
mod event;
mod filter;
mod parser;
mod request;

pub use event::{SignalValue, TrainEvent};
pub use filter::ChangeFilter;
pub use parser::{ParseOutcome, SignalParser};
pub use request::{CycleConsolidator, Request, RequestDigest};
