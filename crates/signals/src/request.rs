use std::fmt;

use zugchain_crypto::Digest;
use zugchain_mvb::{Nsdb, Telegram};
use zugchain_wire::{decode_seq, encode_seq, Decode, Encode, Reader, WireError, Writer};

use crate::{ChangeFilter, SignalParser, TrainEvent};

/// The digest identifying a request by payload.
///
/// ZugChain's filtering is *content-based*: "duplicate requests are
/// filtered based on their payload" (paper §III-C). Two requests with the
/// same events have the same digest regardless of which node submitted
/// them.
pub type RequestDigest = Digest;

/// One consolidated BFT request: all juridically relevant signals of one
/// bus cycle (paper §III-B).
///
/// Requests read from the bus are unique (the cycle index and the filtered
/// values make them so), but the *same* request is read by multiple nodes —
/// the ZugChain layer deduplicates them by [`digest`](Request::digest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Bus cycle this request covers.
    pub cycle: u64,
    /// Bus time at the start of the cycle in milliseconds.
    pub time_ms: u64,
    /// Filtered events of this cycle, in bus poll order.
    pub events: Vec<TrainEvent>,
}

impl Request {
    /// Creates a request from already-filtered events.
    pub fn new(cycle: u64, time_ms: u64, events: Vec<TrainEvent>) -> Self {
        Self {
            cycle,
            time_ms,
            events,
        }
    }

    /// The content digest identifying this request's payload.
    pub fn digest(&self) -> RequestDigest {
        Digest::of_encoded(self)
    }

    /// Total encoded size in bytes (the request's network payload).
    pub fn payload_len(&self) -> usize {
        self.encoded_len()
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "request(cycle {}, {} events, digest {})",
            self.cycle,
            self.events.len(),
            self.digest().short()
        )
    }
}

impl Encode for Request {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.cycle);
        w.write_u64(self.time_ms);
        encode_seq(&self.events, w);
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Request {
            cycle: r.read_u64()?,
            time_ms: r.read_u64()?,
            events: decode_seq(r)?,
        })
    }
}

/// Turns per-cycle telegram observations into consolidated requests.
///
/// Combines the [`SignalParser`] and the [`ChangeFilter`]: parse every
/// telegram, admit changed values, and bundle the survivors into one
/// [`Request`]. Returns `None` when nothing in the cycle needs logging.
#[derive(Debug, Clone)]
pub struct CycleConsolidator {
    parser: SignalParser,
    filter: ChangeFilter,
}

impl CycleConsolidator {
    /// Creates a consolidator for the given bus configuration.
    pub fn new(nsdb: Nsdb) -> Self {
        Self {
            parser: SignalParser::new(nsdb),
            filter: ChangeFilter::new(),
        }
    }

    /// Consolidates one cycle's observed telegrams into a request.
    ///
    /// Returns `None` if every signal was unchanged (nothing to log this
    /// cycle).
    pub fn consolidate(
        &mut self,
        cycle: u64,
        time_ms: u64,
        telegrams: &[Telegram],
    ) -> Option<Request> {
        let mut events = Vec::new();
        for telegram in telegrams {
            let (event, _) = self.parser.parse(telegram);
            if self.filter.admit(&event) {
                events.push(event);
            }
        }
        if events.is_empty() {
            None
        } else {
            Some(Request::new(cycle, time_ms, events))
        }
    }

    /// Filter statistics: `(admitted, suppressed)` event counts.
    pub fn filter_stats(&self) -> (u64, u64) {
        (self.filter.admitted(), self.filter.suppressed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zugchain_mvb::PortAddress;

    fn speed_telegram(cycle: u64, speed: u16) -> Telegram {
        Telegram::new(
            PortAddress(0x100),
            cycle,
            cycle * 64,
            speed.to_le_bytes().to_vec(),
        )
    }

    #[test]
    fn request_digest_depends_only_on_content() {
        let e = TrainEvent {
            name: "v_actual".into(),
            port: PortAddress(0x100),
            cycle: 1,
            time_ms: 64,
            value: crate::SignalValue::U16(5),
        };
        let a = Request::new(1, 64, vec![e.clone()]);
        let b = Request::new(1, 64, vec![e]);
        assert_eq!(a.digest(), b.digest());

        let mut c = a.clone();
        c.events[0].value = crate::SignalValue::U16(6);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn request_wire_round_trip() {
        let request = Request::new(
            3,
            192,
            vec![TrainEvent {
                name: "brake_applied".into(),
                port: PortAddress(0x111),
                cycle: 3,
                time_ms: 192,
                value: crate::SignalValue::Bool(true),
            }],
        );
        let back: Request = zugchain_wire::from_bytes(&zugchain_wire::to_bytes(&request)).unwrap();
        assert_eq!(back, request);
        assert_eq!(back.digest(), request.digest());
    }

    #[test]
    fn unchanged_cycle_produces_no_request() {
        let mut consolidator = CycleConsolidator::new(Nsdb::jru_default());
        let first = consolidator.consolidate(0, 0, &[speed_telegram(0, 100)]);
        assert!(first.is_some());
        let second = consolidator.consolidate(1, 64, &[speed_telegram(1, 100)]);
        assert!(second.is_none(), "unchanged speed must be filtered");
    }

    #[test]
    fn changed_cycle_produces_request_with_only_changes() {
        let mut consolidator = CycleConsolidator::new(Nsdb::jru_default());
        let brake = |cycle: u64, applied: u8| {
            Telegram::new(PortAddress(0x111), cycle, cycle * 64, vec![applied])
        };
        consolidator.consolidate(0, 0, &[speed_telegram(0, 100), brake(0, 0)]);
        let request = consolidator
            .consolidate(1, 64, &[speed_telegram(1, 100), brake(1, 1)])
            .expect("brake change must be logged");
        assert_eq!(request.events.len(), 1);
        assert_eq!(request.events[0].name, "brake_applied");
    }

    #[test]
    fn consolidated_requests_are_unique_across_cycles() {
        let mut consolidator = CycleConsolidator::new(Nsdb::jru_default());
        let a = consolidator
            .consolidate(0, 0, &[speed_telegram(0, 100)])
            .unwrap();
        let b = consolidator
            .consolidate(1, 64, &[speed_telegram(1, 101)])
            .unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn empty_cycle_is_none() {
        let mut consolidator = CycleConsolidator::new(Nsdb::jru_default());
        assert!(consolidator.consolidate(0, 0, &[]).is_none());
    }
}
