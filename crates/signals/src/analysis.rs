//! Post-operational analysis of exported ZugChain data.
//!
//! The paper leaves interpretation of the logged data to "lab analysis
//! after export" (§III-B): reconstructing the chain of events, flagging
//! out-of-order or fabricated records, and producing the speed/brake
//! timeline investigators need. This module implements that analysis over
//! decoded [`Request`]s, in a format compatible with the decoded JRU
//! events.
//!
//! # Examples
//!
//! ```
//! use zugchain_mvb::PortAddress;
//! use zugchain_signals::{analysis::Timeline, Request, SignalValue, TrainEvent};
//!
//! let request = Request::new(3, 192, vec![TrainEvent {
//!     name: "emergency_brake".into(),
//!     port: PortAddress(0x112),
//!     cycle: 3,
//!     time_ms: 192,
//!     value: SignalValue::Bool(true),
//! }]);
//! let timeline = Timeline::from_requests([(1, 0, request)]);
//! assert_eq!(timeline.emergency_brakings().count(), 1);
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::{Request, SignalValue, TrainEvent};

/// One analyzed record: a logged event with its ordering metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzedEvent {
    /// BFT sequence number the enclosing request was ordered at.
    pub sn: u64,
    /// Node that received the request from the bus.
    pub origin: u64,
    /// The decoded event.
    pub event: TrainEvent,
}

/// A finding the analysis flags for investigators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Finding {
    /// An event's bus time precedes an earlier-ordered event's bus time
    /// by more than the tolerance — data included long after its
    /// creation, to be "regarded sceptical during analysis" (§III-B).
    OutOfOrder {
        /// Sequence number of the suspicious request.
        sn: u64,
        /// Bus time of the event.
        time_ms: u64,
        /// Highest bus time seen before it.
        latest_before_ms: u64,
    },
    /// An emergency braking was recorded.
    EmergencyBraking {
        /// Bus time of activation.
        time_ms: u64,
        /// Speed at (or nearest before) activation, in 0.01 km/h.
        speed_ckmh: Option<u16>,
    },
    /// An ATP intervention was recorded.
    AtpIntervention {
        /// Bus time of the intervention.
        time_ms: u64,
    },
    /// Doors were released while the train was moving.
    DoorsReleasedWhileMoving {
        /// Bus time of the release.
        time_ms: u64,
        /// Speed at that moment in 0.01 km/h.
        speed_ckmh: u16,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::OutOfOrder {
                sn,
                time_ms,
                latest_before_ms,
            } => write!(
                f,
                "sn {sn}: bus time {time_ms} ms precedes already-logged {latest_before_ms} ms"
            ),
            Finding::EmergencyBraking {
                time_ms,
                speed_ckmh,
            } => match speed_ckmh {
                Some(speed) => write!(
                    f,
                    "[{time_ms} ms] EMERGENCY BRAKE at {:.1} km/h",
                    f64::from(*speed) / 100.0
                ),
                None => write!(f, "[{time_ms} ms] EMERGENCY BRAKE (speed unknown)"),
            },
            Finding::AtpIntervention { time_ms } => {
                write!(f, "[{time_ms} ms] ATP intervention")
            }
            Finding::DoorsReleasedWhileMoving {
                time_ms,
                speed_ckmh,
            } => write!(
                f,
                "[{time_ms} ms] doors released at {:.1} km/h",
                f64::from(*speed_ckmh) / 100.0
            ),
        }
    }
}

/// The reconstructed operational timeline of a (partial) journey.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// All analyzed events in log order (sequence-number order).
    events: Vec<AnalyzedEvent>,
    /// Speed samples `(time_ms, speed in 0.01 km/h)` in log order.
    speed_profile: Vec<(u64, u16)>,
    findings: Vec<Finding>,
}

impl Timeline {
    /// Tolerance for out-of-order bus times before flagging (one typical
    /// soft+hard timeout budget).
    pub const REORDER_TOLERANCE_MS: u64 = 500;

    /// Builds a timeline from decoded requests with their ordering
    /// metadata `(sn, origin, request)`, given in log order.
    pub fn from_requests(requests: impl IntoIterator<Item = (u64, u64, Request)>) -> Self {
        let mut timeline = Timeline::default();
        let mut latest_time_ms = 0u64;
        let mut last_speed: Option<u16> = None;

        for (sn, origin, request) in requests {
            if request.time_ms + Self::REORDER_TOLERANCE_MS < latest_time_ms {
                timeline.findings.push(Finding::OutOfOrder {
                    sn,
                    time_ms: request.time_ms,
                    latest_before_ms: latest_time_ms,
                });
            }
            latest_time_ms = latest_time_ms.max(request.time_ms);

            for event in request.events {
                match (event.name.as_str(), &event.value) {
                    ("v_actual", SignalValue::U16(speed)) => {
                        last_speed = Some(*speed);
                        timeline.speed_profile.push((event.time_ms, *speed));
                    }
                    ("emergency_brake", SignalValue::Bool(true)) => {
                        timeline.findings.push(Finding::EmergencyBraking {
                            time_ms: event.time_ms,
                            speed_ckmh: last_speed,
                        });
                    }
                    ("atp_intervention", SignalValue::Bool(true)) => {
                        timeline.findings.push(Finding::AtpIntervention {
                            time_ms: event.time_ms,
                        });
                    }
                    ("doors_released", SignalValue::Bool(true)) => {
                        if let Some(speed) = last_speed {
                            if speed > 100 {
                                // > 1 km/h: releasing doors while moving.
                                timeline.findings.push(Finding::DoorsReleasedWhileMoving {
                                    time_ms: event.time_ms,
                                    speed_ckmh: speed,
                                });
                            }
                        }
                    }
                    _ => {}
                }
                timeline.events.push(AnalyzedEvent { sn, origin, event });
            }
        }
        timeline
    }

    /// All analyzed events, in log order.
    pub fn events(&self) -> &[AnalyzedEvent] {
        &self.events
    }

    /// All findings, in log order.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// The speed profile `(time_ms, 0.01 km/h)` samples in log order.
    pub fn speed_profile(&self) -> &[(u64, u16)] {
        &self.speed_profile
    }

    /// Emergency brakings found.
    pub fn emergency_brakings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| matches!(f, Finding::EmergencyBraking { .. }))
    }

    /// Out-of-order inclusions to treat sceptically.
    pub fn suspicious_orderings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| matches!(f, Finding::OutOfOrder { .. }))
    }

    /// The highest speed recorded, in 0.01 km/h.
    pub fn max_speed_ckmh(&self) -> Option<u16> {
        self.speed_profile.iter().map(|(_, s)| *s).max()
    }

    /// Events contributed per origin node — useful to spot a node that
    /// fabricated data (its origin id is attached to everything it
    /// injected, §III-B).
    pub fn events_by_origin(&self) -> BTreeMap<u64, usize> {
        let mut counts = BTreeMap::new();
        for analyzed in &self.events {
            *counts.entry(analyzed.origin).or_default() += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zugchain_mvb::PortAddress;

    fn event(name: &str, time_ms: u64, value: SignalValue) -> TrainEvent {
        TrainEvent {
            name: name.into(),
            port: PortAddress(0),
            cycle: time_ms / 64,
            time_ms,
            value,
        }
    }

    fn request(sn: u64, time_ms: u64, events: Vec<TrainEvent>) -> (u64, u64, Request) {
        (sn, sn % 4, Request::new(time_ms / 64, time_ms, events))
    }

    #[test]
    fn speed_profile_is_extracted_in_order() {
        let timeline = Timeline::from_requests([
            request(1, 64, vec![event("v_actual", 64, SignalValue::U16(1000))]),
            request(2, 128, vec![event("v_actual", 128, SignalValue::U16(1200))]),
        ]);
        assert_eq!(timeline.speed_profile(), &[(64, 1000), (128, 1200)]);
        assert_eq!(timeline.max_speed_ckmh(), Some(1200));
    }

    #[test]
    fn emergency_brake_is_paired_with_speed() {
        let timeline = Timeline::from_requests([
            request(1, 64, vec![event("v_actual", 64, SignalValue::U16(14_000))]),
            request(
                2,
                128,
                vec![event("emergency_brake", 128, SignalValue::Bool(true))],
            ),
        ]);
        let brakings: Vec<_> = timeline.emergency_brakings().collect();
        assert_eq!(brakings.len(), 1);
        assert!(matches!(
            brakings[0],
            Finding::EmergencyBraking {
                time_ms: 128,
                speed_ckmh: Some(14_000)
            }
        ));
    }

    #[test]
    fn out_of_order_inclusion_is_flagged() {
        let timeline = Timeline::from_requests([
            request(
                1,
                5_000,
                vec![event("v_actual", 5_000, SignalValue::U16(1))],
            ),
            // Included long after its creation: > tolerance behind.
            request(
                2,
                1_000,
                vec![event("v_actual", 1_000, SignalValue::U16(2))],
            ),
        ]);
        assert_eq!(timeline.suspicious_orderings().count(), 1);
    }

    #[test]
    fn small_reorderings_are_tolerated() {
        let timeline = Timeline::from_requests([
            request(1, 1_000, vec![]),
            request(2, 900, vec![]), // within the 500 ms tolerance
        ]);
        assert_eq!(timeline.suspicious_orderings().count(), 0);
    }

    #[test]
    fn doors_while_moving_is_flagged() {
        let timeline = Timeline::from_requests([
            request(1, 64, vec![event("v_actual", 64, SignalValue::U16(5_000))]),
            request(
                2,
                128,
                vec![event("doors_released", 128, SignalValue::Bool(true))],
            ),
        ]);
        assert!(matches!(
            timeline.findings()[0],
            Finding::DoorsReleasedWhileMoving {
                speed_ckmh: 5_000,
                ..
            }
        ));
    }

    #[test]
    fn doors_at_standstill_are_fine() {
        let timeline = Timeline::from_requests([
            request(1, 64, vec![event("v_actual", 64, SignalValue::U16(0))]),
            request(
                2,
                128,
                vec![event("doors_released", 128, SignalValue::Bool(true))],
            ),
        ]);
        assert!(timeline.findings().is_empty());
    }

    #[test]
    fn origin_attribution_counts_events() {
        let timeline = Timeline::from_requests([
            request(1, 64, vec![event("v_actual", 64, SignalValue::U16(1))]),
            request(2, 128, vec![event("v_actual", 128, SignalValue::U16(2))]),
            request(5, 192, vec![event("v_actual", 192, SignalValue::U16(3))]),
        ]);
        let by_origin = timeline.events_by_origin();
        assert_eq!(by_origin.values().sum::<usize>(), 3);
        assert_eq!(by_origin.get(&1), Some(&2), "origins 1 (sn 1, sn 5)");
    }

    #[test]
    fn findings_render_for_reports() {
        let finding = Finding::EmergencyBraking {
            time_ms: 640,
            speed_ckmh: Some(12_340),
        };
        assert_eq!(
            finding.to_string(),
            "[640 ms] EMERGENCY BRAKE at 123.4 km/h"
        );
    }
}
