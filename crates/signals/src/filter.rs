use std::collections::HashMap;

use zugchain_mvb::PortAddress;

use crate::{SignalValue, TrainEvent};

/// JRU-style on-change filtering.
///
/// JRUs reduce volume by logging analog signals only upon changes (paper
/// §III-A: *"filter the data according to relevance and for higher
/// efficiency as is common practice in JRUs, e.g., to log the speed only
/// upon changes"*). The filter keeps the last logged value per port and
/// passes an event only if its value differs.
///
/// Raw values (corrupted or opaque payloads) always pass: they cannot be
/// compared semantically and must never be dropped.
///
/// # Examples
///
/// ```
/// use zugchain_mvb::PortAddress;
/// use zugchain_signals::{ChangeFilter, SignalValue, TrainEvent};
///
/// let mut filter = ChangeFilter::new();
/// let event = TrainEvent {
///     name: "v_actual".into(),
///     port: PortAddress(0x100),
///     cycle: 0,
///     time_ms: 0,
///     value: SignalValue::U16(100),
/// };
/// assert!(filter.admit(&event));       // first observation logs
/// assert!(!filter.admit(&event));      // unchanged value is filtered
/// let mut changed = event.clone();
/// changed.value = SignalValue::U16(101);
/// assert!(filter.admit(&changed));     // change logs again
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChangeFilter {
    last: HashMap<PortAddress, SignalValue>,
    admitted: u64,
    suppressed: u64,
}

impl ChangeFilter {
    /// Creates a filter with no history: the first event on every port is
    /// admitted.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decides whether `event` must be logged, updating the per-port
    /// history.
    pub fn admit(&mut self, event: &TrainEvent) -> bool {
        let admit = match &event.value {
            // Raw payloads always log: they may be corrupt duplicates, but
            // completeness beats efficiency for unparseable data.
            SignalValue::Raw(_) => true,
            value => self.last.get(&event.port) != Some(value),
        };
        if admit {
            self.last.insert(event.port, event.value.clone());
            self.admitted += 1;
        } else {
            self.suppressed += 1;
        }
        admit
    }

    /// Applies the filter to a batch, keeping admitted events in order.
    pub fn filter_batch(&mut self, events: Vec<TrainEvent>) -> Vec<TrainEvent> {
        events.into_iter().filter(|e| self.admit(e)).collect()
    }

    /// Number of events admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Number of events suppressed as unchanged so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Forgets all history; the next event on every port is admitted again.
    pub fn reset(&mut self) {
        self.last.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(port: u16, value: SignalValue) -> TrainEvent {
        TrainEvent {
            name: format!("sig_{port}"),
            port: PortAddress(port),
            cycle: 0,
            time_ms: 0,
            value,
        }
    }

    #[test]
    fn ports_are_filtered_independently() {
        let mut filter = ChangeFilter::new();
        assert!(filter.admit(&event(1, SignalValue::Bool(true))));
        assert!(filter.admit(&event(2, SignalValue::Bool(true))));
        assert!(!filter.admit(&event(1, SignalValue::Bool(true))));
        assert!(!filter.admit(&event(2, SignalValue::Bool(true))));
    }

    #[test]
    fn value_type_change_is_a_change() {
        let mut filter = ChangeFilter::new();
        assert!(filter.admit(&event(1, SignalValue::U16(1))));
        assert!(filter.admit(&event(1, SignalValue::U32(1))));
    }

    #[test]
    fn raw_values_always_pass() {
        let mut filter = ChangeFilter::new();
        let raw = event(1, SignalValue::Raw(vec![1, 2]));
        assert!(filter.admit(&raw));
        assert!(filter.admit(&raw));
        assert_eq!(filter.suppressed(), 0);
    }

    #[test]
    fn batch_preserves_order_of_admitted_events() {
        let mut filter = ChangeFilter::new();
        filter.admit(&event(1, SignalValue::U16(5)));
        let batch = vec![
            event(1, SignalValue::U16(5)), // suppressed
            event(2, SignalValue::U16(7)), // admitted
            event(1, SignalValue::U16(6)), // admitted (changed)
        ];
        let out = filter.filter_batch(batch);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].port, PortAddress(2));
        assert_eq!(out[1].port, PortAddress(1));
    }

    #[test]
    fn counters_track_decisions() {
        let mut filter = ChangeFilter::new();
        filter.admit(&event(1, SignalValue::U16(5)));
        filter.admit(&event(1, SignalValue::U16(5)));
        filter.admit(&event(1, SignalValue::U16(6)));
        assert_eq!(filter.admitted(), 2);
        assert_eq!(filter.suppressed(), 1);
    }

    #[test]
    fn reset_readmits_unchanged_values() {
        let mut filter = ChangeFilter::new();
        filter.admit(&event(1, SignalValue::U16(5)));
        assert!(!filter.admit(&event(1, SignalValue::U16(5))));
        filter.reset();
        assert!(filter.admit(&event(1, SignalValue::U16(5))));
    }
}
