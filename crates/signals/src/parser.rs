use zugchain_mvb::{Nsdb, SignalKind, Telegram};

use crate::{SignalValue, TrainEvent};

/// How a telegram was turned into an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseOutcome {
    /// The telegram matched its NSDB descriptor and decoded cleanly.
    Decoded,
    /// The payload width did not match the configured kind (e.g. after
    /// corruption); the raw bytes were logged instead.
    WidthMismatch,
    /// No NSDB entry exists for the port; the raw bytes were logged.
    UnknownPort,
}

/// Decodes raw telegrams into typed [`TrainEvent`]s using the NSDB.
///
/// The parser never drops data: telegrams that cannot be decoded are
/// recorded as raw events, because everything sent over the bus must be
/// logged (paper §III-B).
///
/// # Examples
///
/// ```
/// use zugchain_mvb::{Nsdb, PortAddress, Telegram};
/// use zugchain_signals::{SignalParser, SignalValue};
///
/// let parser = SignalParser::new(Nsdb::jru_default());
/// let telegram = Telegram::new(PortAddress(0x100), 0, 0, vec![0x34, 0x12]);
/// let (event, _) = parser.parse(&telegram);
/// assert_eq!(event.name, "v_actual");
/// assert_eq!(event.value, SignalValue::U16(0x1234));
/// ```
#[derive(Debug, Clone)]
pub struct SignalParser {
    nsdb: Nsdb,
}

impl SignalParser {
    /// Creates a parser for the given signal configuration.
    pub fn new(nsdb: Nsdb) -> Self {
        Self { nsdb }
    }

    /// The configuration this parser decodes against.
    pub fn nsdb(&self) -> &Nsdb {
        &self.nsdb
    }

    /// Parses one telegram. Infallible by design: undecodable telegrams
    /// become raw events.
    pub fn parse(&self, telegram: &Telegram) -> (TrainEvent, ParseOutcome) {
        let Some(descriptor) = self.nsdb.lookup(telegram.port) else {
            return (
                TrainEvent {
                    name: format!("unknown_{:#05x}", telegram.port.0),
                    port: telegram.port,
                    cycle: telegram.cycle,
                    time_ms: telegram.time_ms,
                    value: SignalValue::Raw(telegram.payload.clone()),
                },
                ParseOutcome::UnknownPort,
            );
        };

        let payload = telegram.payload.as_slice();
        let decoded = match descriptor.kind {
            _ if payload.len() != descriptor.kind.width() => None,
            SignalKind::Bool => Some(SignalValue::Bool(payload[0] != 0)),
            SignalKind::U16 => Some(SignalValue::U16(u16::from_le_bytes([
                payload[0], payload[1],
            ]))),
            SignalKind::I16 => Some(SignalValue::I16(i16::from_le_bytes([
                payload[0], payload[1],
            ]))),
            SignalKind::U32 => Some(SignalValue::U32(u32::from_le_bytes([
                payload[0], payload[1], payload[2], payload[3],
            ]))),
            SignalKind::Opaque { .. } => Some(SignalValue::Raw(payload.to_vec())),
        };

        let (value, outcome) = match decoded {
            Some(SignalValue::Raw(bytes)) => (SignalValue::Raw(bytes), ParseOutcome::Decoded),
            Some(value) => (value, ParseOutcome::Decoded),
            None => (
                SignalValue::Raw(payload.to_vec()),
                ParseOutcome::WidthMismatch,
            ),
        };

        (
            TrainEvent {
                name: descriptor.name.clone(),
                port: telegram.port,
                cycle: telegram.cycle,
                time_ms: telegram.time_ms,
                value,
            },
            outcome,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zugchain_mvb::PortAddress;

    fn parser() -> SignalParser {
        SignalParser::new(Nsdb::jru_default())
    }

    #[test]
    fn decodes_bool_signal() {
        let telegram = Telegram::new(PortAddress(0x112), 3, 192, vec![1]);
        let (event, outcome) = parser().parse(&telegram);
        assert_eq!(outcome, ParseOutcome::Decoded);
        assert_eq!(event.name, "emergency_brake");
        assert_eq!(event.value, SignalValue::Bool(true));
    }

    #[test]
    fn decodes_u32_signal() {
        let telegram = Telegram::new(PortAddress(0x102), 0, 0, 123_456u32.to_le_bytes().to_vec());
        let (event, outcome) = parser().parse(&telegram);
        assert_eq!(outcome, ParseOutcome::Decoded);
        assert_eq!(event.value, SignalValue::U32(123_456));
    }

    #[test]
    fn decodes_negative_i16() {
        let telegram = Telegram::new(PortAddress(0x103), 0, 0, (-220i16).to_le_bytes().to_vec());
        let (event, _) = parser().parse(&telegram);
        assert_eq!(event.value, SignalValue::I16(-220));
    }

    #[test]
    fn width_mismatch_preserves_raw_bytes() {
        // v_actual is u16 but we deliver 3 bytes (corrupted frame).
        let telegram = Telegram::new(PortAddress(0x100), 0, 0, vec![1, 2, 3]);
        let (event, outcome) = parser().parse(&telegram);
        assert_eq!(outcome, ParseOutcome::WidthMismatch);
        assert_eq!(event.value, SignalValue::Raw(vec![1, 2, 3]));
        assert_eq!(event.name, "v_actual", "name still identifies the port");
    }

    #[test]
    fn unknown_port_is_logged_not_dropped() {
        let telegram = Telegram::new(PortAddress(0xABC), 5, 320, vec![9]);
        let (event, outcome) = parser().parse(&telegram);
        assert_eq!(outcome, ParseOutcome::UnknownPort);
        assert_eq!(event.name, "unknown_0xabc");
        assert_eq!(event.value, SignalValue::Raw(vec![9]));
    }

    #[test]
    fn timestamps_carry_through() {
        let telegram = Telegram::new(PortAddress(0x111), 7, 448, vec![0]);
        let (event, _) = parser().parse(&telegram);
        assert_eq!(event.cycle, 7);
        assert_eq!(event.time_ms, 448);
    }
}
