//! Property tests for the batched signature verifier: the outcome of
//! [`verify_batch`] is a pure function of the *set* of items — it must
//! not depend on how many workers the pool runs, nor on the order the
//! items are presented in. Whatever mix of valid and corrupted
//! signatures the generator produces, every worker count and every
//! permutation must flag exactly the corrupted items.

use proptest::prelude::*;
use zugchain_crypto::{BatchItem, BatchVerifier, KeyPair};

/// Builds `n` items from independently seeded keypairs; items whose
/// index is in `corrupt` get a signature over different bytes than the
/// message carried, so exactly those indices must come back invalid.
fn build_items(n: usize, seed: u64, corrupt: &[bool]) -> (Vec<BatchItem>, Vec<usize>) {
    let mut items = Vec::with_capacity(n);
    let mut expected_invalid = Vec::new();
    for index in 0..n {
        let key = KeyPair::from_seed(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let message = format!("batch item {index} of {n} (seed {seed})").into_bytes();
        let bad = corrupt.get(index).copied().unwrap_or(false);
        let signature = if bad {
            key.sign(b"a different message entirely")
        } else {
            key.sign(&message)
        };
        if bad {
            expected_invalid.push(index);
        }
        items.push((key.public_key(), message, signature));
    }
    (items, expected_invalid)
}

/// Applies a deterministic permutation driven by `order_seed` and
/// returns (shuffled items, position of original index i in the
/// shuffled slice).
fn shuffle(items: &[BatchItem], order_seed: u64) -> (Vec<BatchItem>, Vec<usize>) {
    let n = items.len();
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher–Yates with a splitmix-style stream, so the permutation is
    // reproducible from the seed alone.
    let mut state = order_seed;
    for i in (1..n).rev() {
        state = state
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let j = (state >> 16) as usize % (i + 1);
        order.swap(i, j);
    }
    let shuffled: Vec<BatchItem> = order.iter().map(|&i| items[i].clone()).collect();
    let mut position_of = vec![0usize; n];
    for (position, &original) in order.iter().enumerate() {
        position_of[original] = position;
    }
    (shuffled, position_of)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn verify_batch_is_worker_count_and_order_independent(
        seed in any::<u64>(),
        n in 0usize..20,
        corrupt in proptest::collection::vec(any::<bool>(), 20..21),
        order_seed in any::<u64>(),
    ) {
        let (items, expected_invalid) = build_items(n, seed, &corrupt);
        let (shuffled, position_of) = shuffle(&items, order_seed);

        for workers in [1usize, 2, 4] {
            let verifier = BatchVerifier::new(workers);

            let outcome = verifier.verify(&items);
            prop_assert_eq!(
                outcome.invalid(),
                &expected_invalid[..],
                "workers={}: invalid set in presentation order",
                workers
            );
            prop_assert_eq!(outcome.all_valid(), expected_invalid.is_empty());

            // The same items shuffled: the invalid *positions* move with
            // the permutation, the invalid *items* are identical.
            let shuffled_outcome = verifier.verify(&shuffled);
            let mut expected_shuffled: Vec<usize> = expected_invalid
                .iter()
                .map(|&original| position_of[original])
                .collect();
            expected_shuffled.sort_unstable();
            prop_assert_eq!(
                shuffled_outcome.invalid(),
                &expected_shuffled[..],
                "workers={}: invalid set under permutation",
                workers
            );
        }
    }
}
