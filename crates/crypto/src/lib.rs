//! Cryptographic primitives for ZugChain.
//!
//! All ZugChain nodes and data centers hold an Ed25519 key pair; every
//! protocol message (ordering, checkpoint, view change, export) is signed,
//! and blocks are chained by SHA-256 digests. The paper uses `ring`; this
//! reproduction uses the equivalent pure-Rust `ed25519-dalek` and `sha2`
//! (see `DESIGN.md` §3).
//!
//! # Examples
//!
//! ```
//! use zugchain_crypto::{Digest, KeyPair};
//!
//! let key = KeyPair::from_seed(7);
//! let payload = b"speed=142.5 km/h";
//! let signature = key.sign(payload);
//! assert!(key.public_key().verify(payload, &signature).is_ok());
//!
//! let digest = Digest::of(payload);
//! assert_ne!(digest, Digest::of(b"speed=0.0 km/h"));
//! ```

#![warn(missing_docs)]

mod batch;
mod digest;
mod keys;
mod keystore;
mod mac;

pub use batch::{verify_batch, BatchItem, BatchOutcome, BatchVerifier};
pub use digest::Digest;
pub use keys::{KeyPair, PublicKey, Signature, SignatureError};
pub use keystore::Keystore;
pub use mac::{MacKey, MacTag, SessionKeys};
