use std::fmt;

use ed25519_dalek::{Signer as _, Verifier as _};
use rand::{Rng as _, SeedableRng as _}; // `Rng` provides `fill_bytes`
use zugchain_wire::{Decode, Encode, Reader, WireError, Writer};

/// Error returned when a signature fails verification.
///
/// Deliberately carries no detail: distinguishing *why* a signature is
/// invalid would leak nothing useful to correct code and plenty to faulty
/// code paths that should all be treated identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureError;

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "signature verification failed")
    }
}

impl std::error::Error for SignatureError {}

/// An Ed25519 signing key pair held by a ZugChain node or data center.
///
/// # Examples
///
/// ```
/// use zugchain_crypto::KeyPair;
///
/// let key = KeyPair::from_seed(3);
/// let sig = key.sign(b"door opened");
/// assert!(key.public_key().verify(b"door opened", &sig).is_ok());
/// assert!(key.public_key().verify(b"door closed", &sig).is_err());
/// ```
#[derive(Clone)]
pub struct KeyPair {
    signing: ed25519_dalek::SigningKey,
}

impl KeyPair {
    /// Derives a key pair deterministically from a seed.
    ///
    /// Used throughout tests and the simulator so that runs are
    /// reproducible. Key material is expanded from the seed with a seeded
    /// PRNG, not used as the raw secret directly.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5a47_4348_4149_4e00);
        let mut secret = [0u8; 32];
        rng.fill_bytes(&mut secret);
        Self {
            signing: ed25519_dalek::SigningKey::from_bytes(&secret),
        }
    }

    /// Constructs a key pair from raw secret bytes.
    pub fn from_secret_bytes(secret: &[u8; 32]) -> Self {
        Self {
            signing: ed25519_dalek::SigningKey::from_bytes(secret),
        }
    }

    /// The public half of this key pair.
    pub fn public_key(&self) -> PublicKey {
        PublicKey(self.signing.verifying_key())
    }

    /// Signs `message`, returning a detached signature.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature(self.signing.sign(message))
    }
}

impl fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print secret material.
        write!(f, "KeyPair(public: {:?})", self.public_key())
    }
}

/// An Ed25519 public key identifying a node or data center.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PublicKey(ed25519_dalek::VerifyingKey);

impl PublicKey {
    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// [`SignatureError`] if the signature does not verify under this key.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), SignatureError> {
        self.0
            .verify(message, &signature.0)
            .map_err(|_| SignatureError)
    }

    /// The 32 raw public key bytes.
    pub fn to_bytes(self) -> [u8; 32] {
        self.0.to_bytes()
    }

    /// Parses a public key from raw bytes.
    ///
    /// # Errors
    ///
    /// [`SignatureError`] if the bytes are not a valid curve point.
    pub fn try_from_bytes(bytes: &[u8; 32]) -> Result<Self, SignatureError> {
        ed25519_dalek::VerifyingKey::from_bytes(bytes)
            .map(PublicKey)
            .map_err(|_| SignatureError)
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = self.0.to_bytes();
        write!(
            f,
            "PublicKey({:02x}{:02x}{:02x}{:02x}…)",
            bytes[0], bytes[1], bytes[2], bytes[3]
        )
    }
}

impl std::hash::Hash for PublicKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bytes().hash(state);
    }
}

impl Encode for PublicKey {
    fn encode(&self, w: &mut Writer) {
        w.write_raw(&self.0.to_bytes());
    }

    fn encoded_len(&self) -> usize {
        32
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = <[u8; 32]>::decode(r)?;
        PublicKey::try_from_bytes(&bytes).map_err(|_| WireError::InvalidLength {
            expected: 32,
            actual: 32,
        })
    }
}

/// A detached Ed25519 signature (64 bytes).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature(ed25519_dalek::Signature);

impl Signature {
    /// The 64 raw signature bytes.
    pub fn to_bytes(self) -> [u8; 64] {
        self.0.to_bytes()
    }

    /// Constructs a signature from raw bytes.
    ///
    /// Any 64 bytes parse; validity is only determined by
    /// [`PublicKey::verify`].
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        Signature(ed25519_dalek::Signature::from_bytes(bytes))
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = self.0.to_bytes();
        write!(
            f,
            "Signature({:02x}{:02x}{:02x}{:02x}…)",
            bytes[0], bytes[1], bytes[2], bytes[3]
        )
    }
}

impl Encode for Signature {
    fn encode(&self, w: &mut Writer) {
        w.write_raw(&self.0.to_bytes());
    }

    fn encoded_len(&self) -> usize {
        64
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = <[u8; 64]>::decode(r)?;
        Ok(Signature::from_bytes(&bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_and_verify() {
        let key = KeyPair::from_seed(1);
        let sig = key.sign(b"msg");
        assert!(key.public_key().verify(b"msg", &sig).is_ok());
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let key = KeyPair::from_seed(1);
        let sig = key.sign(b"msg");
        assert_eq!(key.public_key().verify(b"other", &sig), Err(SignatureError));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let a = KeyPair::from_seed(1);
        let b = KeyPair::from_seed(2);
        let sig = a.sign(b"msg");
        assert_eq!(b.public_key().verify(b"msg", &sig), Err(SignatureError));
    }

    #[test]
    fn seeded_keys_are_deterministic_and_distinct() {
        assert_eq!(
            KeyPair::from_seed(9).public_key(),
            KeyPair::from_seed(9).public_key()
        );
        assert_ne!(
            KeyPair::from_seed(9).public_key(),
            KeyPair::from_seed(10).public_key()
        );
    }

    #[test]
    fn public_key_wire_round_trip() {
        let pk = KeyPair::from_seed(4).public_key();
        let back: PublicKey = zugchain_wire::from_bytes(&zugchain_wire::to_bytes(&pk)).unwrap();
        assert_eq!(back, pk);
    }

    #[test]
    fn signature_wire_round_trip() {
        let key = KeyPair::from_seed(4);
        let sig = key.sign(b"payload");
        let back: Signature = zugchain_wire::from_bytes(&zugchain_wire::to_bytes(&sig)).unwrap();
        assert_eq!(back, sig);
        assert!(key.public_key().verify(b"payload", &back).is_ok());
    }

    #[test]
    fn debug_never_prints_secret() {
        let key = KeyPair::from_seed(5);
        let repr = format!("{key:?}");
        assert!(repr.contains("PublicKey"));
    }
}
