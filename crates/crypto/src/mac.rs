//! Pairwise session MACs for the replica-to-replica fast path.
//!
//! Classic PBFT replaces public-key signatures with vectors of MACs on the
//! common path: a MAC costs two hash compressions instead of a curve
//! operation, and in a permissioned deployment every pair of replicas can
//! share a symmetric session key. The crucial limitation is that a MAC is
//! only convincing to the *one* peer holding the session key — it is not
//! transferable evidence, so anything that must be shown to a third party
//! (view-change certificates, checkpoint proofs, audit bundles) keeps a
//! real signature.
//!
//! Session keys here are derived deterministically from the permissioned
//! keyset: a master secret is hashed from the ordered `(id, public key)`
//! table and pairwise keys are HMAC-derived from it. A real deployment
//! would run an authenticated key exchange instead; the derivation is
//! consistent with this reproduction's deterministic, seed-driven key
//! material and keeps the trust-boundary analysis identical (an attacker
//! outside the permissioned keyset cannot compute the session keys).
//!
//! # Examples
//!
//! ```
//! use zugchain_crypto::{Keystore, SessionKeys};
//!
//! let (_, store) = Keystore::generate(4, 7);
//! let at_one = SessionKeys::derive(&store, 1);
//! let at_two = SessionKeys::derive(&store, 2);
//!
//! let tag = at_one.tag_for(2, b"commit vote").unwrap();
//! assert!(at_two.verify_from(1, b"commit vote", &tag));
//! assert!(!at_two.verify_from(1, b"other vote", &tag));
//! ```

use std::collections::BTreeMap;
use std::fmt;

use sha2::{Digest as _, Sha256};
use zugchain_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::Keystore;

/// HMAC-SHA256 block size in bytes.
const BLOCK_LEN: usize = 64;

/// Domain-separation prefix for the keyset master secret.
const MASTER_DOMAIN: &[u8] = b"zugchain/mac/master/v1";

/// Domain-separation prefix for pairwise session keys.
const PAIR_DOMAIN: &[u8] = b"zugchain/mac/pair/v1";

/// Standard HMAC-SHA256 (RFC 2104) over the `sha2` implementation.
fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut padded = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let hashed: [u8; 32] = Sha256::digest(key).into();
        padded[..32].copy_from_slice(&hashed);
    } else {
        padded[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha256::new();
    let mut ipad = padded;
    for byte in &mut ipad {
        *byte ^= 0x36;
    }
    inner.update(ipad);
    inner.update(message);
    let inner_hash = inner.finalize();

    let mut outer = Sha256::new();
    let mut opad = padded;
    for byte in &mut opad {
        *byte ^= 0x5c;
    }
    outer.update(opad);
    outer.update(inner_hash);
    outer.finalize().into()
}

/// Constant-shape comparison of two 32-byte tags.
///
/// The comparison walks all 32 bytes regardless of where the first
/// mismatch occurs, so the accept/reject timing does not depend on how
/// much of a forged tag happens to match.
fn tags_equal(a: &[u8; 32], b: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// A symmetric session key shared by one ordered pair of replicas.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct MacKey([u8; 32]);

impl MacKey {
    /// Constructs a key from raw bytes (tests and key-exchange stubs).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        MacKey(bytes)
    }

    /// Computes the authentication tag for `message` under this key.
    pub fn tag(&self, message: &[u8]) -> MacTag {
        MacTag(hmac_sha256(&self.0, message))
    }

    /// Verifies `tag` over `message` under this key.
    pub fn verify(&self, message: &[u8], tag: &MacTag) -> bool {
        tags_equal(&self.tag(message).0, &tag.0)
    }
}

impl fmt::Debug for MacKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "MacKey(…)")
    }
}

/// A 32-byte HMAC-SHA256 authentication tag.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacTag([u8; 32]);

impl MacTag {
    /// The raw tag bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Constructs a tag from raw bytes.
    ///
    /// Any 32 bytes parse; validity is only determined by
    /// [`MacKey::verify`].
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        MacTag(bytes)
    }
}

impl fmt::Debug for MacTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MacTag({:02x}{:02x}{:02x}{:02x}…)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl Encode for MacTag {
    fn encode(&self, w: &mut Writer) {
        w.write_raw(&self.0);
    }

    fn encoded_len(&self) -> usize {
        32
    }
}

impl Decode for MacTag {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MacTag(<[u8; 32]>::decode(r)?))
    }
}

/// One replica's view of the pairwise session keys of a deployment.
///
/// Holds the symmetric key shared with every *other* participant; a
/// replica never needs a session key with itself (self-addressed votes
/// are recorded directly, not authenticated over the wire).
#[derive(Clone)]
pub struct SessionKeys {
    me: u64,
    keys: BTreeMap<u64, MacKey>,
}

impl SessionKeys {
    /// Derives the session keys held by replica `me` from a master secret.
    ///
    /// The pairwise key for `(i, j)` is symmetric — both sides derive the
    /// same key by hashing the unordered pair — so a tag computed by
    /// either endpoint verifies at the other.
    pub fn from_master(
        master: &[u8; 32],
        me: u64,
        participants: impl IntoIterator<Item = u64>,
    ) -> Self {
        let mut keys = BTreeMap::new();
        for peer in participants {
            if peer == me {
                continue;
            }
            let (lo, hi) = (me.min(peer), me.max(peer));
            let mut material = Vec::with_capacity(PAIR_DOMAIN.len() + 16);
            material.extend_from_slice(PAIR_DOMAIN);
            material.extend_from_slice(&lo.to_le_bytes());
            material.extend_from_slice(&hi.to_le_bytes());
            keys.insert(peer, MacKey(hmac_sha256(master, &material)));
        }
        SessionKeys { me, keys }
    }

    /// Derives session keys for replica `me` from the permissioned keyset.
    ///
    /// The master secret is a hash of the full ordered `(id, public key)`
    /// table, so all replicas configured with the same keystore derive
    /// matching pairwise keys, and any change to the membership or to a
    /// key rolls every session key.
    pub fn derive(keystore: &Keystore, me: u64) -> Self {
        let mut hasher = Sha256::new();
        hasher.update(MASTER_DOMAIN);
        for (id, key) in keystore.iter() {
            hasher.update(id.to_le_bytes());
            hasher.update(key.to_bytes());
        }
        let master: [u8; 32] = hasher.finalize().into();
        Self::from_master(&master, me, keystore.iter().map(|(id, _)| id))
    }

    /// The replica id these keys belong to.
    pub fn local_id(&self) -> u64 {
        self.me
    }

    /// Iterates over the peer ids a session key exists for, in id order.
    pub fn peers(&self) -> impl Iterator<Item = u64> + '_ {
        self.keys.keys().copied()
    }

    /// Computes the tag authenticating `message` to `peer`.
    ///
    /// Returns `None` when no session key exists for `peer` (unknown id,
    /// or `peer == me`).
    pub fn tag_for(&self, peer: u64, message: &[u8]) -> Option<MacTag> {
        self.keys.get(&peer).map(|key| key.tag(message))
    }

    /// Verifies a tag addressed to this replica by `peer`.
    pub fn verify_from(&self, peer: u64, message: &[u8], tag: &MacTag) -> bool {
        match self.keys.get(&peer) {
            Some(key) => key.verify(message, tag),
            None => false,
        }
    }
}

impl fmt::Debug for SessionKeys {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SessionKeys(me: {}, peers: {})",
            self.me,
            self.keys.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmac_sha256_rfc4231_case_one() {
        // RFC 4231 test case 1: 20 bytes of 0x0b, "Hi There".
        let tag = hmac_sha256(&[0x0b; 20], b"Hi There");
        let expected = [
            0xb0, 0x34, 0x4c, 0x61, 0xd8, 0xdb, 0x38, 0x53, 0x5c, 0xa8, 0xaf, 0xce, 0xaf, 0x0b,
            0xf1, 0x2b, 0x88, 0x1d, 0xc2, 0x00, 0xc9, 0x83, 0x3d, 0xa7, 0x26, 0xe9, 0x37, 0x6c,
            0x2e, 0x32, 0xcf, 0xf7,
        ];
        assert_eq!(tag, expected);
    }

    #[test]
    fn hmac_sha256_rfc4231_long_key() {
        // RFC 4231 test case 6: 131-byte key forces the pre-hash path.
        let tag = hmac_sha256(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        let expected = [
            0x60, 0xe4, 0x31, 0x59, 0x1e, 0xe0, 0xb6, 0x7f, 0x0d, 0x8a, 0x26, 0xaa, 0xcb, 0xf5,
            0xb7, 0x7f, 0x8e, 0x0b, 0xc6, 0x21, 0x37, 0x28, 0xc5, 0x14, 0x05, 0x46, 0x04, 0x0f,
            0x0e, 0xe3, 0x7f, 0x54,
        ];
        assert_eq!(tag, expected);
    }

    #[test]
    fn pairwise_keys_are_symmetric() {
        let (_, store) = Keystore::generate(4, 11);
        for a in 0..4u64 {
            for b in 0..4u64 {
                if a == b {
                    continue;
                }
                let at_a = SessionKeys::derive(&store, a);
                let at_b = SessionKeys::derive(&store, b);
                let tag = at_a.tag_for(b, b"m").unwrap();
                assert!(at_b.verify_from(a, b"m", &tag), "{a} -> {b}");
            }
        }
    }

    #[test]
    fn distinct_pairs_get_distinct_keys() {
        let (_, store) = Keystore::generate(4, 11);
        let at_zero = SessionKeys::derive(&store, 0);
        let tag_for_one = at_zero.tag_for(1, b"m").unwrap();
        let tag_for_two = at_zero.tag_for(2, b"m").unwrap();
        assert_ne!(tag_for_one, tag_for_two);
    }

    #[test]
    fn wrong_peer_or_message_rejects() {
        let (_, store) = Keystore::generate(4, 11);
        let at_zero = SessionKeys::derive(&store, 0);
        let at_one = SessionKeys::derive(&store, 1);
        let tag = at_zero.tag_for(1, b"m").unwrap();
        assert!(at_one.verify_from(0, b"m", &tag));
        assert!(!at_one.verify_from(0, b"n", &tag));
        assert!(!at_one.verify_from(2, b"m", &tag));
        assert!(!at_one.verify_from(99, b"m", &tag));
    }

    #[test]
    fn different_keyset_rejects() {
        let (_, store_a) = Keystore::generate(4, 11);
        let (_, store_b) = Keystore::generate(4, 12);
        let honest = SessionKeys::derive(&store_a, 0);
        let outsider = SessionKeys::derive(&store_b, 0);
        let forged = outsider.tag_for(1, b"m").unwrap();
        let receiver = SessionKeys::derive(&store_a, 1);
        assert!(!receiver.verify_from(0, b"m", &forged));
        assert!(receiver.verify_from(0, b"m", &honest.tag_for(1, b"m").unwrap()));
    }

    #[test]
    fn no_self_key() {
        let (_, store) = Keystore::generate(4, 11);
        let keys = SessionKeys::derive(&store, 2);
        assert!(keys.tag_for(2, b"m").is_none());
        assert_eq!(keys.peers().collect::<Vec<_>>(), vec![0, 1, 3]);
    }

    #[test]
    fn tag_wire_round_trip() {
        let tag = MacKey::from_bytes([7; 32]).tag(b"payload");
        let bytes = zugchain_wire::to_bytes(&tag);
        assert_eq!(bytes.len(), 32);
        let back: MacTag = zugchain_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, tag);
    }
}
