use std::fmt;

use sha2::{Digest as _, Sha256};
use zugchain_wire::{Decode, Encode, Reader, WireError, Writer};

/// A SHA-256 digest.
///
/// Digests chain blocks together (each block header stores the previous
/// block's digest) and identify requests, blocks, and checkpoints in
/// protocol messages.
///
/// # Examples
///
/// ```
/// use zugchain_crypto::Digest;
///
/// let d = Digest::of(b"event payload");
/// assert_eq!(d, Digest::of(b"event payload"));
/// assert_ne!(d, Digest::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest([u8; 32]);

impl Digest {
    /// The all-zero digest, used as the previous-hash of the genesis block.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Hashes `data` with SHA-256.
    pub fn of(data: &[u8]) -> Self {
        Digest(Sha256::digest(data).into())
    }

    /// Hashes the canonical encoding of `value`.
    pub fn of_encoded<T: Encode + ?Sized>(value: &T) -> Self {
        Self::of(&zugchain_wire::to_bytes(value))
    }

    /// Builds a digest over several byte slices, hashed in order.
    ///
    /// Each part is length-delimited internally, so `chain([a, b])` and
    /// `chain([ab])` differ even when the concatenated bytes are equal.
    pub fn chain<'a>(parts: impl IntoIterator<Item = &'a [u8]>) -> Self {
        let mut hasher = Sha256::new();
        for part in parts {
            hasher.update((part.len() as u64).to_le_bytes());
            hasher.update(part);
        }
        Digest(hasher.finalize().into())
    }

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Constructs a digest from raw bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// A short hex prefix for human-readable logs.
    pub fn short(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for byte in &self.0 {
            write!(f, "{byte:02x}")?;
        }
        Ok(())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

impl Encode for Digest {
    fn encode(&self, w: &mut Writer) {
        w.write_raw(&self.0);
    }

    fn encoded_len(&self) -> usize {
        32
    }
}

impl Decode for Digest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Digest(<[u8; 32]>::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_known_vector() {
        // SHA-256("abc") from FIPS 180-2.
        let d = Digest::of(b"abc");
        assert_eq!(
            d.to_string(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_empty_vector() {
        assert_eq!(
            Digest::of(b"").to_string(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn chain_is_length_delimited() {
        let a = Digest::chain([b"ab".as_slice(), b"c".as_slice()]);
        let b = Digest::chain([b"a".as_slice(), b"bc".as_slice()]);
        assert_ne!(a, b, "part boundaries must affect the digest");
    }

    #[test]
    fn wire_round_trip() {
        let d = Digest::of(b"block");
        let bytes = zugchain_wire::to_bytes(&d);
        assert_eq!(bytes.len(), 32);
        let back: Digest = zugchain_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn debug_is_short_and_nonempty() {
        let repr = format!("{:?}", Digest::ZERO);
        assert!(repr.starts_with("Digest(00000000"));
    }
}
