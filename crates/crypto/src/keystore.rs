use std::collections::BTreeMap;

use crate::{KeyPair, PublicKey, Signature, SignatureError};

/// The set of public keys of a permissioned ZugChain deployment.
///
/// Participants (nodes and data centers) are known and authenticated at
/// startup; membership only changes during train maintenance or overhaul
/// (paper §II-B). Keys are indexed by a small numeric id — the node or
/// data-center identifier used in protocol messages.
///
/// # Examples
///
/// ```
/// use zugchain_crypto::{KeyPair, Keystore};
///
/// let keys: Vec<KeyPair> = (0..4).map(KeyPair::from_seed).collect();
/// let store = Keystore::new(keys.iter().map(|k| k.public_key()));
///
/// let sig = keys[2].sign(b"request");
/// assert!(store.verify(2, b"request", &sig).is_ok());
/// assert!(store.verify(1, b"request", &sig).is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Keystore {
    keys: BTreeMap<u64, PublicKey>,
}

impl Keystore {
    /// Builds a keystore assigning ids `0..n` to the given keys in order.
    pub fn new(keys: impl IntoIterator<Item = PublicKey>) -> Self {
        Self {
            keys: keys
                .into_iter()
                .enumerate()
                .map(|(i, k)| (i as u64, k))
                .collect(),
        }
    }

    /// Builds a keystore with explicit id assignments.
    pub fn with_ids(keys: impl IntoIterator<Item = (u64, PublicKey)>) -> Self {
        Self {
            keys: keys.into_iter().collect(),
        }
    }

    /// Generates `n` deterministic key pairs and the matching keystore.
    ///
    /// Convenience for tests and simulations: node `i` gets
    /// `KeyPair::from_seed(seed_base + i)`.
    pub fn generate(n: usize, seed_base: u64) -> (Vec<KeyPair>, Keystore) {
        let pairs: Vec<KeyPair> = (0..n as u64)
            .map(|i| KeyPair::from_seed(seed_base + i))
            .collect();
        let store = Keystore::new(pairs.iter().map(KeyPair::public_key));
        (pairs, store)
    }

    /// Adds or replaces the key for `id`.
    pub fn insert(&mut self, id: u64, key: PublicKey) {
        self.keys.insert(id, key);
    }

    /// Looks up the public key registered for `id`.
    pub fn get(&self, id: u64) -> Option<&PublicKey> {
        self.keys.get(&id)
    }

    /// Number of registered participants.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` if no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Verifies that `signature` over `message` was produced by `id`.
    ///
    /// # Errors
    ///
    /// [`SignatureError`] if `id` is unknown or the signature is invalid.
    pub fn verify(
        &self,
        id: u64,
        message: &[u8],
        signature: &Signature,
    ) -> Result<(), SignatureError> {
        let key = self.keys.get(&id).ok_or(SignatureError)?;
        key.verify(message, signature)
    }

    /// Iterates over `(id, public_key)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &PublicKey)> {
        self.keys.iter().map(|(&id, key)| (id, key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_fails_verification() {
        let (pairs, store) = Keystore::generate(4, 100);
        let sig = pairs[0].sign(b"x");
        assert!(store.verify(99, b"x", &sig).is_err());
    }

    #[test]
    fn generate_assigns_sequential_ids() {
        let (pairs, store) = Keystore::generate(4, 0);
        assert_eq!(store.len(), 4);
        for (i, pair) in pairs.iter().enumerate() {
            assert_eq!(store.get(i as u64), Some(&pair.public_key()));
        }
    }

    #[test]
    fn with_ids_allows_sparse_ids() {
        let dc_key = KeyPair::from_seed(500).public_key();
        let store = Keystore::with_ids([(1000, dc_key)]);
        assert_eq!(store.get(1000), Some(&dc_key));
        assert_eq!(store.get(0), None);
    }

    #[test]
    fn iter_is_ordered_by_id() {
        let (_, store) = Keystore::generate(3, 7);
        let ids: Vec<u64> = store.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
