//! Batched signature verification over a small worker pool.
//!
//! Consensus verifies signatures in bursts — a round's worth of buffered
//! prepare votes at quorum time, the view-change votes inside a NewView —
//! and each verification is independent of the others. [`verify_batch`]
//! fans a slice of `(public key, message, signature)` items across a few
//! persistent worker threads and merges the per-item results into one
//! deterministic [`BatchOutcome`]: the outcome depends only on the items,
//! never on worker count, chunk boundaries, or scheduling order, because
//! every item is verified independently and failures are reported by
//! input index in sorted order.
//!
//! The all-or-nothing answer is [`BatchOutcome::all_valid`]; callers that
//! need per-item fallback (drop the one bad vote, keep the rest) read
//! [`BatchOutcome::invalid`].

use std::sync::{Mutex, OnceLock};
use std::thread;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::{PublicKey, Signature};

/// One verification work item: `(signer, message bytes, signature)`.
pub type BatchItem = (PublicKey, Vec<u8>, Signature);

/// Below this many items the channel round-trip costs more than it saves,
/// so the batch is verified inline on the calling thread.
const PARALLEL_THRESHOLD: usize = 8;

/// The deterministic result of a batch verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    invalid: Vec<usize>,
}

impl BatchOutcome {
    /// `true` when every item in the batch verified.
    pub fn all_valid(&self) -> bool {
        self.invalid.is_empty()
    }

    /// Indices (into the input slice) of the items that failed, ascending.
    pub fn invalid(&self) -> &[usize] {
        &self.invalid
    }

    /// Whether the item at `index` verified.
    pub fn is_valid(&self, index: usize) -> bool {
        self.invalid.binary_search(&index).is_err()
    }
}

struct Job {
    base: usize,
    items: Vec<BatchItem>,
}

struct JobResult {
    invalid: Vec<usize>,
}

fn verify_chunk(base: usize, items: &[BatchItem]) -> Vec<usize> {
    items
        .iter()
        .enumerate()
        .filter(|(_, (key, message, signature))| key.verify(message, signature).is_err())
        .map(|(i, _)| base + i)
        .collect()
}

/// A pool of persistent verification workers.
///
/// Most callers should use the module-level [`verify_batch`], which
/// shares one process-wide pool; constructing a `BatchVerifier` directly
/// is for tests (pinning the worker count) and long-lived components
/// that want a dedicated pool.
pub struct BatchVerifier {
    jobs: Vec<Sender<Job>>,
    results: Mutex<Receiver<JobResult>>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl BatchVerifier {
    /// Spawns a pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (result_tx, result_rx) = unbounded::<JobResult>();
        let mut jobs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (job_tx, job_rx) = unbounded::<Job>();
            let results = result_tx.clone();
            handles.push(thread::spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    let invalid = verify_chunk(job.base, &job.items);
                    if results.send(JobResult { invalid }).is_err() {
                        break;
                    }
                }
            }));
            jobs.push(job_tx);
        }
        BatchVerifier {
            jobs,
            results: Mutex::new(result_rx),
            handles,
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.jobs.len()
    }

    /// Verifies every item, returning which indices failed.
    ///
    /// The result is a pure function of `items`: small batches verify
    /// inline, large ones are split into contiguous chunks across the
    /// workers, and the merged failure list is sorted by input index
    /// either way.
    pub fn verify(&self, items: &[BatchItem]) -> BatchOutcome {
        if items.len() < PARALLEL_THRESHOLD || self.jobs.len() <= 1 {
            return BatchOutcome {
                invalid: verify_chunk(0, items),
            };
        }

        // Hold the result receiver for the whole dispatch + collect so
        // concurrent calls cannot interleave each other's results.
        let results = self.results.lock().expect("verifier pool poisoned");
        let chunk_len = items.len().div_ceil(self.jobs.len());
        let mut outstanding = 0;
        for (chunk_index, chunk) in items.chunks(chunk_len).enumerate() {
            let job = Job {
                base: chunk_index * chunk_len,
                items: chunk.to_vec(),
            };
            self.jobs[chunk_index % self.jobs.len()]
                .send(job)
                .expect("verifier worker exited");
            outstanding += 1;
        }

        let mut invalid = Vec::new();
        for _ in 0..outstanding {
            let result = results.recv().expect("verifier worker exited");
            invalid.extend(result.invalid);
        }
        invalid.sort_unstable();
        BatchOutcome { invalid }
    }
}

impl Drop for BatchVerifier {
    fn drop(&mut self) {
        // Dropping the job senders ends each worker's recv loop.
        self.jobs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn shared_pool() -> &'static BatchVerifier {
    static POOL: OnceLock<BatchVerifier> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 4);
        BatchVerifier::new(workers)
    })
}

/// Verifies a batch of `(public key, message, signature)` items on the
/// shared process-wide worker pool.
pub fn verify_batch(items: &[BatchItem]) -> BatchOutcome {
    shared_pool().verify(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KeyPair;

    fn items(n: usize, corrupt: &[usize]) -> Vec<BatchItem> {
        (0..n)
            .map(|i| {
                let key = KeyPair::from_seed(i as u64);
                let message = format!("vote {i}").into_bytes();
                let mut signature = key.sign(&message);
                if corrupt.contains(&i) {
                    let mut bytes = signature.to_bytes();
                    bytes[0] ^= 0xff;
                    signature = crate::Signature::from_bytes(&bytes);
                }
                (key.public_key(), message, signature)
            })
            .collect()
    }

    #[test]
    fn empty_batch_is_valid() {
        assert!(verify_batch(&[]).all_valid());
    }

    #[test]
    fn all_valid_batch() {
        let outcome = verify_batch(&items(20, &[]));
        assert!(outcome.all_valid());
        assert!(outcome.is_valid(0));
        assert!(outcome.is_valid(19));
    }

    #[test]
    fn per_item_fallback_reports_exact_indices() {
        let outcome = verify_batch(&items(20, &[3, 17]));
        assert!(!outcome.all_valid());
        assert_eq!(outcome.invalid(), &[3, 17]);
        assert!(outcome.is_valid(2));
        assert!(!outcome.is_valid(3));
        assert!(!outcome.is_valid(17));
    }

    #[test]
    fn small_batch_takes_inline_path() {
        // Below the parallel threshold: still correct, still sorted.
        let outcome = verify_batch(&items(3, &[1]));
        assert_eq!(outcome.invalid(), &[1]);
    }

    #[test]
    fn outcome_is_independent_of_worker_count() {
        let batch = items(33, &[0, 8, 32]);
        let expected = BatchVerifier::new(1).verify(&batch);
        for workers in [2, 3, 4, 7] {
            let pool = BatchVerifier::new(workers);
            assert_eq!(pool.verify(&batch), expected, "workers={workers}");
        }
        assert_eq!(expected.invalid(), &[0, 8, 32]);
    }

    #[test]
    fn pool_survives_many_rounds() {
        let pool = BatchVerifier::new(2);
        for round in 0..10 {
            let corrupt = if round % 2 == 0 { vec![round] } else { vec![] };
            let outcome = pool.verify(&items(12, &corrupt));
            assert_eq!(outcome.invalid(), corrupt.as_slice(), "round {round}");
        }
    }
}
