use std::fmt;

/// How replica-to-replica ordering traffic is authenticated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuthMode {
    /// Every message carries an Ed25519 signature (the original protocol).
    #[default]
    Sig,
    /// Common-path messages carry pairwise session MACs; messages whose
    /// authentication must outlive a view (prepares and checkpoints feed
    /// view-change certificates, view changes *are* certificates) still
    /// carry a signature, because MACs are not transferable evidence.
    MacWithSigFallback,
}

/// How prepare/commit votes travel between replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommMode {
    /// Every replica broadcasts its votes to every other replica — the
    /// original PBFT exchange, O(n²) messages per slot.
    #[default]
    AllToAll,
    /// SBFT-style linear fast path: votes go only to a deterministic
    /// per-slot collector, which broadcasts one 2f+1 certificate. A
    /// per-phase timer falls back to the all-to-all exchange when the
    /// collector stays silent, so neither safety nor liveness ever
    /// depends on the collector.
    Collector,
}

/// Static configuration of a PBFT group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Total number of replicas, n ≥ 3f+1.
    pub n: usize,
    /// Maximum number of Byzantine replicas tolerated.
    pub f: usize,
    /// Window of sequence numbers accepted above the low watermark.
    pub watermark_window: u64,
    /// How long the replica waits for a `NewView` after voting for a view
    /// change before escalating to the next view, in milliseconds. The
    /// replica arms this timer itself via `Effect::SetTimer`.
    pub view_change_timeout_ms: u64,
    /// Maximum requests bundled under one preprepare. `1` (the default)
    /// reproduces the unbatched protocol exactly; larger values amortize
    /// one three-phase round over up to this many requests.
    pub max_batch_size: usize,
    /// How long a partially filled batch may wait for more requests
    /// before the primary flushes it, in milliseconds. `0` (the default)
    /// flushes at the next timer edge, keeping light-load latency
    /// essentially unchanged.
    pub batch_delay_ms: u64,
    /// Capacity of the future-view message buffer. When full, the
    /// highest-view message loses — an arrival for a view at or beyond
    /// the farthest buffered one is dropped, anything nearer evicts that
    /// farthest entry — so messages for the nearest future views, the
    /// ones needed to make progress after a partition heals, survive.
    pub max_buffered_messages: usize,
    /// How this replica authenticates its outgoing ordering traffic.
    /// Receivers accept either form regardless of their own mode, so
    /// mixed-mode groups interoperate.
    pub auth_mode: AuthMode,
    /// How this replica routes its prepare/commit votes. Receivers
    /// accept both direct votes and certificates regardless of their own
    /// mode, so mixed-mode groups interoperate.
    pub comm_mode: CommMode,
    /// How long a replica in [`CommMode::Collector`] waits for the
    /// collector's certificate before re-broadcasting its own vote
    /// all-to-all, in milliseconds. Must stay well below
    /// `view_change_timeout_ms` so a silent collector degrades to the
    /// quadratic exchange instead of a view change.
    pub collector_timeout_ms: u64,
}

/// Error constructing a [`Config`] with too few replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidGroupSize {
    /// The rejected group size.
    pub n: usize,
}

impl fmt::Display for InvalidGroupSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "group of {} replicas cannot tolerate any fault (need n >= 4)",
            self.n
        )
    }
}

impl std::error::Error for InvalidGroupSize {}

impl Config {
    /// Creates a configuration for `n` replicas tolerating
    /// `f = (n - 1) / 3` faults.
    ///
    /// # Errors
    ///
    /// [`InvalidGroupSize`] if `n < 4`.
    pub fn new(n: usize) -> Result<Self, InvalidGroupSize> {
        if n < 4 {
            return Err(InvalidGroupSize { n });
        }
        Ok(Self {
            n,
            f: (n - 1) / 3,
            watermark_window: 256,
            view_change_timeout_ms: 500,
            max_batch_size: 1,
            batch_delay_ms: 0,
            max_buffered_messages: 8192,
            auth_mode: AuthMode::Sig,
            comm_mode: CommMode::AllToAll,
            collector_timeout_ms: 150,
        })
    }

    /// Overrides the watermark window.
    #[must_use]
    pub fn with_watermark_window(mut self, window: u64) -> Self {
        self.watermark_window = window;
        self
    }

    /// Overrides the view-change timeout.
    #[must_use]
    pub fn with_view_change_timeout(mut self, timeout_ms: u64) -> Self {
        self.view_change_timeout_ms = timeout_ms;
        self
    }

    /// Overrides the maximum batch size (values below 1 are clamped to 1).
    #[must_use]
    pub fn with_max_batch_size(mut self, max_batch_size: usize) -> Self {
        self.max_batch_size = max_batch_size.max(1);
        self
    }

    /// Overrides the partial-batch flush delay.
    #[must_use]
    pub fn with_batch_delay(mut self, delay_ms: u64) -> Self {
        self.batch_delay_ms = delay_ms;
        self
    }

    /// Overrides the future-view buffer capacity.
    #[must_use]
    pub fn with_max_buffered_messages(mut self, capacity: usize) -> Self {
        self.max_buffered_messages = capacity.max(1);
        self
    }

    /// Overrides the authentication mode for outgoing ordering traffic.
    #[must_use]
    pub fn with_auth_mode(mut self, auth_mode: AuthMode) -> Self {
        self.auth_mode = auth_mode;
        self
    }

    /// Overrides the vote-routing mode.
    #[must_use]
    pub fn with_comm_mode(mut self, comm_mode: CommMode) -> Self {
        self.comm_mode = comm_mode;
        self
    }

    /// Overrides the collector fallback timeout.
    #[must_use]
    pub fn with_collector_timeout(mut self, timeout_ms: u64) -> Self {
        self.collector_timeout_ms = timeout_ms;
        self
    }

    /// The quorum size for prepares, commits and checkpoints: 2f+1.
    pub fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// Number of matching prepare messages from *other* replicas required
    /// in the prepare phase: 2f (the preprepare stands in for the
    /// primary's prepare).
    pub fn prepare_quorum(&self) -> usize {
        2 * self.f
    }

    /// Votes needed before a view change actually happens: f+1 suspicions
    /// guarantee at least one correct suspecter.
    pub fn suspicion_quorum(&self) -> usize {
        self.f + 1
    }

    /// The primary of `view`: round-robin over the group.
    pub fn primary_of(&self, view: u64) -> crate::NodeId {
        crate::NodeId(view % self.n as u64)
    }

    /// The collector for slot `sn` in `view` under
    /// [`CommMode::Collector`]: rotates per slot so no single replica
    /// carries the whole aggregation load, and shifts with the view so a
    /// crashed collector stops recurring for the same slot after a view
    /// change. May coincide with the primary — that is fine, the
    /// collector role only aggregates votes it would receive anyway.
    pub fn collector_of(&self, view: u64, sn: u64) -> crate::NodeId {
        crate::NodeId((view + sn) % self.n as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_replicas_tolerate_one_fault() {
        let config = Config::new(4).unwrap();
        assert_eq!(config.f, 1);
        assert_eq!(config.quorum(), 3);
        assert_eq!(config.prepare_quorum(), 2);
        assert_eq!(config.suspicion_quorum(), 2);
    }

    #[test]
    fn batching_defaults_to_unbatched_protocol() {
        let config = Config::new(4).unwrap();
        assert_eq!(config.max_batch_size, 1);
        assert_eq!(config.batch_delay_ms, 0);
        assert_eq!(
            Config::new(4)
                .unwrap()
                .with_max_batch_size(0)
                .max_batch_size,
            1
        );
        assert_eq!(
            Config::new(4)
                .unwrap()
                .with_max_batch_size(16)
                .with_batch_delay(5)
                .batch_delay_ms,
            5
        );
        assert_eq!(
            Config::new(4)
                .unwrap()
                .with_max_buffered_messages(64)
                .max_buffered_messages,
            64
        );
    }

    #[test]
    fn seven_replicas_tolerate_two_faults() {
        let config = Config::new(7).unwrap();
        assert_eq!(config.f, 2);
        assert_eq!(config.quorum(), 5);
    }

    #[test]
    fn tiny_groups_are_rejected() {
        assert!(Config::new(3).is_err());
        assert!(Config::new(0).is_err());
    }

    #[test]
    fn primary_rotates_round_robin() {
        let config = Config::new(4).unwrap();
        assert_eq!(config.primary_of(0), crate::NodeId(0));
        assert_eq!(config.primary_of(5), crate::NodeId(1));
        assert_eq!(config.primary_of(7), crate::NodeId(3));
    }

    #[test]
    fn collector_rotates_per_slot_and_view() {
        let config = Config::new(4).unwrap();
        assert_eq!(config.comm_mode, CommMode::AllToAll, "quadratic default");
        assert_eq!(config.collector_of(0, 1), crate::NodeId(1));
        assert_eq!(config.collector_of(0, 2), crate::NodeId(2));
        assert_eq!(config.collector_of(0, 4), crate::NodeId(0));
        // The view shifts the rotation, so a crashed collector is not
        // re-elected for the same slot after a view change.
        assert_eq!(config.collector_of(1, 1), crate::NodeId(2));
        let tuned = Config::new(4)
            .unwrap()
            .with_comm_mode(CommMode::Collector)
            .with_collector_timeout(40);
        assert_eq!(tuned.comm_mode, CommMode::Collector);
        assert_eq!(tuned.collector_timeout_ms, 40);
    }
}
