use std::collections::{BTreeMap, VecDeque};

use zugchain_crypto::{verify_batch, BatchItem, Digest, KeyPair, Keystore, SessionKeys, Signature};
use zugchain_machine::{Effect, Machine};
use zugchain_telemetry::{Counter, Gauge, Histogram, Span, Stage, Telemetry};
use zugchain_wire::{derive_span_id, derive_trace_id};

use crate::messages::{Commit, VoteCert};
use crate::{
    AuthMode, AuthVerdict, Checkpoint, CheckpointProof, CommMode, Config, Message, NewView, NodeId,
    PrePrepare, Prepare, PreparedCert, ProposedBatch, ProposedRequest, SignedMessage, ViewChange,
};

/// The replica's timer vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReplicaTimer {
    /// Waiting for the `NewView` of this target view; on expiry the
    /// replica escalates to the next view.
    ViewChange(u64),
    /// A partially filled batch is waiting on the primary; on expiry the
    /// primary flushes it so light load never waits for a full batch.
    BatchFlush,
    /// Collector mode: waiting for the prepare certificate of this slot;
    /// on expiry the replica re-broadcasts its prepare all-to-all.
    CollectorPrepare(u64),
    /// Collector mode: waiting for the commit certificate of this slot;
    /// on expiry the replica re-broadcasts its commit all-to-all.
    CollectorCommit(u64),
}

/// An application up-call of the replica state machine (Table I ①).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum ReplicaEvent {
    /// A request is totally ordered: the `DECIDE(r, sn)` up-call of
    /// Table I. Emitted in strict sequence order.
    Decide {
        /// The assigned sequence number.
        sn: u64,
        /// The ordered request (may be a no-op gap filler).
        request: ProposedRequest,
    },
    /// A view change completed: the `NEWPRIMARY` up-call of Table I.
    NewPrimary {
        /// The new view number.
        view: u64,
        /// The primary of that view.
        primary: NodeId,
    },
    /// A valid preprepare was accepted — the ZugChain layer uses this as
    /// an early indicator that the request will be ordered and cancels
    /// its soft timeout (§III-C optimization).
    PrePrepareSeen {
        /// Sequence number assigned by the primary.
        sn: u64,
        /// Content digest of the proposed request's payload.
        payload_digest: Digest,
    },
    /// A checkpoint became stable (2f+1 matching signatures). The export
    /// protocol persists and serves these proofs.
    StableCheckpoint {
        /// The verifiable checkpoint proof.
        proof: CheckpointProof,
    },
    /// The replica discovered a stable checkpoint beyond what it decided:
    /// it missed requests and the application must fetch state (blocks)
    /// from peers — §III-D scenario (ii).
    NeedStateTransfer {
        /// First missing sequence number.
        from_sn: u64,
        /// The stable checkpoint sequence number to catch up to.
        to_sn: u64,
    },
}

/// An effect of the replica state machine, to be executed by the runtime.
///
/// The shared [`Effect`] vocabulary of `zugchain-machine`: network sends,
/// broadcasts, timers (the replica arms its own view-change timer), and
/// [`ReplicaEvent`] up-calls.
pub type ReplicaEffect = Effect<NodeId, SignedMessage, ReplicaTimer, ReplicaEvent>;

/// An input to the replica when driven through the [`Machine`] trait.
///
/// Mirrors the interface ① down-calls of Table I plus network delivery;
/// the granular inherent methods ([`Replica::propose`],
/// [`Replica::on_message`], …) remain available for embedding the
/// replica inside a larger machine, as the ZugChain node does.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum ReplicaInput {
    /// A signed protocol message from the network.
    Message(SignedMessage),
    /// `PROPOSE(r)`: propose a request (primary).
    Propose(ProposedRequest),
    /// `SUSPECT(id)`: suspect a node.
    Suspect(NodeId),
    /// The application snapshot at `sn` (checkpoint declaration).
    RecordCheckpoint {
        /// Covered sequence number.
        sn: u64,
        /// Application state digest (ZugChain: the block hash).
        state_digest: Digest,
    },
}

/// Counters exposed for evaluation and debugging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Valid protocol messages processed.
    pub messages_processed: u64,
    /// Messages dropped due to bad signatures.
    pub invalid_signatures: u64,
    /// Messages dropped as stale/out-of-window/wrong-view.
    pub ignored: u64,
    /// Requests decided.
    pub decided: u64,
    /// Batches decided — `decided / batches_decided` is the mean batch
    /// occupancy actually agreed, the quantity the batching trade-off is
    /// tuned by.
    pub batches_decided: u64,
    /// View changes completed.
    pub view_changes: u64,
    /// Messages accepted via the session-MAC fast path (no signature
    /// verified on arrival).
    pub auth_mac_hits: u64,
    /// MAC-form messages accepted via their embedded fallback signature
    /// (no usable tag for this replica).
    pub auth_sig_fallbacks: u64,
    /// Individual signature verifications performed (arrival checks plus
    /// every item of each deferred `verify_batch` call) — the
    /// crypto-work axis of the communication-mode evaluation.
    pub signatures_verified: u64,
    /// Collector mode: certificates this replica assembled and
    /// broadcast as the slot's collector.
    pub collector_certs_sent: u64,
    /// Collector mode: certificates received and absorbed as votes.
    pub collector_certs_absorbed: u64,
    /// Collector mode: phases that fell back to the all-to-all exchange
    /// because the collector's certificate did not arrive in time.
    pub collector_fallbacks: u64,
    /// Signatures inside received certificates that failed verification
    /// (a forging collector cannot smuggle votes, only waste work).
    pub cert_invalid_signatures: u64,
}

/// One prepare or checkpoint vote, with its deferred-verification state.
///
/// Votes arriving over the MAC fast path are authentic (the MAC proved
/// the sender) but their embedded *signature* — the part that becomes
/// transferable view-change evidence — has not been checked yet. The
/// check is deferred to quorum time, where a whole round's worth verifies
/// through `verify_batch` in one call; votes whose signature turns out
/// missing or invalid are dropped before any certificate is built.
#[derive(Debug, Clone, Copy)]
struct Vote {
    digest: Digest,
    signature: Option<Signature>,
    /// `true` once `signature` has been verified (at arrival for the
    /// signature path, at quorum time for the MAC fast path).
    verified: bool,
}

/// Ordering state for one batch, keyed by its base sequence number; the
/// batch occupies `sn ..= preprepare.end_sn()`.
#[derive(Debug, Default)]
struct Slot {
    /// Accepted preprepare for the current view.
    preprepare: Option<PrePrepare>,
    /// Batch digest of the accepted preprepare, hashed once on accept
    /// and reused by every quorum check instead of re-hashing the batch
    /// per prepare/commit arrival.
    batch_digest: Option<Digest>,
    /// Payload content digests of the accepted preprepare's requests, in
    /// batch order — cached for the in-flight lookups the ZugChain layer
    /// performs per open request.
    payload_digests: Vec<Digest>,
    /// Prepare votes: sender → vote over the batch digest.
    prepares: BTreeMap<NodeId, Vote>,
    /// Commit votes: sender → vote over the batch digest. In all-to-all
    /// mode commits never become evidence and carry no signature; in
    /// collector mode they embed one so the collector can assemble a
    /// transferable commit certificate.
    commits: BTreeMap<NodeId, Vote>,
    prepared: bool,
    committed: bool,
    decided: bool,
    /// Collector mode: a [`ReplicaTimer::CollectorPrepare`] is armed for
    /// this slot (cleared on prepare-phase completion or expiry).
    collector_prepare_armed: bool,
    /// Collector mode: a [`ReplicaTimer::CollectorCommit`] is armed for
    /// this slot (cleared on commit-phase completion or expiry).
    collector_commit_armed: bool,
    /// Collector mode: this replica already re-broadcast its own prepare
    /// all-to-all for this slot (fallback timer or echo) — at most once
    /// per slot, so a fallback storm stays O(n²) like plain PBFT.
    prepare_rebroadcast: bool,
    /// Same for its own commit.
    commit_rebroadcast: bool,
    /// Trace-clock readings of the three protocol transitions, used as
    /// span boundaries (0 when telemetry is disabled): preprepare
    /// accepted, prepare quorum reached, commit quorum reached.
    t_accept: u64,
    t_prepared: u64,
    t_committed: u64,
}

impl Slot {
    fn matching_prepares(&self, digest: &Digest) -> usize {
        self.prepares
            .values()
            .filter(|vote| vote.digest == *digest)
            .count()
    }

    fn matching_commits(&self, digest: &Digest) -> usize {
        self.commits
            .values()
            .filter(|vote| vote.digest == *digest)
            .count()
    }
}

/// The two voting phases a collector aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CertPhase {
    Prepare,
    Commit,
}

impl CertPhase {
    fn timer(self, sn: u64) -> ReplicaTimer {
        match self {
            CertPhase::Prepare => ReplicaTimer::CollectorPrepare(sn),
            CertPhase::Commit => ReplicaTimer::CollectorCommit(sn),
        }
    }
}

/// Checkpoint votes being collected for one sequence number.
#[derive(Debug, Default)]
struct CheckpointVotes {
    /// sender → vote over the state digest.
    votes: BTreeMap<NodeId, Vote>,
}

/// State of an in-progress view change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ViewChangeState {
    /// The view this replica is trying to move to.
    target: u64,
}

/// A PBFT replica: the deterministic state machine at the heart of
/// ZugChain's ordering (see the crate docs for the interface mapping to
/// Cached registry handles for the replica's instrument points. All
/// handles are disabled (single-branch no-ops) until
/// [`Replica::set_telemetry`] resolves them against a live registry —
/// resolution happens once, so the hot path never takes the registry
/// lock.
#[derive(Debug, Clone, Default)]
struct ReplicaMetrics {
    preprepares: Counter,
    prepares: Counter,
    commits: Counter,
    prepare_certs: Counter,
    commit_certs: Counter,
    collector_fallbacks: Counter,
    checkpoint_msgs: Counter,
    view_change_msgs: Counter,
    new_view_msgs: Counter,
    invalid_signatures: Counter,
    auth_mac_hits: Counter,
    auth_sig_fallbacks: Counter,
    ignored: Counter,
    decided: Counter,
    batches_decided: Counter,
    view_changes: Counter,
    buffer_evictions: Counter,
    view: Gauge,
    decided_up_to: Gauge,
    future_buffer_len: Gauge,
    backlog_len: Gauge,
    batch_occupancy: Histogram,
}

impl ReplicaMetrics {
    fn resolve(telemetry: &Telemetry) -> Self {
        let msg =
            |kind: &str| telemetry.counter_with("zugchain_pbft_messages_total", &[("type", kind)]);
        Self {
            preprepares: msg("preprepare"),
            prepares: msg("prepare"),
            commits: msg("commit"),
            prepare_certs: msg("prepare-cert"),
            commit_certs: msg("commit-cert"),
            collector_fallbacks: telemetry.counter("zugchain_pbft_collector_fallbacks_total"),
            checkpoint_msgs: msg("checkpoint"),
            view_change_msgs: msg("viewchange"),
            new_view_msgs: msg("newview"),
            invalid_signatures: telemetry.counter("zugchain_pbft_invalid_signatures_total"),
            auth_mac_hits: telemetry.counter("zugchain_pbft_auth_mac_fast_path_total"),
            auth_sig_fallbacks: telemetry.counter("zugchain_pbft_auth_sig_fallback_total"),
            ignored: telemetry.counter("zugchain_pbft_ignored_total"),
            decided: telemetry.counter("zugchain_pbft_decided_total"),
            batches_decided: telemetry.counter("zugchain_pbft_batches_decided_total"),
            view_changes: telemetry.counter("zugchain_pbft_view_changes_total"),
            buffer_evictions: telemetry.counter("zugchain_pbft_future_buffer_evictions_total"),
            view: telemetry.gauge("zugchain_pbft_view"),
            decided_up_to: telemetry.gauge("zugchain_pbft_decided_up_to"),
            future_buffer_len: telemetry.gauge("zugchain_pbft_future_buffer_len"),
            backlog_len: telemetry.gauge("zugchain_pbft_backlog_len"),
            batch_occupancy: telemetry.histogram("zugchain_pbft_batch_occupancy"),
        }
    }

    fn for_message(&self, message: &Message) -> &Counter {
        match message {
            Message::PrePrepare(_) => &self.preprepares,
            Message::Prepare(_) => &self.prepares,
            Message::Commit(_) => &self.commits,
            Message::Checkpoint(_) => &self.checkpoint_msgs,
            Message::ViewChange(_) => &self.view_change_msgs,
            Message::NewView(_) => &self.new_view_msgs,
            Message::PrepareCert(_) => &self.prepare_certs,
            Message::CommitCert(_) => &self.commit_certs,
        }
    }
}

/// the paper's Table I).
#[derive(Debug)]
pub struct Replica {
    id: NodeId,
    config: Config,
    key: KeyPair,
    keystore: Keystore,
    /// Pairwise session keys derived from the keystore, for the MAC
    /// fast path (used for verification in every mode; used for signing
    /// only under [`AuthMode::MacWithSigFallback`]).
    session: SessionKeys,

    view: u64,
    phase: Option<ViewChangeState>,
    /// Primary only: next sequence number to assign.
    next_sn: u64,
    /// Primary only: proposals waiting for watermark headroom.
    backlog: VecDeque<ProposedRequest>,
    /// Last stable checkpoint sequence number (low watermark).
    low_watermark: u64,
    /// All decides up to this sequence number have been emitted.
    decided_up_to: u64,
    slots: BTreeMap<u64, Slot>,
    checkpoints: BTreeMap<u64, CheckpointVotes>,
    last_stable_proof: Option<CheckpointProof>,
    /// View-change votes per target view.
    view_change_votes: BTreeMap<u64, BTreeMap<NodeId, SignedMessage>>,
    /// Ordering messages that arrived during a view change or for a view
    /// ahead of ours (e.g. prepares racing the `NewView` on another
    /// link). Replayed after entering a view — dropping them instead
    /// wedges this replica behind the in-order execution point and
    /// causes spurious suspicions. Each entry carries its
    /// signature-checked flag from arrival time.
    buffered: VecDeque<(SignedMessage, bool)>,
    /// The view-change timer the replica currently has armed (the target
    /// view it is waiting on), if any. The replica owns this bookkeeping
    /// so every runtime gets identical escalation behaviour for free.
    armed_vc_timer: Option<u64>,
    /// Primary only: whether a [`ReplicaTimer::BatchFlush`] is armed for
    /// a partially filled batch sitting in the backlog.
    armed_batch_timer: bool,
    effects: Vec<ReplicaEffect>,
    stats: ReplicaStats,
    /// Registry handles for the instrument points, resolved once by
    /// [`Replica::set_telemetry`]; disabled (free) by default.
    metrics: ReplicaMetrics,
    /// Span-emission handle (disabled by default: every causal-tracing
    /// site is a single branch when observability is off).
    telemetry: Telemetry,
    /// Trace-clock reading at which each open proposal entered this
    /// primary's backlog, keyed by payload digest — the start of its
    /// `batch_flush` span. Only populated when telemetry is enabled;
    /// entries are consumed at flush and swept at decide.
    proposed_at: BTreeMap<Digest, u64>,
    /// Mutation hook (chaos harness only): when set, this replica
    /// equivocates as primary — see [`Replica::enable_equivocation_bug`].
    #[cfg(feature = "mutation-hooks")]
    equivocate: bool,
}

impl Replica {
    /// Creates a replica in view 0.
    ///
    /// # Panics
    ///
    /// Panics if `keystore` does not contain a key for every replica id in
    /// `0..config.n`.
    pub fn new(id: NodeId, config: Config, key: KeyPair, keystore: Keystore) -> Self {
        for replica in 0..config.n as u64 {
            assert!(
                keystore.get(replica).is_some(),
                "keystore is missing replica {replica}"
            );
        }
        let session = SessionKeys::derive(&keystore, id.0);
        Self {
            id,
            config,
            key,
            keystore,
            session,
            view: 0,
            phase: None,
            next_sn: 1,
            backlog: VecDeque::new(),
            low_watermark: 0,
            decided_up_to: 0,
            slots: BTreeMap::new(),
            checkpoints: BTreeMap::new(),
            last_stable_proof: None,
            view_change_votes: BTreeMap::new(),
            buffered: VecDeque::new(),
            armed_vc_timer: None,
            armed_batch_timer: false,
            effects: Vec::new(),
            stats: ReplicaStats::default(),
            metrics: ReplicaMetrics::default(),
            telemetry: Telemetry::disabled(),
            proposed_at: BTreeMap::new(),
            #[cfg(feature = "mutation-hooks")]
            equivocate: false,
        }
    }

    /// Attaches a telemetry handle: resolves the replica's registry
    /// metrics once (cached handles; a disabled handle keeps every
    /// instrument point free) and publishes the current view and decide
    /// horizon.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = ReplicaMetrics::resolve(telemetry);
        self.metrics.view.set(self.view as i64);
        self.metrics.decided_up_to.set(self.decided_up_to as i64);
        self.telemetry = telemetry.clone();
    }

    /// Creates a replica resuming from a stable checkpoint — the restart
    /// path after a power loss, once the application has reloaded its
    /// state (blocks) from disk. Ordering continues after the
    /// checkpoint's sequence number; the view restarts at 0 (all replicas
    /// of a train power-cycle together, so they re-align from scratch).
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new), if the keystore is incomplete.
    pub fn resume(
        id: NodeId,
        config: Config,
        key: KeyPair,
        keystore: Keystore,
        last_stable: CheckpointProof,
    ) -> Self {
        let mut replica = Self::new(id, config, key, keystore);
        let sn = last_stable.checkpoint.sn;
        replica.low_watermark = sn;
        replica.decided_up_to = sn;
        replica.next_sn = sn + 1;
        replica.last_stable_proof = Some(last_stable);
        replica
    }

    /// This replica's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current view number.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// The primary of the current view.
    pub fn primary(&self) -> NodeId {
        self.config.primary_of(self.view)
    }

    /// Returns `true` if this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.primary() == self.id
    }

    /// Returns `true` while a view change is in progress.
    pub fn in_view_change(&self) -> bool {
        self.phase.is_some()
    }

    /// The last stable checkpoint sequence number.
    pub fn low_watermark(&self) -> u64 {
        self.low_watermark
    }

    /// Proof of the last stable checkpoint, once one exists.
    pub fn last_stable_proof(&self) -> Option<&CheckpointProof> {
        self.last_stable_proof.as_ref()
    }

    /// The group configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The keystore of the permissioned group.
    pub fn keystore(&self) -> &Keystore {
        &self.keystore
    }

    /// Snapshot of undecided slots for diagnostics:
    /// `(sn, has_preprepare, prepares, commits, prepared, committed)`.
    pub fn slot_snapshot(&self) -> Vec<(u64, bool, usize, usize, bool, bool)> {
        self.slots
            .iter()
            .filter(|(_, slot)| !slot.decided)
            .map(|(sn, slot)| {
                (
                    *sn,
                    slot.preprepare.is_some(),
                    slot.prepares.len(),
                    slot.commits.len(),
                    slot.prepared,
                    slot.committed,
                )
            })
            .collect()
    }

    /// `(view, low watermark, decided_up_to, next_sn, buffered)` snapshot.
    pub fn progress_snapshot(&self) -> (u64, u64, u64, u64, usize) {
        (
            self.view,
            self.low_watermark,
            self.decided_up_to,
            self.next_sn,
            self.buffered.len(),
        )
    }

    /// Returns `true` if a request with this payload digest has a running
    /// consensus instance (a preprepare accepted but not yet decided).
    ///
    /// The ZugChain layer uses this after a view change: open requests
    /// are re-proposed only when they have *no* running instance
    /// (paper §III-C) — re-proposing one that the `NewView` already
    /// re-preprepared would order it twice and falsely incriminate the
    /// new primary.
    pub fn has_in_flight_payload(&self, digest: &Digest) -> bool {
        self.slots
            .values()
            .any(|slot| !slot.decided && slot.payload_digests.contains(digest))
    }

    /// Statistics counters.
    pub fn stats(&self) -> ReplicaStats {
        self.stats
    }

    /// Rough resident memory of consensus state in bytes (payloads held in
    /// slots and backlog) — used by the evaluation's memory accounting.
    pub fn approx_memory_bytes(&self) -> usize {
        let slot_bytes: usize = self
            .slots
            .values()
            .map(|slot| {
                slot.preprepare
                    .as_ref()
                    .map_or(0, |pp| pp.batch.payload_bytes() + 128)
                    + (slot.prepares.len() + slot.commits.len()) * 104
            })
            .sum();
        let backlog_bytes: usize = self.backlog.iter().map(|r| r.payload.len() + 64).sum();
        slot_bytes + backlog_bytes
    }

    /// Drains the effects produced since the last call.
    ///
    /// The runtime must execute them in order.
    pub fn drain_effects(&mut self) -> Vec<ReplicaEffect> {
        std::mem::take(&mut self.effects)
    }

    /// Authenticates an outgoing message under the configured
    /// [`AuthMode`], applying the per-type evidence policy.
    fn authenticate(&self, message: Message) -> SignedMessage {
        match self.config.auth_mode {
            AuthMode::Sig => SignedMessage::sign(self.id, message, &self.key),
            AuthMode::MacWithSigFallback => match &message {
                // Prepare and checkpoint signatures become transferable
                // evidence (prepared certificates, checkpoint proofs), so
                // the fast path embeds a signature it skips verifying.
                Message::Prepare(_) | Message::Checkpoint(_) => {
                    SignedMessage::sign_mac(self.id, message, &self.session, Some(&self.key))
                }
                // Preprepares never outlive their view: MAC-only, no
                // signature computed at all. Commits are the same in
                // all-to-all mode, but under the collector they must
                // embed the signature the commit certificate carries.
                Message::PrePrepare(_) => {
                    SignedMessage::sign_mac(self.id, message, &self.session, None)
                }
                Message::Commit(_) => {
                    let sig_key =
                        (self.config.comm_mode == CommMode::Collector).then_some(&self.key);
                    SignedMessage::sign_mac(self.id, message, &self.session, sig_key)
                }
                // Certificate envelopes carry their evidence *inside*
                // (the aggregated vote signatures are the authority, the
                // envelope only names a sender): MAC-only.
                Message::PrepareCert(_) | Message::CommitCert(_) => {
                    SignedMessage::sign_mac(self.id, message, &self.session, None)
                }
                // View-change votes *are* the certificate a NewView
                // carries; NewViews are checked by recomputation but keep
                // the uniform signed form.
                Message::ViewChange(_) | Message::NewView(_) => {
                    SignedMessage::sign(self.id, message, &self.key)
                }
            },
        }
    }

    fn broadcast(&mut self, message: Message) -> SignedMessage {
        let signed = self.authenticate(message);
        self.effects.push(Effect::Broadcast {
            message: signed.clone(),
        });
        signed
    }

    fn send_to(&mut self, to: NodeId, message: Message) -> SignedMessage {
        let signed = self.authenticate(message);
        self.effects.push(Effect::Send {
            to,
            message: signed.clone(),
        });
        signed
    }

    /// Routes an own prepare vote per the communication mode: broadcast
    /// in all-to-all, a single send to the slot's collector (plus a
    /// fallback timer) under the collector. The collector itself sends
    /// nothing — its vote is already in its own slot.
    fn send_prepare_vote(&mut self, prepare: Prepare) -> SignedMessage {
        let sn = prepare.sn;
        match self.config.comm_mode {
            CommMode::AllToAll => self.broadcast(Message::Prepare(prepare)),
            CommMode::Collector => {
                let collector = self.config.collector_of(self.view, sn);
                if collector == self.id {
                    return self.authenticate(Message::Prepare(prepare));
                }
                let signed = self.send_to(collector, Message::Prepare(prepare));
                self.arm_collector_timer(sn, CertPhase::Prepare);
                signed
            }
        }
    }

    /// Routes an own commit vote, as [`send_prepare_vote`](Self::send_prepare_vote).
    fn send_commit_vote(&mut self, commit: Commit) -> SignedMessage {
        let sn = commit.sn;
        match self.config.comm_mode {
            CommMode::AllToAll => self.broadcast(Message::Commit(commit)),
            CommMode::Collector => {
                let collector = self.config.collector_of(self.view, sn);
                if collector == self.id {
                    return self.authenticate(Message::Commit(commit));
                }
                let signed = self.send_to(collector, Message::Commit(commit));
                self.arm_collector_timer(sn, CertPhase::Commit);
                signed
            }
        }
    }

    /// Arms the per-phase collector fallback timer for `sn`, once.
    fn arm_collector_timer(&mut self, sn: u64, phase: CertPhase) {
        let armed = self.slots.get_mut(&sn).is_some_and(|slot| match phase {
            CertPhase::Prepare => !std::mem::replace(&mut slot.collector_prepare_armed, true),
            CertPhase::Commit => !std::mem::replace(&mut slot.collector_commit_armed, true),
        });
        if armed {
            self.effects.push(Effect::SetTimer {
                id: phase.timer(sn),
                duration_ms: self.config.collector_timeout_ms,
            });
        }
    }

    // ------------------------------------------------------------------
    // Interface ① down-calls (Table I)
    // ------------------------------------------------------------------

    /// `PROPOSE(r)`: proposes a request to the consensus group.
    ///
    /// Only meaningful on the primary; backups' proposals are silently
    /// buffered until they become primary (the ZugChain layer routes
    /// proposals to the primary, so this is a defensive backstop).
    ///
    /// The primary accumulates open requests and assigns one batch of up
    /// to [`Config::max_batch_size`] per base sequence number. Full
    /// batches flush immediately; a partial batch flushes after
    /// [`Config::batch_delay_ms`], so latency under light load is
    /// unchanged (with a batch size of 1 every proposal is a full batch
    /// and the timer is never armed).
    pub fn propose(&mut self, request: ProposedRequest) {
        if self.telemetry.is_enabled() && !request.is_noop() {
            // Start of the request's `batch_flush` span: when it entered
            // the backlog (clamped forward to its origin bus time so the
            // per-stage timeline never runs backwards across nodes).
            let entered = self.telemetry.now_ms().max(request.time_ms);
            self.proposed_at
                .entry(request.payload_digest())
                .or_insert(entered);
        }
        self.backlog.push_back(request);
        if self.is_primary() && !self.in_view_change() {
            self.flush_backlog(false);
        }
        self.metrics.backlog_len.set(self.backlog.len() as i64);
    }

    /// Proposes backlog requests as batches. Only full batches flush
    /// unless `force_partial` (the batch-delay timer fired); a leftover
    /// partial batch arms the flush timer.
    fn flush_backlog(&mut self, force_partial: bool) {
        let window_end = self.low_watermark + self.config.watermark_window;
        while !self.backlog.is_empty() {
            let base = self.next_sn;
            if base > window_end {
                // No headroom: wait for a checkpoint to advance the
                // window (stabilize re-flushes; no point spinning the
                // flush timer until then).
                self.metrics.backlog_len.set(self.backlog.len() as i64);
                return;
            }
            let headroom = (window_end - base + 1) as usize;
            let max = self.config.max_batch_size.max(1).min(headroom);
            if self.backlog.len() < max && !force_partial {
                break;
            }
            let take = max.min(self.backlog.len());
            let batch = ProposedBatch::new(self.backlog.drain(..take).collect());
            self.next_sn = base + batch.len() as u64;
            let preprepare = PrePrepare {
                view: self.view,
                sn: base,
                batch,
            };
            self.trace_batch_flush(&preprepare);
            // Record locally, then broadcast to the backups.
            self.accept_preprepare(preprepare.clone());
            #[cfg(feature = "mutation-hooks")]
            self.maybe_equivocate(&preprepare);
            self.broadcast(Message::PrePrepare(preprepare));
        }
        if !self.backlog.is_empty() && !self.armed_batch_timer {
            self.armed_batch_timer = true;
            self.effects.push(Effect::SetTimer {
                id: ReplicaTimer::BatchFlush,
                duration_ms: self.config.batch_delay_ms,
            });
        }
        self.metrics.backlog_len.set(self.backlog.len() as i64);
    }

    /// Emits one `batch_flush` span per application request of the batch
    /// the primary is about to broadcast: start = when the proposal
    /// entered the backlog, end = now, parented on the origin's `submit`
    /// span. Single branch when telemetry is disabled.
    fn trace_batch_flush(&mut self, preprepare: &PrePrepare) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let train = self.telemetry.train_id();
        let now = self.telemetry.now_ms();
        let base = preprepare.sn;
        for (offset, (request, digest)) in preprepare
            .batch
            .requests()
            .iter()
            .zip(preprepare.batch.payload_digests())
            .enumerate()
        {
            if request.is_noop() {
                continue;
            }
            let start = self
                .proposed_at
                .remove(digest)
                .unwrap_or(now)
                .max(request.time_ms);
            let end = now.max(start);
            let trace_id = derive_trace_id(train, request.origin.0, digest.as_bytes());
            let sn = base + offset as u64;
            let node = self.id.0;
            self.telemetry.record_span(|| Span {
                trace_id,
                span_id: derive_span_id(trace_id, Stage::BatchFlush.as_str(), node),
                parent_span: derive_span_id(trace_id, Stage::Submit.as_str(), request.origin.0),
                stage: Stage::BatchFlush,
                node,
                train,
                sn,
                start_ms: start,
                end_ms: end,
            });
        }
    }

    /// `(sn, origin, payload digest)` of every application request in an
    /// accepted batch — collected while the slot is borrowed so span
    /// emission can happen after the borrow ends.
    fn traced_requests(preprepare: &PrePrepare, digests: &[Digest]) -> Vec<(u64, u64, Digest)> {
        preprepare
            .batch
            .requests()
            .iter()
            .zip(digests)
            .enumerate()
            .filter(|(_, (request, _))| !request.is_noop())
            .map(|(offset, (request, digest))| {
                (preprepare.sn + offset as u64, request.origin.0, *digest)
            })
            .collect()
    }

    /// Emits one span per traced request of a slot, deriving ids from
    /// `(train, origin, digest)` so every node names the same spans
    /// without coordination. `parent_node` of `None` parents each span
    /// on the request's own origin node.
    fn emit_slot_spans(
        &self,
        stage: Stage,
        parent_stage: Stage,
        parent_node: Option<u64>,
        requests: &[(u64, u64, Digest)],
        start_ms: u64,
        end_ms: u64,
    ) {
        if requests.is_empty() {
            return;
        }
        let train = self.telemetry.train_id();
        let node = self.id.0;
        let end_ms = end_ms.max(start_ms);
        for &(sn, origin, digest) in requests {
            let trace_id = derive_trace_id(train, origin, digest.as_bytes());
            self.telemetry.record_span(|| Span {
                trace_id,
                span_id: derive_span_id(trace_id, stage.as_str(), node),
                parent_span: derive_span_id(
                    trace_id,
                    parent_stage.as_str(),
                    parent_node.unwrap_or(origin),
                ),
                stage,
                node,
                train,
                sn,
                start_ms,
                end_ms,
            });
        }
    }

    /// Mutation hook: enables a deliberately injected equivocation bug.
    ///
    /// While primary, this replica assigns each sequence number twice:
    /// the honest preprepare is broadcast as usual, but the highest-id
    /// backup is privately sent a *conflicting* preprepare for the same
    /// `(view, sn)` with tampered payload bytes. A correct PBFT primary
    /// never does this; the chaos harness must flag it as a safety
    /// violation (and correct backups that see both proposals suspect the
    /// primary).
    #[cfg(feature = "mutation-hooks")]
    pub fn enable_equivocation_bug(&mut self) {
        self.equivocate = true;
    }

    #[cfg(feature = "mutation-hooks")]
    fn maybe_equivocate(&mut self, preprepare: &PrePrepare) {
        if !self.equivocate {
            return;
        }
        let victim = (0..self.config.n as u64)
            .rev()
            .map(NodeId)
            .find(|id| *id != self.id)
            .expect("groups have n >= 4 replicas");
        let mut requests = preprepare.batch.requests().to_vec();
        requests
            .last_mut()
            .expect("batches are never empty")
            .payload
            .push(0xE0);
        let conflicting = PrePrepare {
            view: preprepare.view,
            sn: preprepare.sn,
            batch: ProposedBatch::new(requests),
        };
        let signed = SignedMessage::sign(self.id, Message::PrePrepare(conflicting), &self.key);
        self.effects.push(Effect::Send {
            to: victim,
            message: signed,
        });
    }

    /// `SUSPECT(id)`: suspects a node; if it is the current primary this
    /// initiates a view change (Table I).
    pub fn suspect(&mut self, id: NodeId) {
        if id != self.primary() || self.in_view_change() {
            return;
        }
        let target = self.view + 1;
        self.start_view_change(target);
    }

    // ------------------------------------------------------------------
    // Checkpointing (application-triggered, one per block)
    // ------------------------------------------------------------------

    /// Declares the application snapshot at `sn` (ZugChain: the hash of
    /// the block whose last request is `sn`). Broadcasts a checkpoint
    /// message; once 2f+1 replicas match, the checkpoint becomes stable.
    pub fn record_checkpoint(&mut self, sn: u64, state_digest: Digest) {
        let checkpoint = Checkpoint { sn, state_digest };
        let signed = self.broadcast(Message::Checkpoint(checkpoint));
        let signature = signed
            .signature()
            .expect("own checkpoint messages always embed a signature");
        self.store_checkpoint_vote(self.id, checkpoint, Some(signature), true);
    }

    fn store_checkpoint_vote(
        &mut self,
        from: NodeId,
        checkpoint: Checkpoint,
        signature: Option<Signature>,
        verified: bool,
    ) {
        if checkpoint.sn <= self.low_watermark {
            return;
        }
        let votes = self.checkpoints.entry(checkpoint.sn).or_default();
        votes.votes.entry(from).or_insert(Vote {
            digest: checkpoint.state_digest,
            signature,
            verified,
        });
        self.maybe_stabilize_checkpoint(checkpoint.sn);
    }

    fn maybe_stabilize_checkpoint(&mut self, sn: u64) {
        let Some(votes) = self.checkpoints.get(&sn) else {
            return;
        };
        // Group by digest; a quorum must agree on the same state.
        let mut counts: BTreeMap<Digest, usize> = BTreeMap::new();
        for vote in votes.votes.values() {
            *counts.entry(vote.digest).or_default() += 1;
        }
        let Some((digest, _)) = counts
            .iter()
            .find(|(_, count)| **count >= self.config.quorum())
        else {
            return;
        };
        let digest = *digest;
        // The proof's signatures are transferable evidence, so every
        // matching vote that arrived over the MAC fast path has its
        // deferred signature checked now — one `verify_batch` call for
        // the round. Votes with a missing or invalid signature are
        // dropped; if that sinks the quorum, wait for more votes.
        if !self.validate_vote_signatures(sn, &digest) {
            return;
        }
        let votes = self
            .checkpoints
            .get(&sn)
            .expect("validated checkpoint votes still present");
        let signatures: Vec<(NodeId, Signature)> = votes
            .votes
            .iter()
            .filter(|(_, vote)| vote.digest == digest && vote.verified)
            .filter_map(|(id, vote)| vote.signature.map(|sig| (*id, sig)))
            .collect();
        let proof = CheckpointProof {
            checkpoint: Checkpoint {
                sn,
                state_digest: digest,
            },
            signatures,
        };
        self.stabilize(proof);
    }

    /// Verifies the deferred signatures of the matching checkpoint votes
    /// at `sn`, dropping any vote whose signature is missing or invalid.
    /// Returns `true` if a quorum of verified matching votes remains.
    fn validate_vote_signatures(&mut self, sn: u64, digest: &Digest) -> bool {
        let pending: Vec<(NodeId, Option<Signature>)> = match self.checkpoints.get(&sn) {
            Some(votes) => votes
                .votes
                .iter()
                .filter(|(_, vote)| vote.digest == *digest && !vote.verified)
                .map(|(id, vote)| (*id, vote.signature))
                .collect(),
            None => return false,
        };
        let quorum = self.config.quorum();
        if pending.is_empty() {
            return self.checkpoints.get(&sn).is_some_and(|votes| {
                votes
                    .votes
                    .values()
                    .filter(|vote| vote.digest == *digest && vote.verified)
                    .count()
                    >= quorum
            });
        }
        let bytes = zugchain_wire::to_bytes(&Message::Checkpoint(Checkpoint {
            sn,
            state_digest: *digest,
        }));
        let (valid, invalid) = self.check_signatures(&pending, &bytes);
        let Some(votes) = self.checkpoints.get_mut(&sn) else {
            return false;
        };
        for id in valid {
            if let Some(vote) = votes.votes.get_mut(&id) {
                vote.verified = true;
            }
        }
        for id in invalid {
            votes.votes.remove(&id);
        }
        votes
            .votes
            .values()
            .filter(|vote| vote.digest == *digest && vote.verified)
            .count()
            >= quorum
    }

    /// Batch-verifies pending `(signer, signature)` votes over `bytes`,
    /// splitting them into verified signers and signers to drop (missing
    /// or invalid signature).
    fn check_signatures(
        &mut self,
        pending: &[(NodeId, Option<Signature>)],
        bytes: &[u8],
    ) -> (Vec<NodeId>, Vec<NodeId>) {
        let mut items: Vec<BatchItem> = Vec::new();
        let mut item_ids: Vec<NodeId> = Vec::new();
        let mut invalid: Vec<NodeId> = Vec::new();
        for (id, signature) in pending {
            match (signature, self.keystore.get(id.0)) {
                (Some(sig), Some(key)) => {
                    items.push((*key, bytes.to_vec(), *sig));
                    item_ids.push(*id);
                }
                _ => invalid.push(*id),
            }
        }
        self.stats.signatures_verified += items.len() as u64;
        let outcome = verify_batch(&items);
        let mut valid = Vec::new();
        for (index, id) in item_ids.into_iter().enumerate() {
            if outcome.is_valid(index) {
                valid.push(id);
            } else {
                invalid.push(id);
            }
        }
        (valid, invalid)
    }

    /// Verifies the deferred signatures of the matching prepare votes at
    /// `sn` — MAC-authenticated prepares carry their signature unverified
    /// until a quorum assembles, then the whole round validates in one
    /// `verify_batch` call. Votes with a missing or invalid signature are
    /// dropped. Returns `true` if a prepare quorum of verified matching
    /// votes remains.
    fn validate_prepare_quorum(&mut self, sn: u64, digest: &Digest) -> bool {
        let pending: Vec<(NodeId, Option<Signature>)> = match self.slots.get(&sn) {
            Some(slot) => slot
                .prepares
                .iter()
                .filter(|(_, vote)| vote.digest == *digest && !vote.verified)
                .map(|(id, vote)| (*id, vote.signature))
                .collect(),
            None => return false,
        };
        let quorum = self.config.prepare_quorum();
        if pending.is_empty() {
            return self.slots.get(&sn).is_some_and(|slot| {
                slot.prepares
                    .values()
                    .filter(|vote| vote.digest == *digest && vote.verified)
                    .count()
                    >= quorum
            });
        }
        let bytes = zugchain_wire::to_bytes(&Message::Prepare(Prepare {
            view: self.view,
            sn,
            digest: *digest,
        }));
        let (valid, invalid) = self.check_signatures(&pending, &bytes);
        let Some(slot) = self.slots.get_mut(&sn) else {
            return false;
        };
        for id in valid {
            if let Some(vote) = slot.prepares.get_mut(&id) {
                vote.verified = true;
            }
        }
        for id in invalid {
            slot.prepares.remove(&id);
        }
        slot.prepares
            .values()
            .filter(|vote| vote.digest == *digest && vote.verified)
            .count()
            >= quorum
    }

    /// Verifies the deferred signatures of the matching commit votes at
    /// `sn` — the collector-mode analogue of
    /// [`validate_prepare_quorum`](Self::validate_prepare_quorum), run by
    /// the collector before assembling a commit certificate. Votes whose
    /// signature is missing or invalid are dropped. Returns `true` if a
    /// full 2f+1 quorum of verified matching votes remains.
    fn validate_commit_quorum(&mut self, sn: u64, digest: &Digest) -> bool {
        let pending: Vec<(NodeId, Option<Signature>)> = match self.slots.get(&sn) {
            Some(slot) => slot
                .commits
                .iter()
                .filter(|(_, vote)| vote.digest == *digest && !vote.verified)
                .map(|(id, vote)| (*id, vote.signature))
                .collect(),
            None => return false,
        };
        let quorum = self.config.quorum();
        let verified_matching = |slot: &Slot| {
            slot.commits
                .values()
                .filter(|vote| vote.digest == *digest && vote.verified && vote.signature.is_some())
                .count()
        };
        if pending.is_empty() {
            return self
                .slots
                .get(&sn)
                .is_some_and(|slot| verified_matching(slot) >= quorum);
        }
        let bytes = zugchain_wire::to_bytes(&Message::Commit(Commit {
            view: self.view,
            sn,
            digest: *digest,
        }));
        let (valid, invalid) = self.check_signatures(&pending, &bytes);
        let Some(slot) = self.slots.get_mut(&sn) else {
            return false;
        };
        for id in valid {
            if let Some(vote) = slot.commits.get_mut(&id) {
                vote.verified = true;
            }
        }
        for id in invalid {
            slot.commits.remove(&id);
        }
        verified_matching(slot) >= quorum
    }

    fn stabilize(&mut self, proof: CheckpointProof) {
        let sn = proof.checkpoint.sn;
        if sn <= self.low_watermark {
            return;
        }
        self.low_watermark = sn;
        self.last_stable_proof = Some(proof.clone());
        // Garbage collect ordering state covered by the checkpoint. A
        // slot is covered only when its whole *range* is: a batch
        // straddling the checkpoint still owes decides above it.
        self.slots.retain(|slot_sn, slot| {
            slot.preprepare
                .as_ref()
                .map_or(*slot_sn, PrePrepare::end_sn)
                > sn
        });
        self.checkpoints.retain(|cp_sn, _| *cp_sn > sn);
        if self.decided_up_to < sn {
            // We missed decides that the quorum already checkpointed.
            self.effects
                .push(Effect::Output(ReplicaEvent::NeedStateTransfer {
                    from_sn: self.decided_up_to + 1,
                    to_sn: sn,
                }));
            self.decided_up_to = sn;
            self.metrics.decided_up_to.set(sn as i64);
        }
        if self.next_sn <= sn {
            self.next_sn = sn + 1;
        }
        self.effects
            .push(Effect::Output(ReplicaEvent::StableCheckpoint { proof }));
        // The window may have opened: the primary can propose backlog.
        if self.is_primary() && !self.in_view_change() {
            self.flush_backlog(false);
        }
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    /// Processes a protocol message from the network.
    ///
    /// Authentication tries the session-MAC fast path first, then the
    /// signature; invalid messages are counted and dropped — a Byzantine
    /// peer cannot impersonate others or corrupt state with garbage.
    pub fn on_message(&mut self, message: SignedMessage) {
        if message.from == self.id {
            return; // our own broadcast echoed back
        }
        if message.from.0 >= self.config.n as u64 {
            self.stats.ignored += 1;
            self.metrics.ignored.inc();
            return;
        }
        let verdict = message.verify_auth(&self.keystore, &self.session);
        match verdict {
            AuthVerdict::Invalid => {
                self.stats.invalid_signatures += 1;
                self.metrics.invalid_signatures.inc();
                return;
            }
            AuthVerdict::MacValid => {
                self.stats.auth_mac_hits += 1;
                self.metrics.auth_mac_hits.inc();
            }
            AuthVerdict::SigFallback => {
                self.stats.auth_sig_fallbacks += 1;
                self.metrics.auth_sig_fallbacks.inc();
                self.stats.signatures_verified += 1;
            }
            AuthVerdict::SigValid => {
                self.stats.signatures_verified += 1;
            }
        }
        self.stats.messages_processed += 1;
        self.metrics.for_message(&message.message).inc();
        self.dispatch(message, verdict.signature_checked());
    }

    /// The view an ordering message belongs to (`None` for view-change
    /// and checkpoint traffic, which is never buffered).
    fn ordering_view(message: &Message) -> Option<u64> {
        match message {
            Message::PrePrepare(m) => Some(m.view),
            Message::Prepare(m) => Some(m.view),
            Message::Commit(m) => Some(m.view),
            Message::PrepareCert(m) => Some(m.view),
            Message::CommitCert(m) => Some(m.view),
            _ => None,
        }
    }

    /// Routes one verified message, buffering ordering traffic that this
    /// replica cannot act on yet (mid-view-change, or for a future view).
    ///
    /// `sig_checked` records whether the message's embedded signature was
    /// verified on arrival (`false` for MAC fast-path acceptances, whose
    /// signature check is deferred to quorum time).
    fn dispatch(&mut self, message: SignedMessage, sig_checked: bool) {
        if let Some(view) = Self::ordering_view(&message.message) {
            if view > self.view || (view == self.view && self.in_view_change()) {
                if self.buffered.len() >= self.config.max_buffered_messages {
                    // Keep the entries for the *nearest* future views:
                    // after a long partition the buffer fills with traffic
                    // for many views, and the messages for the nearest
                    // future view are exactly the ones that let this
                    // replica rejoin. Dropping the oldest entry instead
                    // (typically the lowest view) starves recovery.
                    let (evict, evict_view) = self
                        .buffered
                        .iter()
                        .enumerate()
                        .max_by_key(|(index, (buffered, _))| {
                            (Self::ordering_view(&buffered.message), *index)
                        })
                        .map(|(index, (buffered, _))| {
                            (index, Self::ordering_view(&buffered.message))
                        })
                        .expect("buffer at capacity is non-empty");
                    if Some(view) >= evict_view {
                        // The incoming message is at least as far in the
                        // future as the farthest buffered entry — evicting
                        // a nearer-view message for it would invert the
                        // policy, so drop the newcomer instead.
                        self.stats.ignored += 1;
                        self.metrics.ignored.inc();
                        self.metrics.buffer_evictions.inc();
                        return;
                    }
                    self.buffered.remove(evict);
                    self.metrics.buffer_evictions.inc();
                }
                self.buffered.push_back((message, sig_checked));
                self.metrics
                    .future_buffer_len
                    .set(self.buffered.len() as i64);
                return;
            }
        }
        // Destructure instead of cloning: a preprepare's batch should not
        // be deep-copied just to route it.
        let signature = message.signature();
        let SignedMessage {
            from,
            message,
            auth,
        } = message;
        match message {
            Message::PrePrepare(preprepare) => self.on_preprepare(from, preprepare),
            Message::Prepare(prepare) => self.on_prepare(from, prepare, signature, sig_checked),
            Message::Commit(commit) => self.on_commit(from, commit, signature, sig_checked),
            Message::PrepareCert(cert) => self.on_cert(cert, CertPhase::Prepare),
            Message::CommitCert(cert) => self.on_cert(cert, CertPhase::Commit),
            Message::Checkpoint(checkpoint) => {
                self.store_checkpoint_vote(from, checkpoint, signature, sig_checked);
            }
            Message::NewView(new_view) => self.on_new_view(from, new_view),
            message @ Message::ViewChange(_) => self.on_view_change_vote(SignedMessage {
                from,
                message,
                auth,
            }),
        }
    }

    fn in_window(&self, sn: u64) -> bool {
        sn > self.low_watermark && sn <= self.low_watermark + self.config.watermark_window
    }

    /// Window check for prepares and commits: the standard watermark
    /// window, plus the base sequence number of a live slot whose batch
    /// straddles the low watermark (a checkpoint can land mid-batch on a
    /// replica that accepted the batch before stabilizing; its votes are
    /// still needed to finish the run above the watermark). Fresh
    /// preprepares keep the strict check — no new slots below the
    /// watermark.
    fn ordering_in_window(&self, sn: u64) -> bool {
        if self.in_window(sn) {
            return true;
        }
        sn <= self.low_watermark
            && self.slots.get(&sn).is_some_and(|slot| {
                slot.preprepare
                    .as_ref()
                    .is_some_and(|pp| pp.end_sn() > self.low_watermark)
            })
    }

    fn on_preprepare(&mut self, from: NodeId, preprepare: PrePrepare) {
        if self.in_view_change()
            || preprepare.view != self.view
            || from != self.primary()
            || !self.in_window(preprepare.sn)
            || preprepare.end_sn() > self.low_watermark + self.config.watermark_window
        {
            self.stats.ignored += 1;
            return;
        }
        let sn = preprepare.sn;
        if let Some(slot) = self.slots.get(&sn) {
            if slot.preprepare.is_some() {
                if slot.batch_digest != Some(preprepare.batch.digest()) {
                    // Primary equivocation: two different proposals for
                    // the same (view, sn). Initiate a view change.
                    let primary = self.primary();
                    self.suspect(primary);
                    return;
                }
                // Duplicate preprepare with a matching digest: the
                // primary (or the network) retransmitted it. Re-broadcast
                // our own prepare — if the first one was lost, staying
                // silent wedges the slot until a view change.
                if let Some(vote) = slot.prepares.get(&self.id) {
                    let prepare = Prepare {
                        view: self.view,
                        sn,
                        digest: vote.digest,
                    };
                    self.broadcast(Message::Prepare(prepare));
                }
                return;
            }
        }
        // A batch whose range collides with an already-preprepared
        // neighbour means the primary assigned some sequence number
        // twice — treat it like equivocation. Slots holding only stray
        // votes don't count (they carry no conflicting assignment), and
        // they must not shadow a lower preprepared batch either: a
        // Byzantine backup could interpose a vote-only slot mid-batch to
        // sneak an overlapping preprepare past a nearest-key check, so
        // scan back to the nearest slot that actually holds a
        // preprepare.
        let predecessor_overlap = self
            .slots
            .range(..sn)
            .rev()
            .find_map(|(_, prev)| prev.preprepare.as_ref())
            .is_some_and(|pp| pp.end_sn() >= sn);
        let successor_overlap = preprepare.end_sn() > sn
            && self
                .slots
                .range(sn + 1..=preprepare.end_sn())
                .any(|(_, next)| next.preprepare.is_some());
        if predecessor_overlap || successor_overlap {
            let primary = self.primary();
            self.suspect(primary);
            return;
        }
        let (digest, payload_digests) = self.accept_preprepare(preprepare);
        for (offset, payload_digest) in payload_digests.into_iter().enumerate() {
            self.effects
                .push(Effect::Output(ReplicaEvent::PrePrepareSeen {
                    sn: sn + offset as u64,
                    payload_digest,
                }));
        }
        // Backups confirm with a prepare over the batch digest, routed
        // per the communication mode.
        let prepare = Prepare {
            view: self.view,
            sn,
            digest,
        };
        let signed = self.send_prepare_vote(prepare);
        let own_signature = signed
            .signature()
            .expect("own prepare messages always embed a signature");
        if let Some(slot) = self.slots.get_mut(&sn) {
            slot.prepares.insert(
                self.id,
                Vote {
                    digest,
                    signature: Some(own_signature),
                    verified: true,
                },
            );
        }
        self.maybe_advance(sn);
    }

    /// Records a preprepare into its slot (primary: own proposal; backup:
    /// accepted proposal), reusing the digests the batch already hashed
    /// (payloads are hashed exactly once, at batch construction or
    /// decode). Returns the batch digest and the per-request payload
    /// digests in batch order.
    fn accept_preprepare(&mut self, preprepare: PrePrepare) -> (Digest, Vec<Digest>) {
        let sn = preprepare.sn;
        let batch_digest = preprepare.batch.digest();
        let payload_digests: Vec<Digest> = preprepare.batch.payload_digests().to_vec();
        let traced = if self.telemetry.is_enabled() {
            Self::traced_requests(&preprepare, &payload_digests)
        } else {
            Vec::new()
        };
        let primary = self.config.primary_of(preprepare.view).0;
        let now = self.telemetry.now_ms();
        let slot = self.slots.entry(sn).or_default();
        slot.batch_digest = Some(batch_digest);
        slot.payload_digests = payload_digests.clone();
        slot.t_accept = now;
        slot.preprepare = Some(preprepare);
        self.emit_slot_spans(
            Stage::PrePrepare,
            Stage::BatchFlush,
            Some(primary),
            &traced,
            now,
            now,
        );
        self.maybe_advance(sn);
        (batch_digest, payload_digests)
    }

    fn on_prepare(
        &mut self,
        from: NodeId,
        prepare: Prepare,
        signature: Option<Signature>,
        verified: bool,
    ) {
        if self.in_view_change()
            || prepare.view != self.view
            || !self.ordering_in_window(prepare.sn)
        {
            self.stats.ignored += 1;
            return;
        }
        if from == self.primary() {
            // The primary's preprepare is its prepare; a prepare from the
            // primary is protocol noise.
            self.stats.ignored += 1;
            return;
        }
        let slot = self.slots.entry(prepare.sn).or_default();
        slot.prepares.entry(from).or_insert(Vote {
            digest: prepare.digest,
            signature,
            verified,
        });
        // A direct prepare only reaches a non-collector when a peer fell
        // back to all-to-all; echo our own vote so the fallback converges
        // even where the phase already completed (see
        // `fallback_to_all_to_all`).
        self.fallback_to_all_to_all(prepare.sn, CertPhase::Prepare);
        self.maybe_advance(prepare.sn);
    }

    fn on_commit(
        &mut self,
        from: NodeId,
        commit: Commit,
        signature: Option<Signature>,
        verified: bool,
    ) {
        if self.in_view_change() || commit.view != self.view || !self.ordering_in_window(commit.sn)
        {
            self.stats.ignored += 1;
            return;
        }
        let slot = self.slots.entry(commit.sn).or_default();
        slot.commits.entry(from).or_insert(Vote {
            digest: commit.digest,
            signature,
            verified,
        });
        // Same echo rule as `on_prepare`: direct commits imply fallback.
        self.fallback_to_all_to_all(commit.sn, CertPhase::Commit);
        self.maybe_advance(commit.sn);
    }

    /// Collector only: assembles the verified matching votes of `phase`
    /// into one certificate and broadcasts it. Prepare votes were
    /// already validated by `validate_prepare_quorum` on the way to
    /// `prepared`; commit votes validate here (their signature check is
    /// deferred on the MAC path). If validation sinks the quorum the
    /// certificate is skipped — the per-phase fallback timers keep the
    /// group live without it.
    fn broadcast_cert(&mut self, sn: u64, digest: Digest, phase: CertPhase) {
        if phase == CertPhase::Commit && !self.validate_commit_quorum(sn, &digest) {
            return;
        }
        let quorum = match phase {
            CertPhase::Prepare => self.config.prepare_quorum(),
            CertPhase::Commit => self.config.quorum(),
        };
        let Some(slot) = self.slots.get(&sn) else {
            return;
        };
        let votes = match phase {
            CertPhase::Prepare => &slot.prepares,
            CertPhase::Commit => &slot.commits,
        };
        let signatures: Vec<(NodeId, Signature)> = votes
            .iter()
            .filter(|(_, vote)| vote.digest == digest && vote.verified)
            .filter_map(|(id, vote)| vote.signature.map(|sig| (*id, sig)))
            .collect();
        if signatures.len() < quorum {
            return;
        }
        let cert = VoteCert {
            view: self.view,
            sn,
            digest,
            signatures,
        };
        self.stats.collector_certs_sent += 1;
        match phase {
            CertPhase::Prepare => self.broadcast(Message::PrepareCert(cert)),
            CertPhase::Commit => self.broadcast(Message::CommitCert(cert)),
        };
    }

    /// Absorbs a received certificate: verifies the aggregated
    /// signatures this replica has not already verified (one
    /// `verify_batch` call) and records the valid ones as if the votes
    /// had arrived individually, then advances the slot. The envelope
    /// sender is irrelevant — the signatures are the authority — so a
    /// forged certificate can only waste verification work, never
    /// smuggle a vote.
    fn on_cert(&mut self, cert: VoteCert, phase: CertPhase) {
        if self.in_view_change() || cert.view != self.view || !self.ordering_in_window(cert.sn) {
            self.stats.ignored += 1;
            return;
        }
        let sn = cert.sn;
        let primary = self.primary();
        let mut seen = std::collections::BTreeSet::new();
        let mut pending: Vec<(NodeId, Signature)> = Vec::new();
        for (id, signature) in &cert.signatures {
            // A prepare from the primary never counts (its preprepare
            // stands in), and neither do our own or out-of-range votes.
            if *id == self.id
                || id.0 >= self.config.n as u64
                || (phase == CertPhase::Prepare && *id == primary)
                || !seen.insert(id.0)
            {
                continue;
            }
            let already_verified = self
                .slots
                .get(&sn)
                .and_then(|slot| match phase {
                    CertPhase::Prepare => slot.prepares.get(id),
                    CertPhase::Commit => slot.commits.get(id),
                })
                .is_some_and(|vote| vote.verified && vote.digest == cert.digest);
            if !already_verified {
                pending.push((*id, *signature));
            }
        }
        self.stats.collector_certs_absorbed += 1;
        if pending.is_empty() {
            self.maybe_advance(sn);
            return;
        }
        let canonical = match phase {
            CertPhase::Prepare => Message::Prepare(Prepare {
                view: self.view,
                sn,
                digest: cert.digest,
            }),
            CertPhase::Commit => Message::Commit(Commit {
                view: self.view,
                sn,
                digest: cert.digest,
            }),
        };
        let bytes = zugchain_wire::to_bytes(&canonical);
        let with_slot: Vec<(NodeId, Option<Signature>)> =
            pending.iter().map(|(id, sig)| (*id, Some(*sig))).collect();
        let (valid, invalid) = self.check_signatures(&with_slot, &bytes);
        self.stats.cert_invalid_signatures += invalid.len() as u64;
        let digest = cert.digest;
        let slot = self.slots.entry(sn).or_default();
        for id in valid {
            let signature = pending
                .iter()
                .find(|(pid, _)| *pid == id)
                .map(|(_, sig)| *sig);
            let votes = match phase {
                CertPhase::Prepare => &mut slot.prepares,
                CertPhase::Commit => &mut slot.commits,
            };
            match votes.entry(id) {
                std::collections::btree_map::Entry::Vacant(entry) => {
                    entry.insert(Vote {
                        digest,
                        signature,
                        verified: true,
                    });
                }
                std::collections::btree_map::Entry::Occupied(mut entry) => {
                    // A matching direct vote beat the certificate here;
                    // upgrade its deferred signature check for free.
                    let vote = entry.get_mut();
                    if vote.digest == digest && !vote.verified {
                        vote.signature = signature;
                        vote.verified = true;
                    }
                }
            }
        }
        self.maybe_advance(sn);
    }

    /// Advances the three-phase protocol for `sn` as far as possible.
    fn maybe_advance(&mut self, sn: u64) {
        let view = self.view;
        let prepare_quorum = self.config.prepare_quorum();
        let quorum = self.config.quorum();

        let Some(slot) = self.slots.get_mut(&sn) else {
            return;
        };
        if slot.preprepare.is_none() {
            return;
        }
        let digest = slot
            .batch_digest
            .expect("slot with a preprepare has a cached batch digest");

        if !slot.prepared
            && slot.matching_prepares(&digest) >= prepare_quorum
            && self.validate_prepare_quorum(sn, &digest)
        {
            let now = self.telemetry.now_ms();
            let slot = self
                .slots
                .get_mut(&sn)
                .expect("slot existed before signature validation");
            slot.prepared = true;
            slot.t_prepared = now;
            let t_accept = slot.t_accept;
            let traced = match (&slot.preprepare, self.telemetry.is_enabled()) {
                (Some(preprepare), true) => {
                    Self::traced_requests(preprepare, &slot.payload_digests)
                }
                _ => Vec::new(),
            };
            let disarm = std::mem::take(&mut slot.collector_prepare_armed);
            if disarm {
                self.effects.push(Effect::CancelTimer {
                    id: ReplicaTimer::CollectorPrepare(sn),
                });
            }
            // The prepare span covers preprepare-accept → prepare-quorum
            // on this node, parented on this node's own preprepare span.
            self.emit_slot_spans(
                Stage::Prepare,
                Stage::PrePrepare,
                Some(self.id.0),
                &traced,
                t_accept,
                now,
            );
            // The slot's collector rebroadcasts the prepare quorum it
            // just validated as one certificate — the linear fast path.
            if self.config.comm_mode == CommMode::Collector
                && self.config.collector_of(view, sn) == self.id
            {
                self.broadcast_cert(sn, digest, CertPhase::Prepare);
            }
            let commit = Commit { view, sn, digest };
            let signed = self.send_commit_vote(commit);
            let own_signature = signed.signature();
            if let Some(slot) = self.slots.get_mut(&sn) {
                slot.commits.insert(
                    self.id,
                    Vote {
                        digest,
                        signature: own_signature,
                        verified: true,
                    },
                );
            }
            self.maybe_advance(sn);
            return;
        }

        let Some(slot) = self.slots.get_mut(&sn) else {
            return;
        };
        if slot.prepared && !slot.committed && slot.matching_commits(&digest) >= quorum {
            let now = self.telemetry.now_ms();
            slot.committed = true;
            slot.t_committed = now;
            let t_prepared = slot.t_prepared;
            let traced = match (&slot.preprepare, self.telemetry.is_enabled()) {
                (Some(preprepare), true) => {
                    Self::traced_requests(preprepare, &slot.payload_digests)
                }
                _ => Vec::new(),
            };
            let disarm = std::mem::take(&mut slot.collector_commit_armed);
            if disarm {
                self.effects.push(Effect::CancelTimer {
                    id: ReplicaTimer::CollectorCommit(sn),
                });
            }
            // The commit span covers prepare-quorum → commit-quorum.
            self.emit_slot_spans(
                Stage::Commit,
                Stage::Prepare,
                Some(self.id.0),
                &traced,
                t_prepared,
                now,
            );
            if self.config.comm_mode == CommMode::Collector
                && self.config.collector_of(view, sn) == self.id
            {
                self.broadcast_cert(sn, digest, CertPhase::Commit);
            }
            self.try_decide();
        }
    }

    /// Emits `Decide` actions for every committed batch in sequence
    /// order, one per request: committing a batch decides its whole run
    /// of sequence numbers atomically.
    fn try_decide(&mut self) {
        loop {
            let next = self.decided_up_to + 1;
            // The covering slot is keyed at the batch's base sequence
            // number, which can lie below `next` when a state-transfer
            // watermark jump landed mid-batch. Vote-only slots (created
            // by stray prepares/commits at an in-window sn) can sit
            // between that base and `next`, so walk back to the nearest
            // slot that actually holds a preprepare instead of taking
            // the nearest key.
            let Some(base) = self
                .slots
                .range(..=next)
                .rev()
                .find(|(_, slot)| slot.preprepare.is_some())
                .map(|(&base, _)| base)
            else {
                return;
            };
            let slot = self
                .slots
                .get_mut(&base)
                .expect("slot found by the scan above");
            let covers = slot
                .preprepare
                .as_ref()
                .is_some_and(|pp| pp.end_sn() >= next);
            if !covers || !slot.committed || slot.decided {
                return;
            }
            slot.decided = true;
            let t_committed = slot.t_committed;
            let digests = slot.payload_digests.clone();
            let preprepare = slot
                .preprepare
                .clone()
                .expect("committed slot has a preprepare");
            self.stats.batches_decided += 1;
            self.metrics.batches_decided.inc();
            let now = self.telemetry.now_ms();
            let requests = preprepare.batch.into_requests();
            self.metrics.batch_occupancy.observe(requests.len() as u64);
            for (offset, request) in requests.into_iter().enumerate() {
                let sn = base + offset as u64;
                if sn <= self.decided_up_to {
                    continue; // already covered by a state transfer
                }
                if self.telemetry.is_enabled() && !request.is_noop() {
                    if let Some(digest) = digests.get(offset) {
                        // The decide span closes the consensus phase:
                        // commit-quorum → in-order execution up-call.
                        self.proposed_at.remove(digest);
                        self.emit_slot_spans(
                            Stage::Decide,
                            Stage::Commit,
                            Some(self.id.0),
                            &[(sn, request.origin.0, *digest)],
                            t_committed,
                            now,
                        );
                    }
                }
                self.decided_up_to = sn;
                self.stats.decided += 1;
                self.metrics.decided.inc();
                self.effects
                    .push(Effect::Output(ReplicaEvent::Decide { sn, request }));
            }
            self.metrics.decided_up_to.set(self.decided_up_to as i64);
        }
    }

    // ------------------------------------------------------------------
    // View change
    // ------------------------------------------------------------------

    /// Collector mode: degrade one phase of one slot to the all-to-all
    /// exchange by re-broadcasting our own vote. Fired by the per-phase
    /// fallback timer on collector silence, and echoed on receipt of a
    /// *direct* vote from a peer (which can only mean some replica's
    /// timer already fired). The echo closes a liveness gap the timers
    /// alone leave open: a staggered fallback can complete the phase on
    /// a strict subset of replicas, which then cancel their own one-shot
    /// timers — without the echo their votes would only ever have
    /// reached the dead collector, and the rest of the group would be
    /// permanently short of quorum. Each replica re-broadcasts at most
    /// once per slot per phase, so a full fallback costs O(n²) messages
    /// — the plain PBFT exchange, not a storm.
    fn fallback_to_all_to_all(&mut self, sn: u64, phase: CertPhase) {
        if self.config.comm_mode != CommMode::Collector
            || self.in_view_change()
            || self.config.collector_of(self.view, sn) == self.id
        {
            return;
        }
        let Some(slot) = self.slots.get_mut(&sn) else {
            return;
        };
        let votes = match phase {
            CertPhase::Prepare => &slot.prepares,
            CertPhase::Commit => &slot.commits,
        };
        let Some(digest) = votes.get(&self.id).map(|vote| vote.digest) else {
            return;
        };
        let sent = match phase {
            CertPhase::Prepare => &mut slot.prepare_rebroadcast,
            CertPhase::Commit => &mut slot.commit_rebroadcast,
        };
        if std::mem::replace(sent, true) {
            return;
        }
        self.stats.collector_fallbacks += 1;
        self.metrics.collector_fallbacks.inc();
        let view = self.view;
        match phase {
            CertPhase::Prepare => self.broadcast(Message::Prepare(Prepare { view, sn, digest })),
            CertPhase::Commit => self.broadcast(Message::Commit(Commit { view, sn, digest })),
        };
    }

    /// Called by the runtime when a replica timer expires.
    ///
    /// `ViewChange(view)`: no `NewView` for `view` arrived in time — move
    /// on to the next view. Stale expiries (a generation the runtime
    /// failed to drop, or a view this replica already left) are ignored,
    /// so every runtime gets identical escalation semantics.
    pub fn on_timer(&mut self, timer: ReplicaTimer) {
        match timer {
            ReplicaTimer::ViewChange(view) => {
                if self.armed_vc_timer != Some(view) {
                    return;
                }
                self.armed_vc_timer = None;
                if self.phase == Some(ViewChangeState { target: view }) {
                    self.start_view_change(view + 1);
                }
            }
            ReplicaTimer::BatchFlush => {
                if !self.armed_batch_timer {
                    return;
                }
                self.armed_batch_timer = false;
                if self.is_primary() && !self.in_view_change() {
                    self.flush_backlog(true);
                }
            }
            ReplicaTimer::CollectorPrepare(sn) => {
                let live = self.slots.get_mut(&sn).is_some_and(|slot| {
                    std::mem::take(&mut slot.collector_prepare_armed) && !slot.prepared
                });
                if live {
                    self.fallback_to_all_to_all(sn, CertPhase::Prepare);
                }
            }
            ReplicaTimer::CollectorCommit(sn) => {
                let live = self.slots.get_mut(&sn).is_some_and(|slot| {
                    std::mem::take(&mut slot.collector_commit_armed) && !slot.committed
                });
                if live {
                    self.fallback_to_all_to_all(sn, CertPhase::Commit);
                }
            }
        }
    }

    fn prepared_certs(&self) -> Vec<PreparedCert> {
        self.slots
            .iter()
            .filter(|(_, slot)| {
                // A batch straddling the low watermark still owes decides
                // above it, so its base may sit at or below the
                // watermark.
                slot.prepared
                    && slot
                        .preprepare
                        .as_ref()
                        .is_some_and(|pp| pp.end_sn() > self.low_watermark)
            })
            .map(|(sn, slot)| {
                let preprepare = slot
                    .preprepare
                    .as_ref()
                    .expect("prepared slot has a preprepare");
                let digest = slot
                    .batch_digest
                    .expect("slot with a preprepare has a cached batch digest");
                PreparedCert {
                    view: preprepare.view,
                    sn: *sn,
                    batch: preprepare.batch.clone(),
                    prepare_signatures: slot
                        .prepares
                        .iter()
                        .filter(|(_, vote)| vote.digest == digest && vote.verified)
                        .filter_map(|(id, vote)| vote.signature.map(|sig| (*id, sig)))
                        .collect(),
                }
            })
            .collect()
    }

    fn start_view_change(&mut self, target: u64) {
        if target <= self.view {
            return;
        }
        self.phase = Some(ViewChangeState { target });
        let view_change = ViewChange {
            new_view: target,
            last_stable_sn: self.low_watermark,
            checkpoint_proof: self.last_stable_proof.clone(),
            prepared: self.prepared_certs(),
        };
        let signed = self.broadcast(Message::ViewChange(view_change));
        // (Re-)arm the view-change timer for the new target. Cancelling
        // the previous arm keeps at most one live generation per replica.
        if let Some(old) = self.armed_vc_timer.take() {
            self.effects.push(Effect::CancelTimer {
                id: ReplicaTimer::ViewChange(old),
            });
        }
        self.armed_vc_timer = Some(target);
        self.effects.push(Effect::SetTimer {
            id: ReplicaTimer::ViewChange(target),
            duration_ms: self.config.view_change_timeout_ms,
        });
        // Count our own vote; if we are the new primary and votes from the
        // others already arrived, this may complete the view change.
        self.store_view_change_vote(signed);
        self.maybe_assemble_new_view(target);
    }

    fn on_view_change_vote(&mut self, signed: SignedMessage) {
        let Message::ViewChange(ref view_change) = signed.message else {
            return;
        };
        if view_change.new_view <= self.view {
            self.stats.ignored += 1;
            return;
        }
        let new_view = view_change.new_view;
        self.store_view_change_vote(signed);

        // Liveness rule: join a view change once f+1 distinct replicas
        // vote for a view above ours — at least one of them is correct.
        let joined_target = self.phase.map_or(self.view, |s| s.target);
        if new_view > joined_target {
            let votes = self
                .view_change_votes
                .get(&new_view)
                .map_or(0, BTreeMap::len);
            if votes >= self.config.suspicion_quorum() {
                self.start_view_change(new_view);
            }
        }
        self.maybe_assemble_new_view(new_view);
    }

    fn store_view_change_vote(&mut self, signed: SignedMessage) {
        let Message::ViewChange(ref view_change) = signed.message else {
            return;
        };
        self.view_change_votes
            .entry(view_change.new_view)
            .or_default()
            .entry(signed.from)
            .or_insert(signed.clone());
    }

    fn maybe_assemble_new_view(&mut self, target: u64) {
        if self.config.primary_of(target) != self.id {
            return;
        }
        if self.phase != Some(ViewChangeState { target }) {
            return;
        }
        let Some(votes) = self.view_change_votes.get(&target) else {
            return;
        };
        if votes.len() < self.config.quorum() {
            return;
        }
        let view_changes: Vec<SignedMessage> = votes.values().cloned().collect();
        let (preprepares, _min_s) = compute_new_view_preprepares(
            &self.config,
            &self.keystore,
            target,
            self.id,
            &view_changes,
        );
        let new_view = NewView {
            view: target,
            view_changes,
            preprepares: preprepares.clone(),
        };
        self.broadcast(Message::NewView(new_view));
        self.enter_view(target, preprepares);
    }

    fn on_new_view(&mut self, from: NodeId, new_view: NewView) {
        if new_view.view <= self.view || from != self.config.primary_of(new_view.view) {
            self.stats.ignored += 1;
            return;
        }
        // Verify the 2f+1 distinct, valid view-change votes. The
        // signatures are checked in one `verify_batch` call instead of
        // one at a time: a new-view message carries a whole round's
        // worth of votes at once.
        let mut candidates = Vec::new();
        let mut items: Vec<BatchItem> = Vec::new();
        for vote in &new_view.view_changes {
            let Message::ViewChange(ref view_change) = vote.message else {
                continue;
            };
            if view_change.new_view != new_view.view {
                continue;
            }
            let (Some(signature), Some(key)) = (vote.signature(), self.keystore.get(vote.from.0))
            else {
                continue;
            };
            items.push((*key, vote.message.auth_bytes(), signature));
            candidates.push(vote);
        }
        let outcome = verify_batch(&items);
        let mut voters = std::collections::BTreeSet::new();
        let mut valid_votes = Vec::new();
        for (index, vote) in candidates.into_iter().enumerate() {
            if outcome.is_valid(index) && voters.insert(vote.from.0) {
                valid_votes.push(vote.clone());
            }
        }
        if valid_votes.len() < self.config.quorum() {
            self.stats.ignored += 1;
            return;
        }
        // Recompute the preprepare set and require it to match: a
        // Byzantine new primary cannot smuggle in different requests.
        let (expected, _min_s) = compute_new_view_preprepares(
            &self.config,
            &self.keystore,
            new_view.view,
            from,
            &valid_votes,
        );
        if expected != new_view.preprepares {
            self.stats.ignored += 1;
            return;
        }
        // Adopt any newer stable checkpoint carried in the votes.
        let best_proof = valid_votes
            .iter()
            .filter_map(|vote| match &vote.message {
                Message::ViewChange(vc) => vc.checkpoint_proof.clone(),
                _ => None,
            })
            .filter(|proof| proof.verify(&self.keystore, self.config.quorum()))
            .max_by_key(|proof| proof.checkpoint.sn);
        if let Some(proof) = best_proof {
            if proof.checkpoint.sn > self.low_watermark {
                self.stabilize(proof);
            }
        }
        self.enter_view(new_view.view, new_view.preprepares);
    }

    /// Switches to `view` and replays the new primary's preprepares.
    fn enter_view(&mut self, view: u64, preprepares: Vec<PrePrepare>) {
        self.view = view;
        self.phase = None;
        self.stats.view_changes += 1;
        self.metrics.view_changes.inc();
        self.metrics.view.set(view as i64);
        self.view_change_votes.retain(|target, _| *target > view);
        if let Some(armed) = self.armed_vc_timer.take() {
            self.effects.push(Effect::CancelTimer {
                id: ReplicaTimer::ViewChange(armed),
            });
        }
        if self.armed_batch_timer {
            // Primary status may have changed hands; the new primary
            // re-arms for its own backlog below.
            self.armed_batch_timer = false;
            self.effects.push(Effect::CancelTimer {
                id: ReplicaTimer::BatchFlush,
            });
        }

        // Reset per-view slot state above the checkpoint: prepares and
        // commits from the old view are void in the new one.
        self.slots.retain(|_, slot| slot.decided);
        self.next_sn = preprepares
            .iter()
            .map(|p| p.end_sn() + 1)
            .max()
            .unwrap_or(self.low_watermark + 1)
            .max(self.decided_up_to + 1);

        let primary = self.config.primary_of(view);
        self.effects
            .push(Effect::Output(ReplicaEvent::NewPrimary { view, primary }));

        for preprepare in preprepares {
            if preprepare.end_sn() <= self.decided_up_to {
                continue; // already decided locally
            }
            let sn = preprepare.sn;
            let (digest, payload_digests) = self.accept_preprepare(preprepare);
            for (offset, payload_digest) in payload_digests.into_iter().enumerate() {
                self.effects
                    .push(Effect::Output(ReplicaEvent::PrePrepareSeen {
                        sn: sn + offset as u64,
                        payload_digest,
                    }));
            }
            if self.id != primary {
                let prepare = Prepare { view, sn, digest };
                let signed = self.broadcast(Message::Prepare(prepare));
                let own_signature = signed
                    .signature()
                    .expect("own prepare messages always embed a signature");
                if let Some(slot) = self.slots.get_mut(&sn) {
                    slot.prepares.insert(
                        self.id,
                        Vote {
                            digest,
                            signature: Some(own_signature),
                            verified: true,
                        },
                    );
                }
                self.maybe_advance(sn);
            }
        }
        // The new primary re-proposes anything still in its backlog.
        if self.is_primary() {
            self.flush_backlog(false);
        }
        // Replay ordering traffic that raced the view change; anything
        // still ahead of the new view goes straight back into the buffer.
        let buffered: Vec<(SignedMessage, bool)> = self.buffered.drain(..).collect();
        for (message, sig_checked) in buffered {
            self.dispatch(message, sig_checked);
        }
        self.metrics
            .future_buffer_len
            .set(self.buffered.len() as i64);
    }
}

impl Machine for Replica {
    type Addr = NodeId;
    type Message = SignedMessage;
    type Timer = ReplicaTimer;
    type Output = ReplicaEvent;
    type Input = ReplicaInput;

    fn on_input(&mut self, input: ReplicaInput) -> Vec<ReplicaEffect> {
        match input {
            ReplicaInput::Message(message) => self.on_message(message),
            ReplicaInput::Propose(request) => self.propose(request),
            ReplicaInput::Suspect(id) => self.suspect(id),
            ReplicaInput::RecordCheckpoint { sn, state_digest } => {
                self.record_checkpoint(sn, state_digest);
            }
        }
        self.drain_effects()
    }

    fn on_timer(&mut self, timer: ReplicaTimer) -> Vec<ReplicaEffect> {
        Replica::on_timer(self, timer);
        self.drain_effects()
    }
}

/// Deterministically computes the preprepares a new primary must issue
/// from a set of view-change votes: every batch above the highest stable
/// checkpoint that some vote proves prepared is re-proposed
/// *bit-identically at its original base sequence number* (its digest,
/// and thus its prepare certificate, binds the base through the batch
/// contents); where batch ranges collide the higher view wins; interior
/// gaps are filled with single no-op batches.
///
/// A batch straddling the stable checkpoint keeps its original base (at
/// or below the checkpoint) — the decided prefix is skipped at decide
/// time.
///
/// Both the new primary and every backup run this function, so a
/// fabricated `NewView` is rejected by comparison.
fn compute_new_view_preprepares(
    config: &Config,
    keystore: &Keystore,
    view: u64,
    primary: NodeId,
    votes: &[SignedMessage],
) -> (Vec<PrePrepare>, u64) {
    let mut min_s = 0u64;
    for vote in votes {
        if let Message::ViewChange(vc) = &vote.message {
            // Only checkpoint claims backed by a valid proof count.
            let proven = match &vc.checkpoint_proof {
                Some(proof) => {
                    proof.checkpoint.sn == vc.last_stable_sn
                        && proof.verify(keystore, config.quorum())
                }
                None => vc.last_stable_sn == 0,
            };
            if proven {
                min_s = min_s.max(vc.last_stable_sn);
            }
        }
    }

    // Pick, per base sequence number, the prepared cert from the highest
    // view whose range reaches above the checkpoint.
    let mut chosen: BTreeMap<u64, &PreparedCert> = BTreeMap::new();
    for vote in votes {
        if let Message::ViewChange(vc) = &vote.message {
            for cert in &vc.prepared {
                if cert.end_sn() <= min_s || !cert.verify(keystore, config.prepare_quorum()) {
                    continue;
                }
                match chosen.get(&cert.sn) {
                    Some(existing) if existing.view >= cert.view => {}
                    _ => {
                        chosen.insert(cert.sn, cert);
                    }
                }
            }
        }
    }

    // Batches prepared in different views can overlap in range (a later
    // view's primary starts below an uncarried earlier cert). The higher
    // view wins; a *decided* batch is never overlapped by a higher-view
    // cert (quorum intersection puts its cert in every vote set), so
    // decided runs always survive this resolution.
    let mut by_view: Vec<&PreparedCert> = chosen.values().copied().collect();
    by_view.sort_by(|a, b| b.view.cmp(&a.view).then(a.sn.cmp(&b.sn)));
    let mut placed: Vec<&PreparedCert> = Vec::new();
    for cert in by_view {
        let overlaps = placed
            .iter()
            .any(|p| cert.sn <= p.end_sn() && p.sn <= cert.end_sn());
        if !overlaps {
            placed.push(cert);
        }
    }
    placed.sort_by_key(|cert| cert.sn);

    let max_s = placed
        .iter()
        .map(|cert| cert.end_sn())
        .max()
        .unwrap_or(min_s);
    let mut preprepares = Vec::new();
    let mut iter = placed.into_iter().peekable();
    let mut next = min_s + 1;
    while next <= max_s {
        match iter.peek() {
            Some(cert) if cert.sn <= next => {
                // Covers `next` (its base may straddle the checkpoint).
                preprepares.push(PrePrepare {
                    view,
                    sn: cert.sn,
                    batch: cert.batch.clone(),
                });
                next = cert.end_sn() + 1;
                iter.next();
            }
            _ => {
                preprepares.push(PrePrepare {
                    view,
                    sn: next,
                    batch: ProposedBatch::single(ProposedRequest::noop(primary)),
                });
                next += 1;
            }
        }
    }
    (preprepares, min_s)
}

#[cfg(test)]
mod tests;
