//! A sans-io implementation of Practical Byzantine Fault Tolerance (PBFT),
//! the agreement substrate of ZugChain.
//!
//! The paper (§II-C, §IV) builds ZugChain on a full PBFT implementation
//! comprising the ordering, checkpointing, and view-change subprotocols,
//! and — unusually — *exposes* primary election to the layer above via the
//! `SUSPECT` and `NEWPRIMARY` interfaces (Table I ①):
//!
//! | direction | call | meaning |
//! |---|---|---|
//! | down | [`Replica::propose`] | propose request to consensus group |
//! | down | [`Replica::suspect`] | suspect node, initiate view change |
//! | up | [`ReplicaEvent::Decide`] | totally ordered request and seq. no. |
//! | up | [`ReplicaEvent::NewPrimary`] | new primary after view change |
//!
//! The replica is a **pure state machine** implementing the shared
//! [`Machine`](zugchain_machine::Machine) contract of `zugchain-machine`:
//! it consumes inputs (protocol messages, timer expirations, proposals)
//! and emits [`ReplicaEffect`]s (send, broadcast, timers, and
//! [`ReplicaEvent`] up-calls). It performs no I/O and reads no clock, so
//! the same code runs under the deterministic simulator and the threaded
//! runtime, and every protocol path is unit-testable.
//!
//! All messages are Ed25519-signed and verified against the permissioned
//! [`Keystore`](zugchain_crypto::Keystore); n ≥ 3f+1 replicas tolerate up
//! to f Byzantine faults.
//!
//! # Examples
//!
//! Drive a 4-replica cluster through one consensus instance by hand:
//!
//! ```
//! use zugchain_crypto::Keystore;
//! use zugchain_machine::Effect;
//! use zugchain_pbft::{Config, NodeId, ProposedRequest, Replica, ReplicaEvent};
//!
//! let config = Config::new(4).unwrap();
//! let (pairs, keystore) = Keystore::generate(4, 0);
//! let mut replicas: Vec<Replica> = pairs
//!     .into_iter()
//!     .enumerate()
//!     .map(|(id, key)| Replica::new(NodeId(id as u64), config.clone(), key, keystore.clone()))
//!     .collect();
//!
//! // The primary of view 0 is node 0; propose a request there.
//! let request = ProposedRequest::application(b"cycle 0 events".to_vec(), NodeId(0));
//! replicas[0].propose(request);
//!
//! // Deliver every emitted message to every other replica until quiet.
//! let mut decided = 0;
//! loop {
//!     let mut traffic = Vec::new();
//!     for replica in &mut replicas {
//!         for effect in replica.drain_effects() {
//!             match effect {
//!                 Effect::Broadcast { message } => traffic.push(message),
//!                 Effect::Output(ReplicaEvent::Decide { .. }) => decided += 1,
//!                 _ => {}
//!             }
//!         }
//!     }
//!     if traffic.is_empty() { break; }
//!     for message in traffic {
//!         for replica in &mut replicas {
//!             replica.on_message(message.clone());
//!         }
//!     }
//! }
//! assert_eq!(decided, 4, "every replica decides the request");
//! ```

#![warn(missing_docs)]

mod config;
mod messages;
mod replica;
mod types;

pub use config::{AuthMode, CommMode, Config};
pub use messages::{
    Auth, AuthVerdict, Checkpoint, CheckpointProof, Commit, Message, NewView, PrePrepare, Prepare,
    PreparedCert, SignedMessage, ViewChange, VoteCert,
};
pub use replica::{Replica, ReplicaEffect, ReplicaEvent, ReplicaInput, ReplicaStats, ReplicaTimer};
pub use types::{NodeId, ProposedBatch, ProposedRequest, RequestKind, MAX_WIRE_BATCH_LEN};
