use zugchain_crypto::{Digest, KeyPair, Keystore, MacTag, SessionKeys, Signature};
use zugchain_wire::{decode_seq, encode_seq, Decode, Encode, Reader, WireError, Writer};

use crate::{NodeId, ProposedBatch};

/// The primary's proposal assigning a run of sequence numbers to a batch
/// of requests in `view` (PBFT preprepare phase).
///
/// The batch's `i`-th request takes sequence number `sn + i`; the whole
/// run `sn ..= end_sn` is agreed by one three-phase round certifying the
/// batch digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrePrepare {
    /// View in which the proposal is made.
    pub view: u64,
    /// Sequence number assigned to the batch's first request.
    pub sn: u64,
    /// The proposed batch.
    pub batch: ProposedBatch,
}

impl PrePrepare {
    /// Sequence number of the batch's last request (inclusive).
    pub fn end_sn(&self) -> u64 {
        self.sn + self.batch.len() as u64 - 1
    }
}

impl Encode for PrePrepare {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.view);
        w.write_u64(self.sn);
        self.batch.encode(w);
    }
}

impl Decode for PrePrepare {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PrePrepare {
            view: r.read_u64()?,
            sn: r.read_u64()?,
            batch: ProposedBatch::decode(r)?,
        })
    }
}

/// A backup's confirmation that it accepted the preprepare for
/// `(view, sn, digest)` (PBFT prepare phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prepare {
    /// View of the confirmed proposal.
    pub view: u64,
    /// Base sequence number of the confirmed proposal.
    pub sn: u64,
    /// Digest of the confirmed batch.
    pub digest: Digest,
}

impl Encode for Prepare {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.view);
        w.write_u64(self.sn);
        self.digest.encode(w);
    }
}

impl Decode for Prepare {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Prepare {
            view: r.read_u64()?,
            sn: r.read_u64()?,
            digest: Digest::decode(r)?,
        })
    }
}

/// A replica's commitment to execute `(view, sn, digest)` once 2f+1
/// replicas commit (PBFT commit phase). Same fields as [`Prepare`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commit {
    /// View of the committed proposal.
    pub view: u64,
    /// Base sequence number of the committed proposal.
    pub sn: u64,
    /// Digest of the committed batch.
    pub digest: Digest,
}

impl Encode for Commit {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.view);
        w.write_u64(self.sn);
        self.digest.encode(w);
    }
}

impl Decode for Commit {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Commit {
            view: r.read_u64()?,
            sn: r.read_u64()?,
            digest: Digest::decode(r)?,
        })
    }
}

/// A replica's signed snapshot declaration at sequence number `sn`.
///
/// ZugChain creates one checkpoint per block (§III-C): `state_digest` is
/// the hash of the block covering everything up to `sn`, so a stable
/// checkpoint's 2f+1 signatures prove that block's place in the chain —
/// the export protocol (§III-D) is built on exactly this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Sequence number the snapshot covers (inclusive).
    pub sn: u64,
    /// Application state digest (the block hash in ZugChain).
    pub state_digest: Digest,
}

impl Encode for Checkpoint {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.sn);
        self.state_digest.encode(w);
    }
}

impl Decode for Checkpoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Checkpoint {
            sn: r.read_u64()?,
            state_digest: Digest::decode(r)?,
        })
    }
}

/// Proof that a checkpoint became stable: 2f+1 replica signatures over the
/// same [`Checkpoint`] message.
///
/// This is the verifiable artifact data centers download during export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointProof {
    /// The checkpoint the signatures cover.
    pub checkpoint: Checkpoint,
    /// `(signer, signature)` pairs; signatures are over the canonical
    /// encoding of `checkpoint`.
    pub signatures: Vec<(NodeId, Signature)>,
}

impl CheckpointProof {
    /// Verifies the proof: at least `quorum` distinct, valid signatures
    /// from keys in `keystore`.
    ///
    /// Signatures are over the canonical encoding of
    /// `Message::Checkpoint(checkpoint)` — exactly the bytes each replica
    /// signed when broadcasting its checkpoint message, so proofs are
    /// assembled from the protocol messages without re-signing.
    pub fn verify(&self, keystore: &Keystore, quorum: usize) -> bool {
        let message = zugchain_wire::to_bytes(&Message::Checkpoint(self.checkpoint));
        let mut seen = std::collections::BTreeSet::new();
        let mut valid = 0usize;
        for (signer, signature) in &self.signatures {
            if !seen.insert(signer.0) {
                continue; // duplicate signer never counts twice
            }
            if keystore.verify(signer.0, &message, signature).is_ok() {
                valid += 1;
            }
        }
        valid >= quorum
    }
}

impl Encode for CheckpointProof {
    fn encode(&self, w: &mut Writer) {
        self.checkpoint.encode(w);
        w.write_varint(self.signatures.len() as u64);
        for (signer, signature) in &self.signatures {
            signer.encode(w);
            signature.encode(w);
        }
    }
}

impl Decode for CheckpointProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let checkpoint = Checkpoint::decode(r)?;
        let count = r.read_varint()?;
        if count > 1024 {
            return Err(WireError::LengthLimitExceeded {
                declared: count,
                limit: 1024,
            });
        }
        let mut signatures = Vec::with_capacity(count as usize);
        for _ in 0..count {
            signatures.push((NodeId::decode(r)?, Signature::decode(r)?));
        }
        Ok(CheckpointProof {
            checkpoint,
            signatures,
        })
    }
}

/// Evidence that `(view, sn, batch)` was prepared: the batch itself
/// plus 2f prepare signatures, carried in view-change messages so the new
/// primary can re-propose in-flight batches bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedCert {
    /// View in which the batch prepared.
    pub view: u64,
    /// Base sequence number of the prepared batch.
    pub sn: u64,
    /// The prepared batch (full payloads, so the new primary can
    /// re-propose it even if it never saw the original preprepare).
    pub batch: ProposedBatch,
    /// Prepare signatures from distinct backups over the canonical
    /// encoding of the matching [`Prepare`].
    pub prepare_signatures: Vec<(NodeId, Signature)>,
}

impl PreparedCert {
    /// Sequence number of the batch's last request (inclusive).
    pub fn end_sn(&self) -> u64 {
        self.sn + self.batch.len() as u64 - 1
    }

    /// Verifies the certificate: at least `prepare_quorum` distinct valid
    /// prepare signatures matching this view/sn/batch digest.
    pub fn verify(&self, keystore: &Keystore, prepare_quorum: usize) -> bool {
        let prepare = Prepare {
            view: self.view,
            sn: self.sn,
            digest: self.batch.digest(),
        };
        let message = zugchain_wire::to_bytes(&Message::Prepare(prepare));
        let mut seen = std::collections::BTreeSet::new();
        let mut valid = 0usize;
        for (signer, signature) in &self.prepare_signatures {
            if !seen.insert(signer.0) {
                continue;
            }
            if keystore.verify(signer.0, &message, signature).is_ok() {
                valid += 1;
            }
        }
        valid >= prepare_quorum
    }
}

impl Encode for PreparedCert {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.view);
        w.write_u64(self.sn);
        self.batch.encode(w);
        w.write_varint(self.prepare_signatures.len() as u64);
        for (signer, signature) in &self.prepare_signatures {
            signer.encode(w);
            signature.encode(w);
        }
    }
}

impl Decode for PreparedCert {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let view = r.read_u64()?;
        let sn = r.read_u64()?;
        let batch = ProposedBatch::decode(r)?;
        let count = r.read_varint()?;
        if count > 1024 {
            return Err(WireError::LengthLimitExceeded {
                declared: count,
                limit: 1024,
            });
        }
        let mut prepare_signatures = Vec::with_capacity(count as usize);
        for _ in 0..count {
            prepare_signatures.push((NodeId::decode(r)?, Signature::decode(r)?));
        }
        Ok(PreparedCert {
            view,
            sn,
            batch,
            prepare_signatures,
        })
    }
}

/// A collector's aggregation of one voting phase for `(view, sn, digest)`
/// under [`CommMode::Collector`](crate::CommMode::Collector): the
/// signatures of the replicas whose vote it received, carried in a
/// [`Message::PrepareCert`] or [`Message::CommitCert`] broadcast.
///
/// The inner signatures are the authority — each is over the canonical
/// encoding of the matching [`Prepare`] or [`Commit`] — so the envelope
/// sender needs no trust: a receiver verifies the signatures and absorbs
/// them as if the individual votes had arrived directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteCert {
    /// View the aggregated votes belong to.
    pub view: u64,
    /// Base sequence number the votes cover.
    pub sn: u64,
    /// Batch digest the votes agree on.
    pub digest: Digest,
    /// `(voter, signature)` pairs over the canonical vote encoding.
    pub signatures: Vec<(NodeId, Signature)>,
}

impl Encode for VoteCert {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.view);
        w.write_u64(self.sn);
        self.digest.encode(w);
        w.write_varint(self.signatures.len() as u64);
        for (signer, signature) in &self.signatures {
            signer.encode(w);
            signature.encode(w);
        }
    }
}

impl Decode for VoteCert {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let view = r.read_u64()?;
        let sn = r.read_u64()?;
        let digest = Digest::decode(r)?;
        let count = r.read_varint()?;
        if count > 1024 {
            return Err(WireError::LengthLimitExceeded {
                declared: count,
                limit: 1024,
            });
        }
        let mut signatures = Vec::with_capacity(count as usize);
        for _ in 0..count {
            signatures.push((NodeId::decode(r)?, Signature::decode(r)?));
        }
        Ok(VoteCert {
            view,
            sn,
            digest,
            signatures,
        })
    }
}

/// A replica's vote to move to `new_view`, reporting its stable checkpoint
/// and prepared-but-undecided requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewChange {
    /// The view the sender wants to move to.
    pub new_view: u64,
    /// Sequence number of the sender's last stable checkpoint.
    pub last_stable_sn: u64,
    /// Proof of that checkpoint (absent before the first checkpoint).
    pub checkpoint_proof: Option<CheckpointProof>,
    /// Prepared certificates for requests above the stable checkpoint.
    pub prepared: Vec<PreparedCert>,
}

impl Encode for ViewChange {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.new_view);
        w.write_u64(self.last_stable_sn);
        self.checkpoint_proof.encode(w);
        encode_seq(&self.prepared, w);
    }
}

impl Decode for ViewChange {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ViewChange {
            new_view: r.read_u64()?,
            last_stable_sn: r.read_u64()?,
            checkpoint_proof: Option::<CheckpointProof>::decode(r)?,
            prepared: decode_seq(r)?,
        })
    }
}

/// The new primary's announcement of `view`: the 2f+1 view-change votes it
/// collected and the preprepares that re-propose every prepared request
/// (gaps filled with no-ops).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewView {
    /// The view being started.
    pub view: u64,
    /// The signed view-change votes justifying the new view.
    pub view_changes: Vec<SignedMessage>,
    /// Re-issued preprepares, in ascending sequence order.
    pub preprepares: Vec<PrePrepare>,
}

impl Encode for NewView {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.view);
        encode_seq(&self.view_changes, w);
        encode_seq(&self.preprepares, w);
    }
}

impl Decode for NewView {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NewView {
            view: r.read_u64()?,
            view_changes: decode_seq(r)?,
            preprepares: decode_seq(r)?,
        })
    }
}

/// The PBFT protocol message set.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum Message {
    /// Primary's proposal.
    PrePrepare(PrePrepare),
    /// Backup's acceptance.
    Prepare(Prepare),
    /// Replica's commitment.
    Commit(Commit),
    /// Snapshot declaration.
    Checkpoint(Checkpoint),
    /// Vote to change view.
    ViewChange(ViewChange),
    /// New primary's announcement.
    NewView(NewView),
    /// Collector's aggregated prepare votes.
    PrepareCert(VoteCert),
    /// Collector's aggregated commit votes.
    CommitCert(VoteCert),
}

impl Message {
    const TAG_PREPREPARE: u8 = 0;
    const TAG_PREPARE: u8 = 1;
    const TAG_COMMIT: u8 = 2;
    const TAG_CHECKPOINT: u8 = 3;
    const TAG_VIEWCHANGE: u8 = 4;
    const TAG_NEWVIEW: u8 = 5;
    const TAG_PREPARECERT: u8 = 6;
    const TAG_COMMITCERT: u8 = 7;

    /// Short name for logs and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::PrePrepare(_) => "preprepare",
            Message::Prepare(_) => "prepare",
            Message::Commit(_) => "commit",
            Message::Checkpoint(_) => "checkpoint",
            Message::ViewChange(_) => "viewchange",
            Message::NewView(_) => "newview",
            Message::PrepareCert(_) => "prepare-cert",
            Message::CommitCert(_) => "commit-cert",
        }
    }

    /// The bytes authentication (signature or MAC) covers.
    ///
    /// For every message except the preprepare this is the canonical
    /// encoding of the whole message. A preprepare instead authenticates
    /// a compact header — `(tag, view, sn, batch digest)` — because the
    /// batch digest already binds the full request run (count, order,
    /// headers, and payload digests, all recomputed on decode), and
    /// signing ~50 bytes instead of the encoded batch takes the
    /// per-proposal signature cost off the payload-size axis. Only this
    /// compact form is ever signed for a preprepare, so there is no
    /// ambiguity with the full encoding.
    pub fn auth_bytes(&self) -> Vec<u8> {
        match self {
            Message::PrePrepare(pp) => {
                let mut w = Writer::new();
                w.write_u8(Self::TAG_PREPREPARE);
                w.write_u64(pp.view);
                w.write_u64(pp.sn);
                pp.batch.digest().encode(&mut w);
                w.into_bytes()
            }
            other => zugchain_wire::to_bytes(other),
        }
    }
}

impl Encode for Message {
    fn encode(&self, w: &mut Writer) {
        match self {
            Message::PrePrepare(m) => {
                w.write_u8(Self::TAG_PREPREPARE);
                m.encode(w);
            }
            Message::Prepare(m) => {
                w.write_u8(Self::TAG_PREPARE);
                m.encode(w);
            }
            Message::Commit(m) => {
                w.write_u8(Self::TAG_COMMIT);
                m.encode(w);
            }
            Message::Checkpoint(m) => {
                w.write_u8(Self::TAG_CHECKPOINT);
                m.encode(w);
            }
            Message::ViewChange(m) => {
                w.write_u8(Self::TAG_VIEWCHANGE);
                m.encode(w);
            }
            Message::NewView(m) => {
                w.write_u8(Self::TAG_NEWVIEW);
                m.encode(w);
            }
            Message::PrepareCert(m) => {
                w.write_u8(Self::TAG_PREPARECERT);
                m.encode(w);
            }
            Message::CommitCert(m) => {
                w.write_u8(Self::TAG_COMMITCERT);
                m.encode(w);
            }
        }
    }
}

impl Decode for Message {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            Self::TAG_PREPREPARE => Ok(Message::PrePrepare(PrePrepare::decode(r)?)),
            Self::TAG_PREPARE => Ok(Message::Prepare(Prepare::decode(r)?)),
            Self::TAG_COMMIT => Ok(Message::Commit(Commit::decode(r)?)),
            Self::TAG_CHECKPOINT => Ok(Message::Checkpoint(Checkpoint::decode(r)?)),
            Self::TAG_VIEWCHANGE => Ok(Message::ViewChange(ViewChange::decode(r)?)),
            Self::TAG_NEWVIEW => Ok(Message::NewView(NewView::decode(r)?)),
            Self::TAG_PREPARECERT => Ok(Message::PrepareCert(VoteCert::decode(r)?)),
            Self::TAG_COMMITCERT => Ok(Message::CommitCert(VoteCert::decode(r)?)),
            tag => Err(WireError::InvalidDiscriminant {
                type_name: "Message",
                value: u64::from(tag),
            }),
        }
    }
}

/// How a [`SignedMessage`] is authenticated on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Auth {
    /// An Ed25519 signature over the message's
    /// [`auth_bytes`](Message::auth_bytes) — transferable evidence any
    /// third party can check against the keystore.
    Sig(Signature),
    /// Pairwise session MACs, one per addressed peer, each over the same
    /// [`auth_bytes`](Message::auth_bytes). A MAC convinces only the one
    /// peer holding the session key, so messages whose authentication
    /// must outlive a view (prepares and checkpoints, which feed
    /// view-change certificates) also embed the signature the fast path
    /// skipped verifying.
    Mac {
        /// `(addressee, tag)` pairs; each receiver looks up its own tag.
        tags: Vec<(NodeId, MacTag)>,
        /// The fallback/evidence signature, where one is required.
        sig: Option<Signature>,
    },
}

impl Auth {
    const TAG_SIG: u8 = 0;
    const TAG_MAC: u8 = 1;
}

impl Encode for Auth {
    fn encode(&self, w: &mut Writer) {
        match self {
            Auth::Sig(signature) => {
                w.write_u8(Self::TAG_SIG);
                signature.encode(w);
            }
            Auth::Mac { tags, sig } => {
                w.write_u8(Self::TAG_MAC);
                w.write_varint(tags.len() as u64);
                for (peer, tag) in tags {
                    peer.encode(w);
                    tag.encode(w);
                }
                sig.encode(w);
            }
        }
    }
}

impl Decode for Auth {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            Self::TAG_SIG => Ok(Auth::Sig(Signature::decode(r)?)),
            Self::TAG_MAC => {
                let count = r.read_varint()?;
                if count > 1024 {
                    return Err(WireError::LengthLimitExceeded {
                        declared: count,
                        limit: 1024,
                    });
                }
                let mut tags = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    tags.push((NodeId::decode(r)?, MacTag::decode(r)?));
                }
                Ok(Auth::Mac {
                    tags,
                    sig: Option::<Signature>::decode(r)?,
                })
            }
            tag => Err(WireError::InvalidDiscriminant {
                type_name: "Auth",
                value: u64::from(tag),
            }),
        }
    }
}

/// The receiving replica's judgement of a message's authentication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthVerdict {
    /// A valid signature (the plain [`Auth::Sig`] path).
    SigValid,
    /// A valid session MAC addressed to this replica — the fast path.
    /// Any embedded signature was *not* checked; callers that later use
    /// it as evidence must verify it first.
    MacValid,
    /// No usable MAC for this replica, but the embedded fallback
    /// signature verified.
    SigFallback,
    /// Neither a valid MAC nor a valid signature.
    Invalid,
}

impl AuthVerdict {
    /// `true` when the message is authentic and may be processed.
    pub fn accepted(self) -> bool {
        !matches!(self, AuthVerdict::Invalid)
    }

    /// `true` when the embedded signature was checked and found valid.
    pub fn signature_checked(self) -> bool {
        matches!(self, AuthVerdict::SigValid | AuthVerdict::SigFallback)
    }
}

/// A protocol message with its sender id and authentication over the
/// message's [`auth_bytes`](Message::auth_bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedMessage {
    /// Claimed sender (verified against the keystore or session keys).
    pub from: NodeId,
    /// The protocol message.
    pub message: Message,
    /// Signature or MAC-vector authentication.
    pub auth: Auth,
}

impl SignedMessage {
    /// Signs `message` as `from` (the [`Auth::Sig`] form).
    pub fn sign(from: NodeId, message: Message, key: &KeyPair) -> Self {
        let signature = key.sign(&message.auth_bytes());
        Self {
            from,
            message,
            auth: Auth::Sig(signature),
        }
    }

    /// Authenticates `message` with one session MAC per peer (the
    /// [`Auth::Mac`] fast path).
    ///
    /// When `sig_key` is given, the same bytes are also signed and the
    /// signature embedded — required for prepares and checkpoints, whose
    /// signatures become view-change evidence, and for interoperating
    /// with signature-only receivers.
    pub fn sign_mac(
        from: NodeId,
        message: Message,
        session: &SessionKeys,
        sig_key: Option<&KeyPair>,
    ) -> Self {
        let bytes = message.auth_bytes();
        let tags = session
            .peers()
            .filter_map(|peer| session.tag_for(peer, &bytes).map(|tag| (NodeId(peer), tag)))
            .collect();
        let sig = sig_key.map(|key| key.sign(&bytes));
        Self {
            from,
            message,
            auth: Auth::Mac { tags, sig },
        }
    }

    /// The embedded signature, if the message carries one.
    pub fn signature(&self) -> Option<Signature> {
        match &self.auth {
            Auth::Sig(signature) => Some(*signature),
            Auth::Mac { sig, .. } => *sig,
        }
    }

    /// Verifies the *signature* against the sender's registered key.
    ///
    /// MAC tags are ignored here: this is the check for contexts that
    /// need transferable evidence (view-change votes carried inside a
    /// NewView). A MAC-only message fails it by design.
    pub fn verify(&self, keystore: &Keystore) -> bool {
        match self.signature() {
            Some(signature) => keystore
                .verify(self.from.0, &self.message.auth_bytes(), &signature)
                .is_ok(),
            None => false,
        }
    }

    /// Full receive-path authentication: try the session-MAC fast path,
    /// fall back to the signature, reject if neither holds.
    pub fn verify_auth(&self, keystore: &Keystore, session: &SessionKeys) -> AuthVerdict {
        let bytes = self.message.auth_bytes();
        match &self.auth {
            Auth::Sig(signature) => {
                if keystore.verify(self.from.0, &bytes, signature).is_ok() {
                    AuthVerdict::SigValid
                } else {
                    AuthVerdict::Invalid
                }
            }
            Auth::Mac { tags, sig } => {
                let me = session.local_id();
                let my_tag = tags.iter().find(|(peer, _)| peer.0 == me);
                if let Some((_, tag)) = my_tag {
                    if session.verify_from(self.from.0, &bytes, tag) {
                        return AuthVerdict::MacValid;
                    }
                }
                match sig {
                    Some(signature) if keystore.verify(self.from.0, &bytes, signature).is_ok() => {
                        AuthVerdict::SigFallback
                    }
                    _ => AuthVerdict::Invalid,
                }
            }
        }
    }

    /// Encoded size in bytes — used for network accounting.
    pub fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for SignedMessage {
    fn encode(&self, w: &mut Writer) {
        self.from.encode(w);
        self.message.encode(w);
        self.auth.encode(w);
    }
}

impl Decode for SignedMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SignedMessage {
            from: NodeId::decode(r)?,
            message: Message::decode(r)?,
            auth: Auth::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProposedRequest;
    use zugchain_crypto::Keystore;

    #[test]
    fn mac_fast_path_and_sig_fallback() {
        let (pairs, keystore) = Keystore::generate(4, 0);
        let session: Vec<SessionKeys> = (0..4).map(|i| SessionKeys::derive(&keystore, i)).collect();
        let message = Message::Commit(Commit {
            view: 0,
            sn: 1,
            digest: Digest::of(b"batch"),
        });

        // MAC-only: accepted via the fast path at every peer, not
        // transferable (verify() fails — no signature).
        let mac_only = SignedMessage::sign_mac(NodeId(2), message.clone(), &session[2], None);
        for receiver in [0usize, 1, 3] {
            assert_eq!(
                mac_only.verify_auth(&keystore, &session[receiver]),
                AuthVerdict::MacValid,
                "receiver {receiver}"
            );
        }
        assert!(!mac_only.verify(&keystore));
        assert_eq!(mac_only.signature(), None);

        // MAC + embedded signature: fast path at addressed peers, and the
        // signature alone satisfies evidence contexts.
        let with_sig =
            SignedMessage::sign_mac(NodeId(2), message.clone(), &session[2], Some(&pairs[2]));
        assert_eq!(
            with_sig.verify_auth(&keystore, &session[0]),
            AuthVerdict::MacValid
        );
        assert!(with_sig.verify(&keystore));

        // A receiver with no tag (sender somehow omitted it) falls back to
        // the signature.
        let mut stripped = with_sig.clone();
        if let Auth::Mac { tags, .. } = &mut stripped.auth {
            tags.retain(|(peer, _)| peer.0 != 0);
        }
        assert_eq!(
            stripped.verify_auth(&keystore, &session[0]),
            AuthVerdict::SigFallback
        );

        // Plain signature mode still verdicts SigValid.
        let plain = SignedMessage::sign(NodeId(2), message, &pairs[2]);
        assert_eq!(
            plain.verify_auth(&keystore, &session[0]),
            AuthVerdict::SigValid
        );
    }

    #[test]
    fn forged_mac_is_rejected() {
        let (_, keystore) = Keystore::generate(4, 0);
        let (_, other_keystore) = Keystore::generate(4, 99);
        let honest: Vec<SessionKeys> = (0..4).map(|i| SessionKeys::derive(&keystore, i)).collect();
        let outsider = SessionKeys::derive(&other_keystore, 2);
        let message = Message::Commit(Commit {
            view: 0,
            sn: 1,
            digest: Digest::of(b"batch"),
        });

        // Valid-looking tags under the wrong session keys, no signature:
        // rejected outright.
        let forged = SignedMessage::sign_mac(NodeId(2), message.clone(), &outsider, None);
        assert_eq!(
            forged.verify_auth(&keystore, &honest[0]),
            AuthVerdict::Invalid
        );

        // Tampering with a tag of an honest message: the tag no longer
        // verifies and there is no fallback signature.
        let mut tampered = SignedMessage::sign_mac(NodeId(2), message, &honest[2], None);
        if let Auth::Mac { tags, .. } = &mut tampered.auth {
            let mut bytes = *tags[0].1.as_bytes();
            bytes[0] ^= 0x80;
            tags[0].1 = MacTag::from_bytes(bytes);
        }
        let victim = if let Auth::Mac { tags, .. } = &tampered.auth {
            tags[0].0 .0
        } else {
            unreachable!()
        };
        assert_eq!(
            tampered.verify_auth(&keystore, &honest[victim as usize]),
            AuthVerdict::Invalid
        );
    }

    #[test]
    fn preprepare_auth_bytes_bind_the_batch_digest() {
        let pp = |payload: Vec<u8>| {
            Message::PrePrepare(PrePrepare {
                view: 1,
                sn: 2,
                batch: ProposedBatch::single(ProposedRequest::application(payload, NodeId(0))),
            })
        };
        let a = pp(vec![1, 2, 3]);
        let b = pp(vec![1, 2, 4]);
        assert_ne!(
            a.auth_bytes(),
            b.auth_bytes(),
            "payload change reaches auth bytes"
        );
        assert!(
            a.auth_bytes().len() < 64,
            "compact header stays constant-size, got {}",
            a.auth_bytes().len()
        );
        // Non-preprepare messages authenticate their full encoding.
        let commit = Message::Commit(Commit {
            view: 1,
            sn: 2,
            digest: Digest::of(b"x"),
        });
        assert_eq!(commit.auth_bytes(), zugchain_wire::to_bytes(&commit));
    }

    fn request() -> ProposedRequest {
        ProposedRequest::application(vec![7; 32], NodeId(1))
    }

    fn batch() -> ProposedBatch {
        ProposedBatch::new(vec![
            request(),
            ProposedRequest::application(vec![8; 16], NodeId(2)),
        ])
    }

    #[test]
    fn every_message_round_trips() {
        let messages = vec![
            Message::PrePrepare(PrePrepare {
                view: 1,
                sn: 2,
                batch: batch(),
            }),
            Message::Prepare(Prepare {
                view: 1,
                sn: 2,
                digest: batch().digest(),
            }),
            Message::Commit(Commit {
                view: 1,
                sn: 2,
                digest: batch().digest(),
            }),
            Message::Checkpoint(Checkpoint {
                sn: 10,
                state_digest: Digest::of(b"block"),
            }),
            Message::ViewChange(ViewChange {
                new_view: 3,
                last_stable_sn: 10,
                checkpoint_proof: None,
                prepared: vec![PreparedCert {
                    view: 2,
                    sn: 11,
                    batch: batch(),
                    prepare_signatures: vec![],
                }],
            }),
            Message::NewView(NewView {
                view: 3,
                view_changes: vec![],
                preprepares: vec![PrePrepare {
                    view: 3,
                    sn: 11,
                    batch: ProposedBatch::single(ProposedRequest::noop(NodeId(3))),
                }],
            }),
            Message::PrepareCert(VoteCert {
                view: 1,
                sn: 2,
                digest: batch().digest(),
                signatures: vec![],
            }),
            Message::CommitCert(VoteCert {
                view: 4,
                sn: 9,
                digest: Digest::of(b"batch"),
                signatures: vec![],
            }),
        ];
        for message in messages {
            let back: Message =
                zugchain_wire::from_bytes(&zugchain_wire::to_bytes(&message)).unwrap();
            assert_eq!(back, message);
        }
    }

    #[test]
    fn signed_message_verifies_and_rejects_tampering() {
        let (pairs, keystore) = Keystore::generate(4, 0);
        let message = Message::Prepare(Prepare {
            view: 0,
            sn: 1,
            digest: Digest::of(b"r"),
        });
        let signed = SignedMessage::sign(NodeId(2), message, &pairs[2]);
        assert!(signed.verify(&keystore));

        // Wrong claimed sender.
        let mut forged = signed.clone();
        forged.from = NodeId(3);
        assert!(!forged.verify(&keystore));

        // Tampered content.
        let mut tampered = signed;
        tampered.message = Message::Prepare(Prepare {
            view: 0,
            sn: 2,
            digest: Digest::of(b"r"),
        });
        assert!(!tampered.verify(&keystore));
    }

    #[test]
    fn checkpoint_proof_requires_distinct_quorum() {
        let (pairs, keystore) = Keystore::generate(4, 0);
        let checkpoint = Checkpoint {
            sn: 10,
            state_digest: Digest::of(b"block"),
        };
        let message = zugchain_wire::to_bytes(&Message::Checkpoint(checkpoint));
        let sign = |id: usize| (NodeId(id as u64), pairs[id].sign(&message));

        let valid = CheckpointProof {
            checkpoint,
            signatures: vec![sign(0), sign(1), sign(2)],
        };
        assert!(valid.verify(&keystore, 3));

        // Same signer repeated does not reach quorum.
        let duplicated = CheckpointProof {
            checkpoint,
            signatures: vec![sign(0), sign(0), sign(0)],
        };
        assert!(!duplicated.verify(&keystore, 3));

        // A forged signature does not count.
        let mut forged = valid.clone();
        forged.signatures[2] = (NodeId(2), pairs[3].sign(&message));
        assert!(!forged.verify(&keystore, 3));
        assert!(forged.verify(&keystore, 2));
    }

    #[test]
    fn prepared_cert_verification() {
        let (pairs, keystore) = Keystore::generate(4, 0);
        let batch = batch();
        let prepare = Prepare {
            view: 1,
            sn: 5,
            digest: batch.digest(),
        };
        let message = zugchain_wire::to_bytes(&Message::Prepare(prepare));
        let cert = PreparedCert {
            view: 1,
            sn: 5,
            batch,
            prepare_signatures: vec![
                (NodeId(1), pairs[1].sign(&message)),
                (NodeId(2), pairs[2].sign(&message)),
            ],
        };
        assert_eq!(cert.end_sn(), 6, "two-request batch spans sn 5..=6");
        assert!(cert.verify(&keystore, 2));
        assert!(!cert.verify(&keystore, 3));

        // A cert over a different batch does not verify.
        let mut wrong = cert;
        wrong.batch = ProposedBatch::single(ProposedRequest::application(vec![1], NodeId(0)));
        assert!(!wrong.verify(&keystore, 2));
    }
}
