use zugchain_crypto::{Digest, KeyPair, Keystore, Signature};
use zugchain_wire::{decode_seq, encode_seq, Decode, Encode, Reader, WireError, Writer};

use crate::{NodeId, ProposedBatch};

/// The primary's proposal assigning a run of sequence numbers to a batch
/// of requests in `view` (PBFT preprepare phase).
///
/// The batch's `i`-th request takes sequence number `sn + i`; the whole
/// run `sn ..= end_sn` is agreed by one three-phase round certifying the
/// batch digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrePrepare {
    /// View in which the proposal is made.
    pub view: u64,
    /// Sequence number assigned to the batch's first request.
    pub sn: u64,
    /// The proposed batch.
    pub batch: ProposedBatch,
}

impl PrePrepare {
    /// Sequence number of the batch's last request (inclusive).
    pub fn end_sn(&self) -> u64 {
        self.sn + self.batch.len() as u64 - 1
    }
}

impl Encode for PrePrepare {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.view);
        w.write_u64(self.sn);
        self.batch.encode(w);
    }
}

impl Decode for PrePrepare {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PrePrepare {
            view: r.read_u64()?,
            sn: r.read_u64()?,
            batch: ProposedBatch::decode(r)?,
        })
    }
}

/// A backup's confirmation that it accepted the preprepare for
/// `(view, sn, digest)` (PBFT prepare phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prepare {
    /// View of the confirmed proposal.
    pub view: u64,
    /// Base sequence number of the confirmed proposal.
    pub sn: u64,
    /// Digest of the confirmed batch.
    pub digest: Digest,
}

impl Encode for Prepare {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.view);
        w.write_u64(self.sn);
        self.digest.encode(w);
    }
}

impl Decode for Prepare {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Prepare {
            view: r.read_u64()?,
            sn: r.read_u64()?,
            digest: Digest::decode(r)?,
        })
    }
}

/// A replica's commitment to execute `(view, sn, digest)` once 2f+1
/// replicas commit (PBFT commit phase). Same fields as [`Prepare`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commit {
    /// View of the committed proposal.
    pub view: u64,
    /// Base sequence number of the committed proposal.
    pub sn: u64,
    /// Digest of the committed batch.
    pub digest: Digest,
}

impl Encode for Commit {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.view);
        w.write_u64(self.sn);
        self.digest.encode(w);
    }
}

impl Decode for Commit {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Commit {
            view: r.read_u64()?,
            sn: r.read_u64()?,
            digest: Digest::decode(r)?,
        })
    }
}

/// A replica's signed snapshot declaration at sequence number `sn`.
///
/// ZugChain creates one checkpoint per block (§III-C): `state_digest` is
/// the hash of the block covering everything up to `sn`, so a stable
/// checkpoint's 2f+1 signatures prove that block's place in the chain —
/// the export protocol (§III-D) is built on exactly this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Sequence number the snapshot covers (inclusive).
    pub sn: u64,
    /// Application state digest (the block hash in ZugChain).
    pub state_digest: Digest,
}

impl Encode for Checkpoint {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.sn);
        self.state_digest.encode(w);
    }
}

impl Decode for Checkpoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Checkpoint {
            sn: r.read_u64()?,
            state_digest: Digest::decode(r)?,
        })
    }
}

/// Proof that a checkpoint became stable: 2f+1 replica signatures over the
/// same [`Checkpoint`] message.
///
/// This is the verifiable artifact data centers download during export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointProof {
    /// The checkpoint the signatures cover.
    pub checkpoint: Checkpoint,
    /// `(signer, signature)` pairs; signatures are over the canonical
    /// encoding of `checkpoint`.
    pub signatures: Vec<(NodeId, Signature)>,
}

impl CheckpointProof {
    /// Verifies the proof: at least `quorum` distinct, valid signatures
    /// from keys in `keystore`.
    ///
    /// Signatures are over the canonical encoding of
    /// `Message::Checkpoint(checkpoint)` — exactly the bytes each replica
    /// signed when broadcasting its checkpoint message, so proofs are
    /// assembled from the protocol messages without re-signing.
    pub fn verify(&self, keystore: &Keystore, quorum: usize) -> bool {
        let message = zugchain_wire::to_bytes(&Message::Checkpoint(self.checkpoint));
        let mut seen = std::collections::BTreeSet::new();
        let mut valid = 0usize;
        for (signer, signature) in &self.signatures {
            if !seen.insert(signer.0) {
                continue; // duplicate signer never counts twice
            }
            if keystore.verify(signer.0, &message, signature).is_ok() {
                valid += 1;
            }
        }
        valid >= quorum
    }
}

impl Encode for CheckpointProof {
    fn encode(&self, w: &mut Writer) {
        self.checkpoint.encode(w);
        w.write_varint(self.signatures.len() as u64);
        for (signer, signature) in &self.signatures {
            signer.encode(w);
            signature.encode(w);
        }
    }
}

impl Decode for CheckpointProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let checkpoint = Checkpoint::decode(r)?;
        let count = r.read_varint()?;
        if count > 1024 {
            return Err(WireError::LengthLimitExceeded {
                declared: count,
                limit: 1024,
            });
        }
        let mut signatures = Vec::with_capacity(count as usize);
        for _ in 0..count {
            signatures.push((NodeId::decode(r)?, Signature::decode(r)?));
        }
        Ok(CheckpointProof {
            checkpoint,
            signatures,
        })
    }
}

/// Evidence that `(view, sn, batch)` was prepared: the batch itself
/// plus 2f prepare signatures, carried in view-change messages so the new
/// primary can re-propose in-flight batches bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedCert {
    /// View in which the batch prepared.
    pub view: u64,
    /// Base sequence number of the prepared batch.
    pub sn: u64,
    /// The prepared batch (full payloads, so the new primary can
    /// re-propose it even if it never saw the original preprepare).
    pub batch: ProposedBatch,
    /// Prepare signatures from distinct backups over the canonical
    /// encoding of the matching [`Prepare`].
    pub prepare_signatures: Vec<(NodeId, Signature)>,
}

impl PreparedCert {
    /// Sequence number of the batch's last request (inclusive).
    pub fn end_sn(&self) -> u64 {
        self.sn + self.batch.len() as u64 - 1
    }

    /// Verifies the certificate: at least `prepare_quorum` distinct valid
    /// prepare signatures matching this view/sn/batch digest.
    pub fn verify(&self, keystore: &Keystore, prepare_quorum: usize) -> bool {
        let prepare = Prepare {
            view: self.view,
            sn: self.sn,
            digest: self.batch.digest(),
        };
        let message = zugchain_wire::to_bytes(&Message::Prepare(prepare));
        let mut seen = std::collections::BTreeSet::new();
        let mut valid = 0usize;
        for (signer, signature) in &self.prepare_signatures {
            if !seen.insert(signer.0) {
                continue;
            }
            if keystore.verify(signer.0, &message, signature).is_ok() {
                valid += 1;
            }
        }
        valid >= prepare_quorum
    }
}

impl Encode for PreparedCert {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.view);
        w.write_u64(self.sn);
        self.batch.encode(w);
        w.write_varint(self.prepare_signatures.len() as u64);
        for (signer, signature) in &self.prepare_signatures {
            signer.encode(w);
            signature.encode(w);
        }
    }
}

impl Decode for PreparedCert {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let view = r.read_u64()?;
        let sn = r.read_u64()?;
        let batch = ProposedBatch::decode(r)?;
        let count = r.read_varint()?;
        if count > 1024 {
            return Err(WireError::LengthLimitExceeded {
                declared: count,
                limit: 1024,
            });
        }
        let mut prepare_signatures = Vec::with_capacity(count as usize);
        for _ in 0..count {
            prepare_signatures.push((NodeId::decode(r)?, Signature::decode(r)?));
        }
        Ok(PreparedCert {
            view,
            sn,
            batch,
            prepare_signatures,
        })
    }
}

/// A replica's vote to move to `new_view`, reporting its stable checkpoint
/// and prepared-but-undecided requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewChange {
    /// The view the sender wants to move to.
    pub new_view: u64,
    /// Sequence number of the sender's last stable checkpoint.
    pub last_stable_sn: u64,
    /// Proof of that checkpoint (absent before the first checkpoint).
    pub checkpoint_proof: Option<CheckpointProof>,
    /// Prepared certificates for requests above the stable checkpoint.
    pub prepared: Vec<PreparedCert>,
}

impl Encode for ViewChange {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.new_view);
        w.write_u64(self.last_stable_sn);
        self.checkpoint_proof.encode(w);
        encode_seq(&self.prepared, w);
    }
}

impl Decode for ViewChange {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ViewChange {
            new_view: r.read_u64()?,
            last_stable_sn: r.read_u64()?,
            checkpoint_proof: Option::<CheckpointProof>::decode(r)?,
            prepared: decode_seq(r)?,
        })
    }
}

/// The new primary's announcement of `view`: the 2f+1 view-change votes it
/// collected and the preprepares that re-propose every prepared request
/// (gaps filled with no-ops).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewView {
    /// The view being started.
    pub view: u64,
    /// The signed view-change votes justifying the new view.
    pub view_changes: Vec<SignedMessage>,
    /// Re-issued preprepares, in ascending sequence order.
    pub preprepares: Vec<PrePrepare>,
}

impl Encode for NewView {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.view);
        encode_seq(&self.view_changes, w);
        encode_seq(&self.preprepares, w);
    }
}

impl Decode for NewView {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NewView {
            view: r.read_u64()?,
            view_changes: decode_seq(r)?,
            preprepares: decode_seq(r)?,
        })
    }
}

/// The PBFT protocol message set.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum Message {
    /// Primary's proposal.
    PrePrepare(PrePrepare),
    /// Backup's acceptance.
    Prepare(Prepare),
    /// Replica's commitment.
    Commit(Commit),
    /// Snapshot declaration.
    Checkpoint(Checkpoint),
    /// Vote to change view.
    ViewChange(ViewChange),
    /// New primary's announcement.
    NewView(NewView),
}

impl Message {
    const TAG_PREPREPARE: u8 = 0;
    const TAG_PREPARE: u8 = 1;
    const TAG_COMMIT: u8 = 2;
    const TAG_CHECKPOINT: u8 = 3;
    const TAG_VIEWCHANGE: u8 = 4;
    const TAG_NEWVIEW: u8 = 5;

    /// Short name for logs and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::PrePrepare(_) => "preprepare",
            Message::Prepare(_) => "prepare",
            Message::Commit(_) => "commit",
            Message::Checkpoint(_) => "checkpoint",
            Message::ViewChange(_) => "viewchange",
            Message::NewView(_) => "newview",
        }
    }
}

impl Encode for Message {
    fn encode(&self, w: &mut Writer) {
        match self {
            Message::PrePrepare(m) => {
                w.write_u8(Self::TAG_PREPREPARE);
                m.encode(w);
            }
            Message::Prepare(m) => {
                w.write_u8(Self::TAG_PREPARE);
                m.encode(w);
            }
            Message::Commit(m) => {
                w.write_u8(Self::TAG_COMMIT);
                m.encode(w);
            }
            Message::Checkpoint(m) => {
                w.write_u8(Self::TAG_CHECKPOINT);
                m.encode(w);
            }
            Message::ViewChange(m) => {
                w.write_u8(Self::TAG_VIEWCHANGE);
                m.encode(w);
            }
            Message::NewView(m) => {
                w.write_u8(Self::TAG_NEWVIEW);
                m.encode(w);
            }
        }
    }
}

impl Decode for Message {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            Self::TAG_PREPREPARE => Ok(Message::PrePrepare(PrePrepare::decode(r)?)),
            Self::TAG_PREPARE => Ok(Message::Prepare(Prepare::decode(r)?)),
            Self::TAG_COMMIT => Ok(Message::Commit(Commit::decode(r)?)),
            Self::TAG_CHECKPOINT => Ok(Message::Checkpoint(Checkpoint::decode(r)?)),
            Self::TAG_VIEWCHANGE => Ok(Message::ViewChange(ViewChange::decode(r)?)),
            Self::TAG_NEWVIEW => Ok(Message::NewView(NewView::decode(r)?)),
            tag => Err(WireError::InvalidDiscriminant {
                type_name: "Message",
                value: u64::from(tag),
            }),
        }
    }
}

/// A protocol message with its sender id and signature over the canonical
/// message encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedMessage {
    /// Claimed sender (verified against the keystore).
    pub from: NodeId,
    /// The protocol message.
    pub message: Message,
    /// Ed25519 signature over the canonical encoding of `message`.
    pub signature: Signature,
}

impl SignedMessage {
    /// Signs `message` as `from`.
    pub fn sign(from: NodeId, message: Message, key: &KeyPair) -> Self {
        let signature = key.sign(&zugchain_wire::to_bytes(&message));
        Self {
            from,
            message,
            signature,
        }
    }

    /// Verifies the signature against the sender's registered key.
    pub fn verify(&self, keystore: &Keystore) -> bool {
        keystore
            .verify(
                self.from.0,
                &zugchain_wire::to_bytes(&self.message),
                &self.signature,
            )
            .is_ok()
    }

    /// Encoded size in bytes — used for network accounting.
    pub fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for SignedMessage {
    fn encode(&self, w: &mut Writer) {
        self.from.encode(w);
        self.message.encode(w);
        self.signature.encode(w);
    }
}

impl Decode for SignedMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SignedMessage {
            from: NodeId::decode(r)?,
            message: Message::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProposedRequest;
    use zugchain_crypto::Keystore;

    fn request() -> ProposedRequest {
        ProposedRequest::application(vec![7; 32], NodeId(1))
    }

    fn batch() -> ProposedBatch {
        ProposedBatch::new(vec![
            request(),
            ProposedRequest::application(vec![8; 16], NodeId(2)),
        ])
    }

    #[test]
    fn every_message_round_trips() {
        let messages = vec![
            Message::PrePrepare(PrePrepare {
                view: 1,
                sn: 2,
                batch: batch(),
            }),
            Message::Prepare(Prepare {
                view: 1,
                sn: 2,
                digest: batch().digest(),
            }),
            Message::Commit(Commit {
                view: 1,
                sn: 2,
                digest: batch().digest(),
            }),
            Message::Checkpoint(Checkpoint {
                sn: 10,
                state_digest: Digest::of(b"block"),
            }),
            Message::ViewChange(ViewChange {
                new_view: 3,
                last_stable_sn: 10,
                checkpoint_proof: None,
                prepared: vec![PreparedCert {
                    view: 2,
                    sn: 11,
                    batch: batch(),
                    prepare_signatures: vec![],
                }],
            }),
            Message::NewView(NewView {
                view: 3,
                view_changes: vec![],
                preprepares: vec![PrePrepare {
                    view: 3,
                    sn: 11,
                    batch: ProposedBatch::single(ProposedRequest::noop(NodeId(3))),
                }],
            }),
        ];
        for message in messages {
            let back: Message =
                zugchain_wire::from_bytes(&zugchain_wire::to_bytes(&message)).unwrap();
            assert_eq!(back, message);
        }
    }

    #[test]
    fn signed_message_verifies_and_rejects_tampering() {
        let (pairs, keystore) = Keystore::generate(4, 0);
        let message = Message::Prepare(Prepare {
            view: 0,
            sn: 1,
            digest: Digest::of(b"r"),
        });
        let signed = SignedMessage::sign(NodeId(2), message, &pairs[2]);
        assert!(signed.verify(&keystore));

        // Wrong claimed sender.
        let mut forged = signed.clone();
        forged.from = NodeId(3);
        assert!(!forged.verify(&keystore));

        // Tampered content.
        let mut tampered = signed;
        tampered.message = Message::Prepare(Prepare {
            view: 0,
            sn: 2,
            digest: Digest::of(b"r"),
        });
        assert!(!tampered.verify(&keystore));
    }

    #[test]
    fn checkpoint_proof_requires_distinct_quorum() {
        let (pairs, keystore) = Keystore::generate(4, 0);
        let checkpoint = Checkpoint {
            sn: 10,
            state_digest: Digest::of(b"block"),
        };
        let message = zugchain_wire::to_bytes(&Message::Checkpoint(checkpoint));
        let sign = |id: usize| (NodeId(id as u64), pairs[id].sign(&message));

        let valid = CheckpointProof {
            checkpoint,
            signatures: vec![sign(0), sign(1), sign(2)],
        };
        assert!(valid.verify(&keystore, 3));

        // Same signer repeated does not reach quorum.
        let duplicated = CheckpointProof {
            checkpoint,
            signatures: vec![sign(0), sign(0), sign(0)],
        };
        assert!(!duplicated.verify(&keystore, 3));

        // A forged signature does not count.
        let mut forged = valid.clone();
        forged.signatures[2] = (NodeId(2), pairs[3].sign(&message));
        assert!(!forged.verify(&keystore, 3));
        assert!(forged.verify(&keystore, 2));
    }

    #[test]
    fn prepared_cert_verification() {
        let (pairs, keystore) = Keystore::generate(4, 0);
        let batch = batch();
        let prepare = Prepare {
            view: 1,
            sn: 5,
            digest: batch.digest(),
        };
        let message = zugchain_wire::to_bytes(&Message::Prepare(prepare));
        let cert = PreparedCert {
            view: 1,
            sn: 5,
            batch,
            prepare_signatures: vec![
                (NodeId(1), pairs[1].sign(&message)),
                (NodeId(2), pairs[2].sign(&message)),
            ],
        };
        assert_eq!(cert.end_sn(), 6, "two-request batch spans sn 5..=6");
        assert!(cert.verify(&keystore, 2));
        assert!(!cert.verify(&keystore, 3));

        // A cert over a different batch does not verify.
        let mut wrong = cert;
        wrong.batch = ProposedBatch::single(ProposedRequest::application(vec![1], NodeId(0)));
        assert!(!wrong.verify(&keystore, 2));
    }
}
