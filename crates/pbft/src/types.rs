use std::fmt;
use std::sync::Arc;

use zugchain_crypto::Digest;
use zugchain_wire::{decode_seq, encode_seq, Decode, Encode, Reader, WireError, Writer};

/// Identifier of a replica in the permissioned group.
///
/// Node ids double as key ids in the [`Keystore`](zugchain_crypto::Keystore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {}", self.0)
    }
}

impl Encode for NodeId {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.0);
    }
}

impl Decode for NodeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(r.read_u64()?))
    }
}

/// Discriminates real application requests from protocol-internal no-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// A request carrying application data to be logged.
    Application,
    /// A gap filler assigned by a new primary during view change so that
    /// sequence numbers stay contiguous; never logged by the application.
    Noop,
}

impl Encode for RequestKind {
    fn encode(&self, w: &mut Writer) {
        w.write_u8(match self {
            RequestKind::Application => 0,
            RequestKind::Noop => 1,
        });
    }
}

impl Decode for RequestKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(RequestKind::Application),
            1 => Ok(RequestKind::Noop),
            tag => Err(WireError::InvalidDiscriminant {
                type_name: "RequestKind",
                value: u64::from(tag),
            }),
        }
    }
}

/// A request as handed to consensus: the opaque payload plus the id of the
/// node that received it from the bus.
///
/// The ZugChain layer signs `(payload, origin)` before proposing
/// (Alg. 1 ln. 8, "authenticate and include node id"); that outer
/// signature travels in the layer's own messages. Inside PBFT, the
/// request is opaque — ordering binds to its [`digest`](Self::digest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProposedRequest {
    /// What kind of request this is.
    pub kind: RequestKind,
    /// The opaque request payload (a consolidated bus cycle).
    pub payload: Vec<u8>,
    /// Node that read the payload from the bus.
    pub origin: NodeId,
    /// Bus time at which the origin received the payload, in
    /// milliseconds. Part of the ordered request (and thus identical on
    /// every replica), so deterministic block bundling can stamp block
    /// headers with it — replicas must never consult local clocks for
    /// agreed state.
    pub time_ms: u64,
}

impl ProposedRequest {
    /// Creates an application request with origin time 0 (tests and
    /// benchmarks); production paths use [`with_time`](Self::with_time).
    pub fn application(payload: Vec<u8>, origin: NodeId) -> Self {
        Self {
            kind: RequestKind::Application,
            payload,
            origin,
            time_ms: 0,
        }
    }

    /// Stamps the origin's bus reception time.
    #[must_use]
    pub fn with_time(mut self, time_ms: u64) -> Self {
        self.time_ms = time_ms;
        self
    }

    /// Creates a no-op gap filler attributed to the new primary.
    pub fn noop(origin: NodeId) -> Self {
        Self {
            kind: RequestKind::Noop,
            payload: Vec::new(),
            origin,
            time_ms: 0,
        }
    }

    /// Returns `true` for protocol no-ops.
    pub fn is_noop(&self) -> bool {
        self.kind == RequestKind::Noop
    }

    /// Digest binding the whole request (kind, payload, origin) — what
    /// prepares and commits certify.
    pub fn digest(&self) -> Digest {
        Digest::of_encoded(self)
    }

    /// Digest of the payload only — the content identity the ZugChain
    /// layer filters duplicates on (two nodes reading the same bus cycle
    /// produce the same payload digest but different request digests).
    pub fn payload_digest(&self) -> Digest {
        Digest::of(&self.payload)
    }
}

impl Encode for ProposedRequest {
    fn encode(&self, w: &mut Writer) {
        self.kind.encode(w);
        w.write_bytes(&self.payload);
        self.origin.encode(w);
        w.write_u64(self.time_ms);
    }
}

impl Decode for ProposedRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ProposedRequest {
            kind: RequestKind::decode(r)?,
            payload: r.read_bytes()?.to_vec(),
            origin: NodeId::decode(r)?,
            time_ms: r.read_u64()?,
        })
    }
}

/// Upper bound on requests per batch accepted off the wire, far above any
/// sane [`Config::max_batch_size`](crate::Config) — a length-prefix
/// poisoning guard, not a protocol parameter.
pub const MAX_WIRE_BATCH_LEN: usize = 4096;

/// The unit of agreement: an ordered run of requests proposed together
/// under one preprepare.
///
/// A batch proposed at base sequence number `s` occupies sequence numbers
/// `s .. s + len - 1`; prepares and commits certify the *batch digest*,
/// computed in a single pass: each request's payload is hashed exactly
/// once, and the batch digest chains the per-request headers with those
/// payload digests in order. Binding the *payload digests* (not just the
/// concatenated bytes) into the order-binding chain means flipping one
/// payload byte anywhere changes the batch digest, while no payload byte
/// is ever hashed twice. Batches are never empty — a single-request batch
/// is exactly the pre-batching protocol.
///
/// The request run and cached digests live behind an [`Arc`], so cloning
/// a batch into consensus slots, certificates, and decide paths is O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProposedBatch {
    inner: Arc<BatchInner>,
}

#[derive(Debug, PartialEq, Eq)]
struct BatchInner {
    requests: Vec<ProposedRequest>,
    /// Order-binding digest chaining per-request headers and payload
    /// digests.
    digest: Digest,
    /// Each request's payload digest, hashed once at construction.
    payload_digests: Vec<Digest>,
}

impl ProposedBatch {
    /// Builds a batch from a non-empty run of requests, hashing each
    /// payload once and caching the batch digest.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty.
    pub fn new(requests: Vec<ProposedRequest>) -> Self {
        assert!(!requests.is_empty(), "batches are never empty");
        let (digest, payload_digests) = Self::digests_of(&requests);
        Self {
            inner: Arc::new(BatchInner {
                requests,
                digest,
                payload_digests,
            }),
        }
    }

    /// Wraps a single request — the unbatched protocol's unit.
    pub fn single(request: ProposedRequest) -> Self {
        Self::new(vec![request])
    }

    fn digests_of(requests: &[ProposedRequest]) -> (Digest, Vec<Digest>) {
        let payload_digests: Vec<Digest> = requests
            .iter()
            .map(ProposedRequest::payload_digest)
            .collect();
        // One chained hash binds the request count, the order, every
        // header field, and every payload digest. Payload bytes are not
        // touched again here.
        let mut parts = Vec::with_capacity(requests.len() * 2);
        let headers: Vec<[u8; 25]> = requests
            .iter()
            .map(|request| {
                let mut header = [0u8; 25];
                header[0] = match request.kind {
                    RequestKind::Application => 0,
                    RequestKind::Noop => 1,
                };
                header[1..9].copy_from_slice(&request.origin.0.to_le_bytes());
                header[9..17].copy_from_slice(&request.time_ms.to_le_bytes());
                header[17..25].copy_from_slice(&(request.payload.len() as u64).to_le_bytes());
                header
            })
            .collect();
        for (header, payload_digest) in headers.iter().zip(&payload_digests) {
            parts.push(header.as_slice());
            parts.push(payload_digest.as_bytes().as_slice());
        }
        (Digest::chain(parts), payload_digests)
    }

    /// The batch digest — what prepares and commits certify.
    pub fn digest(&self) -> Digest {
        self.inner.digest
    }

    /// Number of requests in the batch (always ≥ 1).
    pub fn len(&self) -> usize {
        self.inner.requests.len()
    }

    /// Always `false`; kept for idiomatic slice-likeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The ordered requests.
    pub fn requests(&self) -> &[ProposedRequest] {
        &self.inner.requests
    }

    /// The cached payload digest of each request, in batch order.
    pub fn payload_digests(&self) -> &[Digest] {
        &self.inner.payload_digests
    }

    /// Consumes the batch, yielding its requests in order.
    ///
    /// O(1) when this is the last handle to the batch; clones the
    /// requests otherwise.
    pub fn into_requests(self) -> Vec<ProposedRequest> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => inner.requests,
            Err(shared) => shared.requests.clone(),
        }
    }

    /// Sum of payload lengths, for memory accounting.
    pub fn payload_bytes(&self) -> usize {
        self.inner.requests.iter().map(|r| r.payload.len()).sum()
    }

    /// `true` if every request in the batch is a protocol no-op.
    pub fn is_all_noop(&self) -> bool {
        self.inner.requests.iter().all(ProposedRequest::is_noop)
    }
}

impl Encode for ProposedBatch {
    fn encode(&self, w: &mut Writer) {
        encode_seq(&self.inner.requests, w);
    }
}

impl Decode for ProposedBatch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let requests: Vec<ProposedRequest> = decode_seq(r)?;
        if requests.is_empty() {
            return Err(WireError::InvalidLength {
                expected: 1,
                actual: 0,
            });
        }
        if requests.len() > MAX_WIRE_BATCH_LEN {
            return Err(WireError::LengthLimitExceeded {
                declared: requests.len() as u64,
                limit: MAX_WIRE_BATCH_LEN as u64,
            });
        }
        Ok(ProposedBatch::new(requests))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_digests_distinguish_origin() {
        let a = ProposedRequest::application(vec![1, 2, 3], NodeId(0));
        let b = ProposedRequest::application(vec![1, 2, 3], NodeId(1));
        assert_ne!(a.digest(), b.digest(), "request digest binds origin");
        assert_eq!(
            a.payload_digest(),
            b.payload_digest(),
            "payload digest is content-only"
        );
    }

    #[test]
    fn noop_is_flagged() {
        assert!(ProposedRequest::noop(NodeId(2)).is_noop());
        assert!(!ProposedRequest::application(vec![], NodeId(2)).is_noop());
    }

    #[test]
    fn request_wire_round_trip() {
        let request = ProposedRequest::application(vec![9; 100], NodeId(3));
        let back: ProposedRequest =
            zugchain_wire::from_bytes(&zugchain_wire::to_bytes(&request)).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    fn kind_rejects_unknown_tag() {
        assert!(zugchain_wire::from_bytes::<RequestKind>(&[7]).is_err());
    }

    #[test]
    fn batch_wire_round_trip_preserves_order_and_digest() {
        let batch = ProposedBatch::new(vec![
            ProposedRequest::application(vec![1], NodeId(0)).with_time(10),
            ProposedRequest::application(vec![2], NodeId(1)).with_time(20),
            ProposedRequest::noop(NodeId(2)),
        ]);
        let back: ProposedBatch =
            zugchain_wire::from_bytes(&zugchain_wire::to_bytes(&batch)).unwrap();
        assert_eq!(back, batch);
        assert_eq!(
            back.digest(),
            batch.digest(),
            "digest is recomputed on decode"
        );
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn batch_digest_binds_order_and_contents() {
        let a = ProposedRequest::application(vec![1], NodeId(0));
        let b = ProposedRequest::application(vec![2], NodeId(1));
        let ab = ProposedBatch::new(vec![a.clone(), b.clone()]);
        let ba = ProposedBatch::new(vec![b.clone(), a.clone()]);
        assert_ne!(ab.digest(), ba.digest(), "digest binds request order");
        let mut tampered = ab.requests().to_vec();
        tampered[1].payload.push(0xFF);
        assert_ne!(ab.digest(), ProposedBatch::new(tampered).digest());
    }

    #[test]
    fn single_request_batch_matches_explicit_construction() {
        let request = ProposedRequest::application(vec![7; 32], NodeId(3));
        assert_eq!(
            ProposedBatch::single(request.clone()),
            ProposedBatch::new(vec![request])
        );
    }

    #[test]
    fn empty_batch_is_rejected_off_the_wire() {
        // A varint count of zero followed by nothing.
        assert!(matches!(
            zugchain_wire::from_bytes::<ProposedBatch>(&[0]),
            Err(WireError::InvalidLength { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "never empty")]
    fn empty_batch_construction_panics() {
        let _ = ProposedBatch::new(Vec::new());
    }

    #[test]
    fn payload_digests_are_cached_in_batch_order() {
        let requests = vec![
            ProposedRequest::application(vec![1; 40], NodeId(0)),
            ProposedRequest::application(vec![2; 40], NodeId(1)),
            ProposedRequest::noop(NodeId(2)),
        ];
        let batch = ProposedBatch::new(requests.clone());
        let expected: Vec<Digest> = requests
            .iter()
            .map(ProposedRequest::payload_digest)
            .collect();
        assert_eq!(batch.payload_digests(), expected.as_slice());
    }

    #[test]
    fn payload_byte_flip_inside_encoded_batch_changes_digest() {
        // Regression guard for the single-pass digest: if the chain bound
        // only per-request headers (or only the concatenated request
        // bytes) a payload flip deep inside a batch could leave the batch
        // digest unchanged. Flip one payload byte in the wire encoding;
        // the decoded batch must recompute a different digest.
        let batch = ProposedBatch::new(vec![
            ProposedRequest::application(vec![0x11; 64], NodeId(0)).with_time(5),
            ProposedRequest::application(vec![0xAA; 64], NodeId(1)).with_time(6),
        ]);
        let mut bytes = zugchain_wire::to_bytes(&batch);
        let pos = bytes
            .iter()
            .position(|&b| b == 0xAA)
            .expect("payload bytes present in encoding");
        bytes[pos] ^= 0x01;
        let tampered: ProposedBatch = zugchain_wire::from_bytes(&bytes).unwrap();
        assert_ne!(
            tampered.digest(),
            batch.digest(),
            "payload mutation must change the order-binding batch digest"
        );
        assert_ne!(tampered.payload_digests()[1], batch.payload_digests()[1]);
        assert_eq!(tampered.payload_digests()[0], batch.payload_digests()[0]);
    }

    #[test]
    fn into_requests_is_unchanged_by_sharing() {
        let batch = ProposedBatch::new(vec![
            ProposedRequest::application(vec![3; 8], NodeId(0)),
            ProposedRequest::application(vec![4; 8], NodeId(1)),
        ]);
        let shared = batch.clone();
        let via_shared = shared.into_requests();
        let via_unique = batch.clone().into_requests();
        assert_eq!(via_shared, via_unique);
        assert_eq!(via_unique, batch.requests().to_vec());
    }
}
