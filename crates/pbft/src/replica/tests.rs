use std::collections::VecDeque;

use zugchain_crypto::{Digest, Keystore};
use zugchain_machine::Effect;

use crate::{
    AuthMode, CommMode, Config, Message, NodeId, PrePrepare, ProposedBatch, ProposedRequest,
    Replica, ReplicaEvent, ReplicaTimer, SignedMessage,
};

/// Events collected from all replicas during a harness run.
#[derive(Debug, Default)]
struct Collected {
    /// `(replica, sn, request)` per decide.
    decides: Vec<(NodeId, u64, ProposedRequest)>,
    /// `(replica, view, primary)` per completed view change.
    new_primaries: Vec<(NodeId, u64, NodeId)>,
    /// `(replica, checkpoint sn)` per stable checkpoint.
    stable_checkpoints: Vec<(NodeId, u64)>,
    /// `(replica, from_sn, to_sn)` per requested state transfer.
    state_transfers: Vec<(NodeId, u64, u64)>,
}

/// A synchronous in-memory router driving a replica group: executes every
/// action, delivering messages until the system is quiet.
/// Per-destination message filter: return `false` to drop.
type MessageFilter = Box<dyn Fn(usize, &SignedMessage) -> bool>;

struct Cluster {
    replicas: Vec<Replica>,
    queue: VecDeque<(usize, SignedMessage)>,
    filter: MessageFilter,
    collected: Collected,
    /// Replicas whose view-change timer is armed (target view).
    vc_timers: Vec<Option<u64>>,
    /// Replicas whose partial-batch flush timer is armed.
    batch_timers: Vec<bool>,
    /// Armed collector fallback timers per replica.
    collector_timers: Vec<std::collections::BTreeSet<ReplicaTimer>>,
}

impl Cluster {
    fn new(n: usize) -> Self {
        let config = Config::new(n).unwrap();
        let (pairs, keystore) = Keystore::generate(n, 42);
        let replicas = pairs
            .into_iter()
            .enumerate()
            .map(|(id, key)| Replica::new(NodeId(id as u64), config.clone(), key, keystore.clone()))
            .collect();
        Self {
            replicas,
            queue: VecDeque::new(),
            filter: Box::new(|_, _| true),
            collected: Collected::default(),
            vc_timers: vec![None; n],
            batch_timers: vec![false; n],
            collector_timers: vec![std::collections::BTreeSet::new(); n],
        }
    }

    /// Rebuilds the cluster's replicas with a custom config.
    fn with_config(n: usize, config: Config) -> Self {
        let mut cluster = Self::new(n);
        let (pairs, keystore) = Keystore::generate(n, 42);
        cluster.replicas = pairs
            .into_iter()
            .enumerate()
            .map(|(id, key)| Replica::new(NodeId(id as u64), config.clone(), key, keystore.clone()))
            .collect();
        cluster
    }

    /// Fires the batch-flush timer on every replica where it is armed.
    fn fire_batch_timers(&mut self) {
        for index in 0..self.replicas.len() {
            if std::mem::take(&mut self.batch_timers[index]) {
                self.replicas[index].on_timer(ReplicaTimer::BatchFlush);
            }
        }
        self.run_until_quiet();
    }

    /// Fires every armed collector fallback timer, redelivering until
    /// both the network and the timer set are quiet — the "collector
    /// went silent" schedule.
    fn fire_collector_timers(&mut self) {
        for _ in 0..16 {
            let mut fired = false;
            for index in 0..self.replicas.len() {
                for timer in std::mem::take(&mut self.collector_timers[index]) {
                    self.replicas[index].on_timer(timer);
                    fired = true;
                }
            }
            if !fired {
                return;
            }
            self.run_until_quiet();
        }
        panic!("collector timers never quiesced");
    }

    fn keystore(&self) -> Keystore {
        let (_, keystore) = Keystore::generate(self.replicas.len(), 42);
        keystore
    }

    fn set_filter(&mut self, filter: impl Fn(usize, &SignedMessage) -> bool + 'static) {
        self.filter = Box::new(filter);
    }

    /// Collects effects from one replica into the queue / event log.
    fn pump(&mut self, index: usize) {
        let effects = self.replicas[index].drain_effects();
        let id = self.replicas[index].id();
        for effect in effects {
            match effect {
                Effect::Broadcast { message } => {
                    for dest in 0..self.replicas.len() {
                        if dest != index && (self.filter)(dest, &message) {
                            self.queue.push_back((dest, message.clone()));
                        }
                    }
                }
                Effect::Send { to, message } => {
                    let dest = to.0 as usize;
                    if dest != index && (self.filter)(dest, &message) {
                        self.queue.push_back((dest, message));
                    }
                }
                Effect::SetTimer {
                    id: ReplicaTimer::ViewChange(view),
                    ..
                } => {
                    self.vc_timers[index] = Some(view);
                }
                Effect::CancelTimer {
                    id: ReplicaTimer::ViewChange(_),
                } => {
                    self.vc_timers[index] = None;
                }
                Effect::SetTimer {
                    id: ReplicaTimer::BatchFlush,
                    ..
                } => {
                    self.batch_timers[index] = true;
                }
                Effect::CancelTimer {
                    id: ReplicaTimer::BatchFlush,
                } => {
                    self.batch_timers[index] = false;
                }
                Effect::SetTimer {
                    id: id @ (ReplicaTimer::CollectorPrepare(_) | ReplicaTimer::CollectorCommit(_)),
                    ..
                } => {
                    self.collector_timers[index].insert(id);
                }
                Effect::CancelTimer {
                    id: id @ (ReplicaTimer::CollectorPrepare(_) | ReplicaTimer::CollectorCommit(_)),
                } => {
                    self.collector_timers[index].remove(&id);
                }
                Effect::Output(ReplicaEvent::Decide { sn, request }) => {
                    self.collected.decides.push((id, sn, request));
                }
                Effect::Output(ReplicaEvent::NewPrimary { view, primary }) => {
                    self.collected.new_primaries.push((id, view, primary));
                }
                Effect::Output(ReplicaEvent::StableCheckpoint { proof }) => {
                    self.collected
                        .stable_checkpoints
                        .push((id, proof.checkpoint.sn));
                }
                Effect::Output(ReplicaEvent::NeedStateTransfer { from_sn, to_sn }) => {
                    self.collected.state_transfers.push((id, from_sn, to_sn));
                }
                Effect::Output(ReplicaEvent::PrePrepareSeen { .. }) => {}
            }
        }
    }

    /// Delivers queued messages until no replica produces more output.
    fn run_until_quiet(&mut self) {
        for index in 0..self.replicas.len() {
            self.pump(index);
        }
        while let Some((dest, message)) = self.queue.pop_front() {
            self.replicas[dest].on_message(message);
            self.pump(dest);
        }
    }

    /// Sequence of decided `(sn, payload)` on one replica.
    fn decides_on(&self, id: usize) -> Vec<(u64, Vec<u8>)> {
        self.collected
            .decides
            .iter()
            .filter(|(node, _, _)| node.0 == id as u64)
            .map(|(_, sn, request)| (*sn, request.payload.clone()))
            .collect()
    }
}

fn request(tag: u8, origin: u64) -> ProposedRequest {
    ProposedRequest::application(vec![tag; 16], NodeId(origin))
}

#[test]
fn normal_case_every_replica_decides() {
    let mut cluster = Cluster::new(4);
    cluster.replicas[0].propose(request(1, 0));
    cluster.run_until_quiet();
    for id in 0..4 {
        assert_eq!(
            cluster.decides_on(id),
            vec![(1, vec![1; 16])],
            "replica {id} must decide the request at sn 1"
        );
    }
}

#[test]
fn requests_decide_in_sequence_order() {
    let mut cluster = Cluster::new(4);
    for tag in 1..=5 {
        cluster.replicas[0].propose(request(tag, 0));
    }
    cluster.run_until_quiet();
    for id in 0..4 {
        let decides = cluster.decides_on(id);
        assert_eq!(decides.len(), 5);
        let sns: Vec<u64> = decides.iter().map(|(sn, _)| *sn).collect();
        assert_eq!(sns, vec![1, 2, 3, 4, 5]);
        let tags: Vec<u8> = decides.iter().map(|(_, payload)| payload[0]).collect();
        assert_eq!(tags, vec![1, 2, 3, 4, 5]);
    }
}

#[test]
fn seven_replica_group_orders_too() {
    let mut cluster = Cluster::new(7);
    cluster.replicas[0].propose(request(9, 0));
    cluster.run_until_quiet();
    for id in 0..7 {
        assert_eq!(cluster.decides_on(id), vec![(1, vec![9; 16])]);
    }
}

#[test]
fn decides_survive_one_silent_backup() {
    let mut cluster = Cluster::new(4);
    // Node 3 receives nothing: a crashed replica.
    cluster.set_filter(|dest, _| dest != 3);
    cluster.replicas[0].propose(request(2, 0));
    cluster.run_until_quiet();
    for id in 0..3 {
        assert_eq!(cluster.decides_on(id).len(), 1, "replica {id}");
    }
    assert!(cluster.decides_on(3).is_empty());
}

#[test]
fn checkpoint_becomes_stable_and_garbage_collects() {
    let mut cluster = Cluster::new(4);
    for tag in 1..=3 {
        cluster.replicas[0].propose(request(tag, 0));
    }
    cluster.run_until_quiet();

    let state = Digest::of(b"block-1");
    for replica in &mut cluster.replicas {
        replica.record_checkpoint(3, state);
    }
    cluster.run_until_quiet();

    assert_eq!(cluster.collected.stable_checkpoints.len(), 4);
    for replica in &cluster.replicas {
        assert_eq!(replica.low_watermark(), 3);
        let proof = replica.last_stable_proof().expect("stable proof exists");
        assert!(proof.verify(&cluster.keystore(), 3));
        assert_eq!(proof.checkpoint.state_digest, state);
    }
}

#[test]
fn divergent_checkpoint_from_one_faulty_replica_does_not_stabilize_wrong_state() {
    let mut cluster = Cluster::new(4);
    cluster.replicas[0].propose(request(1, 0));
    cluster.run_until_quiet();

    // Three replicas agree; the fourth lies about its state.
    for id in 0..3 {
        cluster.replicas[id].record_checkpoint(1, Digest::of(b"good"));
    }
    cluster.replicas[3].record_checkpoint(1, Digest::of(b"evil"));
    cluster.run_until_quiet();

    for replica in &cluster.replicas {
        if let Some(proof) = replica.last_stable_proof() {
            assert_eq!(proof.checkpoint.state_digest, Digest::of(b"good"));
        }
    }
}

#[test]
fn suspicion_by_two_nodes_changes_the_view() {
    let mut cluster = Cluster::new(4);
    // f+1 = 2 replicas suspect the primary; the join rule pulls in the rest.
    cluster.replicas[1].suspect(NodeId(0));
    cluster.replicas[2].suspect(NodeId(0));
    cluster.run_until_quiet();

    for replica in &cluster.replicas {
        if replica.id().0 == 0 {
            continue; // the deposed primary may lag
        }
        assert_eq!(replica.view(), 1, "replica {} view", replica.id().0);
        assert_eq!(replica.primary(), NodeId(1));
        assert!(!replica.in_view_change());
    }
    assert!(cluster
        .collected
        .new_primaries
        .iter()
        .any(|(_, view, primary)| *view == 1 && *primary == NodeId(1)));
}

#[test]
fn single_faulty_suspicion_does_not_change_view() {
    let mut cluster = Cluster::new(4);
    cluster.replicas[3].suspect(NodeId(0));
    cluster.run_until_quiet();
    // Nobody else suspects: no quorum, view stays 0 everywhere else.
    for id in 0..3 {
        assert_eq!(cluster.replicas[id].view(), 0);
    }
}

#[test]
fn view_change_preserves_prepared_requests() {
    let mut cluster = Cluster::new(4);
    // Let the request prepare but block every commit, so it is prepared
    // but not decided when the view change hits.
    cluster.set_filter(|_, message| !matches!(message.message, Message::Commit(_)));
    cluster.replicas[0].propose(request(7, 0));
    cluster.run_until_quiet();
    assert!(cluster.collected.decides.is_empty());

    cluster.set_filter(|_, _| true);
    cluster.replicas[1].suspect(NodeId(0));
    cluster.replicas[2].suspect(NodeId(0));
    cluster.run_until_quiet();

    // The request decides in the new view with its original payload.
    for id in 1..4 {
        let decides = cluster.decides_on(id);
        assert_eq!(decides.len(), 1, "replica {id} decides after view change");
        assert_eq!(decides[0].1, vec![7; 16]);
    }
}

#[test]
fn new_primary_fills_gaps_with_noops() {
    let mut cluster = Cluster::new(4);
    // Drop the preprepare for sn 1 entirely; sn 2 prepares normally but
    // cannot decide (in-order execution). Commits for sn 2 are also
    // dropped so it stays merely prepared.
    cluster.set_filter(|_, message| match &message.message {
        Message::PrePrepare(pp) => pp.sn != 1,
        Message::Commit(_) => false,
        _ => true,
    });
    cluster.replicas[0].propose(request(1, 0));
    cluster.replicas[0].propose(request(2, 0));
    cluster.run_until_quiet();
    assert!(cluster.collected.decides.is_empty());

    cluster.set_filter(|_, _| true);
    cluster.replicas[1].suspect(NodeId(0));
    cluster.replicas[2].suspect(NodeId(0));
    cluster.run_until_quiet();

    for id in 1..4 {
        let decides = cluster.decides_on(id);
        assert_eq!(decides.len(), 2, "replica {id}");
        assert_eq!(decides[0].0, 1);
        assert!(decides[0].1.is_empty(), "sn 1 must be a noop");
        assert_eq!(decides[1], (2, vec![2; 16]));
    }
}

#[test]
fn equivocating_primary_is_suspected() {
    let mut cluster = Cluster::new(4);
    let (pairs, _) = Keystore::generate(4, 42);

    // Byzantine primary: two different requests for the same (view, sn).
    let pp_a = SignedMessage::sign(
        NodeId(0),
        Message::PrePrepare(PrePrepare {
            view: 0,
            sn: 1,
            batch: ProposedBatch::single(request(1, 0)),
        }),
        &pairs[0],
    );
    let pp_b = SignedMessage::sign(
        NodeId(0),
        Message::PrePrepare(PrePrepare {
            view: 0,
            sn: 1,
            batch: ProposedBatch::single(request(2, 0)),
        }),
        &pairs[0],
    );
    cluster.replicas[1].on_message(pp_a);
    cluster.replicas[1].on_message(pp_b);
    let effects = cluster.replicas[1].drain_effects();
    assert!(
        effects.iter().any(|effect| matches!(
            effect,
            Effect::Broadcast { message } if matches!(message.message, Message::ViewChange(_))
        )),
        "equivocation must trigger a view-change vote"
    );
}

#[test]
fn forged_signatures_are_rejected() {
    let mut cluster = Cluster::new(4);
    let (pairs, _) = Keystore::generate(4, 42);
    // Node 3 forges a preprepare claiming to be from the primary.
    let forged = SignedMessage::sign(
        NodeId(3),
        Message::PrePrepare(PrePrepare {
            view: 0,
            sn: 1,
            batch: ProposedBatch::single(request(9, 3)),
        }),
        &pairs[3],
    );
    let mut impersonated = forged;
    impersonated.from = NodeId(0);
    cluster.replicas[1].on_message(impersonated);
    assert_eq!(cluster.replicas[1].stats().invalid_signatures, 1);
    assert!(cluster.replicas[1].drain_effects().is_empty());
}

#[test]
fn out_of_range_sender_is_ignored() {
    let mut cluster = Cluster::new(4);
    let (pairs, _) = Keystore::generate(1, 999);
    let msg = SignedMessage::sign(
        NodeId(77),
        Message::Prepare(crate::Prepare {
            view: 0,
            sn: 1,
            digest: Digest::ZERO,
        }),
        &pairs[0],
    );
    cluster.replicas[0].on_message(msg);
    assert_eq!(cluster.replicas[0].stats().ignored, 1);
}

#[test]
fn watermark_window_throttles_the_primary() {
    let mut cluster = Cluster::new(4);
    let config = Config::new(4).unwrap().with_watermark_window(2);
    let (pairs, keystore) = Keystore::generate(4, 42);
    cluster.replicas = pairs
        .into_iter()
        .enumerate()
        .map(|(id, key)| Replica::new(NodeId(id as u64), config.clone(), key, keystore.clone()))
        .collect();

    for tag in 1..=5 {
        cluster.replicas[0].propose(request(tag, 0));
    }
    cluster.run_until_quiet();
    // Only sn 1 and 2 fit in the window.
    assert_eq!(cluster.decides_on(1).len(), 2);

    // A checkpoint at 2 opens the window for 3 and 4.
    let state = Digest::of(b"block");
    for replica in &mut cluster.replicas {
        replica.record_checkpoint(2, state);
    }
    cluster.run_until_quiet();
    assert_eq!(cluster.decides_on(1).len(), 4);
}

#[test]
fn lagging_replica_detects_missed_state_via_checkpoints() {
    let mut cluster = Cluster::new(4);
    // Node 3 misses all ordering traffic.
    cluster
        .set_filter(|dest, message| dest != 3 || matches!(message.message, Message::Checkpoint(_)));
    for tag in 1..=3 {
        cluster.replicas[0].propose(request(tag, 0));
    }
    cluster.run_until_quiet();

    for id in 0..3 {
        cluster.replicas[id].record_checkpoint(3, Digest::of(b"block"));
    }
    cluster.run_until_quiet();

    // Node 3 saw 3 matching checkpoints (a quorum) and realizes it missed
    // sn 1..=3.
    assert!(cluster
        .collected
        .state_transfers
        .iter()
        .any(|(node, from, to)| node.0 == 3 && *from == 1 && *to == 3));
}

#[test]
fn stats_count_processing() {
    let mut cluster = Cluster::new(4);
    cluster.replicas[0].propose(request(1, 0));
    cluster.run_until_quiet();
    let stats = cluster.replicas[1].stats();
    assert!(stats.messages_processed > 0);
    assert_eq!(stats.decided, 1);
    assert_eq!(stats.invalid_signatures, 0);
}

#[test]
fn view_change_timeout_escalates_to_next_view() {
    let mut cluster = Cluster::new(4);
    // Nodes 1 and 2 suspect, but node 1 (the would-be new primary) is
    // silenced, so view 1 never assembles.
    cluster.set_filter(|dest, _| dest != 1);
    cluster.replicas[2].suspect(NodeId(0));
    cluster.replicas[3].suspect(NodeId(0));
    cluster.run_until_quiet();
    assert!(cluster.replicas[2].in_view_change());

    // Timers fire: everyone escalates to view 2, whose primary (node 2)
    // is alive.
    cluster.set_filter(|_, _| true);
    for id in [0usize, 2, 3] {
        if let Some(view) = cluster.vc_timers[id] {
            cluster.replicas[id].on_timer(ReplicaTimer::ViewChange(view));
        }
    }
    cluster.run_until_quiet();
    for id in [0usize, 2, 3] {
        assert_eq!(cluster.replicas[id].view(), 2, "replica {id}");
        assert_eq!(cluster.replicas[id].primary(), NodeId(2));
    }
}

#[test]
fn ordering_continues_in_the_new_view() {
    let mut cluster = Cluster::new(4);
    cluster.replicas[0].propose(request(1, 0));
    cluster.run_until_quiet();

    cluster.replicas[1].suspect(NodeId(0));
    cluster.replicas[2].suspect(NodeId(0));
    cluster.run_until_quiet();
    assert_eq!(cluster.replicas[1].view(), 1);

    // The new primary (node 1) proposes; everything still decides.
    cluster.replicas[1].propose(request(5, 1));
    cluster.run_until_quiet();
    let decides = cluster.decides_on(2);
    assert_eq!(decides.last().unwrap().1, vec![5; 16]);
}

#[test]
fn memory_accounting_reflects_in_flight_payloads() {
    let mut cluster = Cluster::new(4);
    let before = cluster.replicas[0].approx_memory_bytes();
    // Block all traffic so proposals pile up undecided.
    cluster.set_filter(|_, _| false);
    for tag in 1..=10 {
        cluster.replicas[0].propose(ProposedRequest::application(vec![tag; 1024], NodeId(0)));
    }
    cluster.run_until_quiet();
    let during = cluster.replicas[0].approx_memory_bytes();
    assert!(during > before + 10 * 1024);
}

#[test]
fn view_change_carries_checkpoint_to_lagging_replica() {
    let mut cluster = Cluster::new(4);
    // Node 3 misses all traffic while 5 requests are ordered and
    // checkpointed at sn 5.
    cluster.set_filter(|dest, _| dest != 3);
    for tag in 1..=5 {
        cluster.replicas[0].propose(request(tag, 0));
    }
    cluster.run_until_quiet();
    for id in 0..3 {
        cluster.replicas[id].record_checkpoint(5, Digest::of(b"block-5"));
    }
    cluster.run_until_quiet();
    assert_eq!(cluster.replicas[3].low_watermark(), 0, "node 3 is behind");

    // A view change happens; the view-change votes carry the stable
    // checkpoint proof, and node 3 adopts it when processing NewView.
    cluster.set_filter(|_, _| true);
    cluster.replicas[1].suspect(NodeId(0));
    cluster.replicas[2].suspect(NodeId(0));
    cluster.run_until_quiet();
    assert_eq!(
        cluster.replicas[3].low_watermark(),
        5,
        "NewView carried the checkpoint"
    );
    assert!(cluster
        .collected
        .state_transfers
        .iter()
        .any(|(node, _, to)| node.0 == 3 && *to == 5));
}

#[test]
fn buffered_prepares_racing_the_new_view_are_replayed() {
    let mut cluster = Cluster::new(4);
    // Prepare-but-don't-commit a request, then view change.
    cluster.set_filter(|_, message| !matches!(message.message, Message::Commit(_)));
    cluster.replicas[0].propose(request(5, 0));
    cluster.run_until_quiet();

    cluster.set_filter(|_, _| true);
    cluster.replicas[1].suspect(NodeId(0));
    cluster.replicas[2].suspect(NodeId(0));
    cluster.run_until_quiet();

    // All correct replicas decided it in the new view despite the raced
    // messages (the buffer/replay path).
    for id in 1..4 {
        assert_eq!(cluster.decides_on(id).len(), 1, "replica {id}");
    }
    // And the system keeps working afterwards.
    cluster.replicas[1].propose(request(6, 1));
    cluster.run_until_quiet();
    for id in 1..4 {
        assert_eq!(cluster.decides_on(id).len(), 2, "replica {id}");
    }
}

#[test]
fn noop_decides_advance_sequence_without_payload() {
    let mut cluster = Cluster::new(4);
    // sn 1's preprepare is censored; sn 2 prepares but cannot decide.
    cluster.set_filter(|_, message| match &message.message {
        Message::PrePrepare(pp) => pp.sn != 1,
        Message::Commit(_) => false,
        _ => true,
    });
    cluster.replicas[0].propose(request(1, 0));
    cluster.replicas[0].propose(request(2, 0));
    cluster.run_until_quiet();

    cluster.set_filter(|_, _| true);
    cluster.replicas[1].suspect(NodeId(0));
    cluster.replicas[2].suspect(NodeId(0));
    cluster.run_until_quiet();

    // The noop at sn 1 is decided (empty payload, noop kind) so sn 2 can
    // execute; ordering continues at sn 3 afterwards.
    cluster.replicas[1].propose(request(7, 1));
    cluster.run_until_quiet();
    let decides = cluster.decides_on(2);
    assert_eq!(decides.len(), 3);
    assert_eq!(decides[2].0, 3, "fresh proposal took sn 3");
}

#[test]
fn full_batches_decide_per_request_in_order() {
    let config = Config::new(4).unwrap().with_max_batch_size(4);
    let mut cluster = Cluster::with_config(4, config);
    for tag in 1..=8 {
        cluster.replicas[0].propose(request(tag, 0));
    }
    cluster.run_until_quiet();
    // Two full batches of four, unpacked into one decide per request at
    // consecutive sequence numbers.
    for id in 0..4 {
        let decides = cluster.decides_on(id);
        let sns: Vec<u64> = decides.iter().map(|(sn, _)| *sn).collect();
        assert_eq!(sns, (1..=8).collect::<Vec<u64>>(), "replica {id}");
        let tags: Vec<u8> = decides.iter().map(|(_, payload)| payload[0]).collect();
        assert_eq!(tags, (1..=8).collect::<Vec<u8>>(), "replica {id}");
    }
}

#[test]
fn partial_batch_waits_for_the_flush_timer() {
    let config = Config::new(4)
        .unwrap()
        .with_max_batch_size(4)
        .with_batch_delay(5);
    let mut cluster = Cluster::with_config(4, config);
    for tag in 1..=3 {
        cluster.replicas[0].propose(request(tag, 0));
    }
    cluster.run_until_quiet();
    assert!(
        cluster.collected.decides.is_empty(),
        "a partial batch must not flush before the timer"
    );
    assert!(cluster.batch_timers[0], "the flush timer must be armed");

    cluster.fire_batch_timers();
    for id in 0..4 {
        let decides = cluster.decides_on(id);
        assert_eq!(decides.len(), 3, "replica {id}");
        let sns: Vec<u64> = decides.iter().map(|(sn, _)| *sn).collect();
        assert_eq!(sns, vec![1, 2, 3]);
    }
}

#[test]
fn view_change_carries_a_prepared_batch_bit_identically() {
    let config = Config::new(4).unwrap().with_max_batch_size(3);
    let mut cluster = Cluster::with_config(4, config);
    // The batch prepares everywhere but never commits.
    cluster.set_filter(|_, message| !matches!(message.message, Message::Commit(_)));
    for tag in 1..=3 {
        cluster.replicas[0].propose(request(tag, 0));
    }
    cluster.run_until_quiet();
    assert!(cluster.collected.decides.is_empty());

    cluster.set_filter(|_, _| true);
    cluster.replicas[1].suspect(NodeId(0));
    cluster.replicas[2].suspect(NodeId(0));
    cluster.run_until_quiet();

    // The new primary re-proposed the prepared batch unchanged: every
    // request decides at its original sequence number with its original
    // payload.
    for id in 1..4 {
        let decides = cluster.decides_on(id);
        assert_eq!(decides.len(), 3, "replica {id}");
        for (i, (sn, payload)) in decides.iter().enumerate() {
            assert_eq!(*sn, i as u64 + 1, "replica {id}");
            assert_eq!(payload, &vec![i as u8 + 1; 16], "replica {id}");
        }
    }
}

#[test]
fn ordering_continues_after_a_batched_view_change() {
    let config = Config::new(4).unwrap().with_max_batch_size(2);
    let mut cluster = Cluster::with_config(4, config);
    cluster.replicas[0].propose(request(1, 0));
    cluster.replicas[0].propose(request(2, 0));
    cluster.run_until_quiet();

    cluster.replicas[1].suspect(NodeId(0));
    cluster.replicas[2].suspect(NodeId(0));
    cluster.run_until_quiet();
    assert_eq!(cluster.replicas[1].view(), 1);

    // The new primary proposes a fresh full batch; its base sequence
    // number continues after the decided batch.
    cluster.replicas[1].propose(request(5, 1));
    cluster.replicas[1].propose(request(6, 1));
    cluster.run_until_quiet();
    let decides = cluster.decides_on(2);
    assert_eq!(decides.len(), 4);
    assert_eq!(decides[2].0, 3, "fresh batch starts at sn 3");
    assert_eq!(decides[3].0, 4);
    assert_eq!(decides[3].1, vec![6; 16]);
}

/// Regression for the lost-prepare stall: a replica that re-receives a
/// preprepare with a matching digest must re-broadcast its Prepare
/// instead of silently ignoring the duplicate.
#[test]
fn redelivered_preprepare_rebroadcasts_the_prepare() {
    let mut cluster = Cluster::new(4);
    let (pairs, _) = Keystore::generate(4, 42);
    let pp = SignedMessage::sign(
        NodeId(0),
        Message::PrePrepare(PrePrepare {
            view: 0,
            sn: 1,
            batch: ProposedBatch::single(request(3, 0)),
        }),
        &pairs[0],
    );
    cluster.replicas[1].on_message(pp.clone());
    // The first Prepare broadcast is lost in transit.
    let first = cluster.replicas[1].drain_effects();
    assert!(first.iter().any(|effect| matches!(
        effect,
        Effect::Broadcast { message } if matches!(message.message, Message::Prepare(_))
    )));

    cluster.replicas[1].on_message(pp);
    let second = cluster.replicas[1].drain_effects();
    assert!(
        second.iter().any(|effect| matches!(
            effect,
            Effect::Broadcast { message } if matches!(message.message, Message::Prepare(_))
        )),
        "a duplicate preprepare with a matching digest must re-trigger the Prepare"
    );
}

/// Regression for the lost-prepare stall, end to end: with enough
/// prepares lost the slot cannot commit, and retransmitting the
/// preprepare (rather than a full view change) heals it.
#[test]
fn lost_prepares_heal_when_the_preprepare_is_retransmitted() {
    let mut cluster = Cluster::new(4);
    // Every Prepare broadcast by nodes 1 and 2 vanishes: node 3 and the
    // primary never assemble a prepared certificate, so no slot commits.
    cluster.set_filter(|_, message| {
        !(matches!(message.message, Message::Prepare(_))
            && (message.from == NodeId(1) || message.from == NodeId(2)))
    });
    cluster.replicas[0].propose(request(4, 0));
    cluster.run_until_quiet();
    assert!(
        cluster.collected.decides.is_empty(),
        "the slot must stall with the prepares lost"
    );

    // The network heals and the primary retransmits its preprepare.
    // Replicas 1 and 2 already accepted it; the duplicate must make them
    // re-broadcast their Prepare so the slot commits everywhere.
    cluster.set_filter(|_, _| true);
    let (pairs, _) = Keystore::generate(4, 42);
    let pp = SignedMessage::sign(
        NodeId(0),
        Message::PrePrepare(PrePrepare {
            view: 0,
            sn: 1,
            batch: ProposedBatch::single(request(4, 0)),
        }),
        &pairs[0],
    );
    for id in [1usize, 2] {
        cluster.replicas[id].on_message(pp.clone());
        cluster.pump(id);
    }
    cluster.run_until_quiet();
    for id in 0..4 {
        assert_eq!(cluster.decides_on(id).len(), 1, "replica {id} commits");
    }
}

/// Regression for buffered-message starvation: with the buffer at
/// exactly its capacity limit, the entry for the *farthest* future view
/// must be evicted — dropping the newest arrival instead starves the
/// nearest-view traffic that lets a partitioned replica rejoin.
#[test]
fn full_buffer_evicts_farthest_view_so_a_healing_partition_replays() {
    let config = Config::new(4).unwrap().with_max_buffered_messages(3);
    let mut cluster = Cluster::with_config(4, config.clone());
    let (pairs, _) = Keystore::generate(4, 42);

    let prepare = |view: u64, sn: u64, from: u64, digest: Digest| {
        SignedMessage::sign(
            NodeId(from),
            Message::Prepare(crate::Prepare { view, sn, digest }),
            &pairs[from as usize],
        )
    };

    // Node 3 sits behind a partition in view 0 while the rest of the
    // group races ahead: stray view-9 traffic fills its buffer to the
    // limit first.
    for sn in 1..=3 {
        cluster.replicas[3].on_message(prepare(9, sn, 1, Digest::ZERO));
    }
    assert_eq!(cluster.replicas[3].progress_snapshot().4, 3);

    // As the partition heals, the view-1 ordering round for sn 1
    // arrives. Each message must displace a view-9 entry.
    let batch = ProposedBatch::single(request(1, 0));
    let digest = batch.digest();
    let pp = SignedMessage::sign(
        NodeId(1),
        Message::PrePrepare(PrePrepare {
            view: 1,
            sn: 1,
            batch,
        }),
        &pairs[1],
    );
    cluster.replicas[3].on_message(pp);
    cluster.replicas[3].on_message(prepare(1, 1, 2, digest));
    cluster.replicas[3].on_message(prepare(1, 1, 0, digest));
    assert_eq!(
        cluster.replicas[3].progress_snapshot().4,
        3,
        "buffer stays at its limit"
    );

    // The NewView for view 1 finally reaches node 3.
    let votes: Vec<SignedMessage> = [0u64, 1, 2]
        .iter()
        .map(|&id| {
            SignedMessage::sign(
                NodeId(id),
                Message::ViewChange(crate::ViewChange {
                    new_view: 1,
                    last_stable_sn: 0,
                    checkpoint_proof: None,
                    prepared: Vec::new(),
                }),
                &pairs[id as usize],
            )
        })
        .collect();
    let new_view = SignedMessage::sign(
        NodeId(1),
        Message::NewView(crate::NewView {
            view: 1,
            view_changes: votes,
            preprepares: Vec::new(),
        }),
        &pairs[1],
    );
    cluster.replicas[3].on_message(new_view);
    let _ = cluster.replicas[3].drain_effects();

    // The buffered view-1 round replayed: the slot holds the preprepare
    // plus both prepares and reaches the prepared milestone. Under the
    // old drop-newest policy the buffer would still hold the useless
    // view-9 strays and the slot would not exist.
    let slots = cluster.replicas[3].slot_snapshot();
    assert!(
        slots
            .iter()
            .any(|&(sn, has_pp, prepares, _, prepared, _)| sn == 1
                && has_pp
                && prepares >= 2
                && prepared),
        "view-1 traffic must survive eviction and replay: {slots:?}"
    );
}

#[test]
fn resumed_replica_continues_after_its_checkpoint() {
    // Run a group, checkpoint at sn 3, then "power-cycle" every replica
    // via Replica::resume and order new requests.
    let mut cluster = Cluster::new(4);
    for tag in 1..=3 {
        cluster.replicas[0].propose(request(tag, 0));
    }
    cluster.run_until_quiet();
    let state = Digest::of(b"block-1");
    for replica in &mut cluster.replicas {
        replica.record_checkpoint(3, state);
    }
    cluster.run_until_quiet();
    let proof = cluster.replicas[0]
        .last_stable_proof()
        .expect("stable")
        .clone();

    // Restart all four from the proof.
    let config = Config::new(4).unwrap();
    let (pairs, keystore) = Keystore::generate(4, 42);
    cluster.replicas = pairs
        .into_iter()
        .enumerate()
        .map(|(id, key)| {
            Replica::resume(
                NodeId(id as u64),
                config.clone(),
                key,
                keystore.clone(),
                proof.clone(),
            )
        })
        .collect();
    cluster.collected = Default::default();

    assert_eq!(cluster.replicas[1].low_watermark(), 3);
    cluster.replicas[0].propose(request(9, 0));
    cluster.run_until_quiet();
    for id in 0..4 {
        let decides = cluster.decides_on(id);
        assert_eq!(
            decides,
            vec![(4, vec![9; 16])],
            "replica {id} continues at sn 4"
        );
    }
}

/// Regression: a Byzantine backup must not be able to launder an
/// overlapping preprepare past the batch-overlap check by interposing a
/// vote-only slot. The batch at sn 1 covers 1..=4; a stray prepare at
/// sn 3 creates a preprepare-less slot between the batch's base and an
/// equivocating preprepare at sn 4, which must still be detected and
/// trigger a view change — accepting it would let two committed batches
/// cover the same sequence number (divergent logs).
#[test]
fn overlapping_preprepare_behind_a_vote_only_slot_is_equivocation() {
    let config = Config::new(4).unwrap().with_max_batch_size(4);
    let mut cluster = Cluster::with_config(4, config);
    let (pairs, _) = Keystore::generate(4, 42);

    let batch = ProposedBatch::new((1u8..=4).map(|tag| request(tag, 0)).collect());
    let pp = SignedMessage::sign(
        NodeId(0),
        Message::PrePrepare(PrePrepare {
            view: 0,
            sn: 1,
            batch,
        }),
        &pairs[0],
    );
    cluster.replicas[1].on_message(pp);
    let _ = cluster.replicas[1].drain_effects();

    // Byzantine node 2 interposes a vote-only slot mid-batch...
    let stray = SignedMessage::sign(
        NodeId(2),
        Message::Prepare(crate::Prepare {
            view: 0,
            sn: 3,
            digest: Digest::ZERO,
        }),
        &pairs[2],
    );
    cluster.replicas[1].on_message(stray);

    // ...so the equivocating primary's second preprepare at sn 4 (a
    // number the first batch already owns) has a preprepare-less
    // nearest predecessor.
    let overlapping = SignedMessage::sign(
        NodeId(0),
        Message::PrePrepare(PrePrepare {
            view: 0,
            sn: 4,
            batch: ProposedBatch::single(request(9, 0)),
        }),
        &pairs[0],
    );
    cluster.replicas[1].on_message(overlapping);

    let effects = cluster.replicas[1].drain_effects();
    assert!(
        effects.iter().any(|effect| matches!(
            effect,
            Effect::Broadcast { message } if matches!(message.message, Message::ViewChange(_))
        )),
        "an overlapping preprepare behind a vote-only slot must trigger a view change"
    );
    assert!(
        cluster.replicas[1]
            .slot_snapshot()
            .iter()
            .all(|&(sn, has_pp, ..)| sn != 4 || !has_pp),
        "the overlapping preprepare must not be accepted"
    );
}

/// Regression: a stray vote-only slot between a straddling batch's base
/// and the next undecided sequence number must not wedge decides. A
/// checkpoint quorum lands mid-batch (decided_up_to jumps to 2 inside a
/// batch covering 1..=4), a Byzantine prepare creates a vote-only slot
/// at sn 3, and the batch's tail must still decide once it commits.
#[test]
fn decides_resume_past_a_vote_only_slot_after_a_mid_batch_checkpoint() {
    let config = Config::new(4).unwrap().with_max_batch_size(4);
    let (pairs, keystore) = Keystore::generate(4, 42);
    let mut replica = Replica::new(NodeId(3), config, pairs[3].clone(), keystore);

    // The primary's batch covers sn 1..=4.
    let batch = ProposedBatch::new((1u8..=4).map(|tag| request(tag, 0)).collect());
    let digest = batch.digest();
    let pp = SignedMessage::sign(
        NodeId(0),
        Message::PrePrepare(PrePrepare {
            view: 0,
            sn: 1,
            batch,
        }),
        &pairs[0],
    );
    replica.on_message(pp);

    // A checkpoint quorum at sn 2 lands mid-batch: the watermark and
    // decided_up_to jump to 2 while the batch still owes sn 3 and 4.
    for id in 0..3u64 {
        let vote = SignedMessage::sign(
            NodeId(id),
            Message::Checkpoint(crate::Checkpoint {
                sn: 2,
                state_digest: Digest::of(b"mid-batch"),
            }),
            &pairs[id as usize],
        );
        replica.on_message(vote);
    }
    assert_eq!(
        replica.progress_snapshot().2,
        2,
        "decided_up_to jumped to 2"
    );

    // Byzantine node 2 interposes a vote-only slot at sn 3, right
    // between the batch's base and the next undecided sequence number.
    let stray = SignedMessage::sign(
        NodeId(2),
        Message::Prepare(crate::Prepare {
            view: 0,
            sn: 3,
            digest: Digest::ZERO,
        }),
        &pairs[2],
    );
    replica.on_message(stray);

    // The rest of the round arrives and the batch commits.
    for id in [1u64, 2] {
        let prepare = SignedMessage::sign(
            NodeId(id),
            Message::Prepare(crate::Prepare {
                view: 0,
                sn: 1,
                digest,
            }),
            &pairs[id as usize],
        );
        replica.on_message(prepare);
    }
    for id in [0u64, 1] {
        let commit = SignedMessage::sign(
            NodeId(id),
            Message::Commit(crate::Commit {
                view: 0,
                sn: 1,
                digest,
            }),
            &pairs[id as usize],
        );
        replica.on_message(commit);
    }

    let decided: Vec<(u64, Vec<u8>)> = replica
        .drain_effects()
        .into_iter()
        .filter_map(|effect| match effect {
            Effect::Output(ReplicaEvent::Decide { sn, request }) => Some((sn, request.payload)),
            _ => None,
        })
        .collect();
    assert_eq!(
        decided,
        vec![(3, vec![3; 16]), (4, vec![4; 16])],
        "the batch's tail must decide despite the vote-only slot at sn 3"
    );
}

/// Regression: with the buffer at capacity, an incoming message for a
/// view at or beyond the farthest buffered view must be dropped — under
/// the old policy it displaced a nearer-view entry, inverting the
/// "nearest future views survive" rule for the first arrival after the
/// buffer fills.
#[test]
fn full_buffer_drops_incoming_farther_view_message() {
    let config = Config::new(4).unwrap().with_max_buffered_messages(3);
    let mut cluster = Cluster::with_config(4, config);
    let (pairs, _) = Keystore::generate(4, 42);

    // The complete view-1 round for sn 1 fills node 3's buffer.
    let batch = ProposedBatch::single(request(1, 0));
    let digest = batch.digest();
    let pp = SignedMessage::sign(
        NodeId(1),
        Message::PrePrepare(PrePrepare {
            view: 1,
            sn: 1,
            batch,
        }),
        &pairs[1],
    );
    cluster.replicas[3].on_message(pp);
    for from in [2u64, 0] {
        let prepare = SignedMessage::sign(
            NodeId(from),
            Message::Prepare(crate::Prepare {
                view: 1,
                sn: 1,
                digest,
            }),
            &pairs[from as usize],
        );
        cluster.replicas[3].on_message(prepare);
    }
    assert_eq!(cluster.replicas[3].progress_snapshot().4, 3);

    // A stray view-9 message hits the full buffer: it is farther out
    // than everything buffered and must be dropped, not traded for a
    // view-1 entry.
    let ignored_before = cluster.replicas[3].stats().ignored;
    let stray = SignedMessage::sign(
        NodeId(2),
        Message::Prepare(crate::Prepare {
            view: 9,
            sn: 1,
            digest: Digest::ZERO,
        }),
        &pairs[2],
    );
    cluster.replicas[3].on_message(stray);
    assert_eq!(cluster.replicas[3].progress_snapshot().4, 3);
    assert_eq!(cluster.replicas[3].stats().ignored, ignored_before + 1);

    // The NewView arrives; the full view-1 round must replay.
    let votes: Vec<SignedMessage> = [0u64, 1, 2]
        .iter()
        .map(|&id| {
            SignedMessage::sign(
                NodeId(id),
                Message::ViewChange(crate::ViewChange {
                    new_view: 1,
                    last_stable_sn: 0,
                    checkpoint_proof: None,
                    prepared: Vec::new(),
                }),
                &pairs[id as usize],
            )
        })
        .collect();
    let new_view = SignedMessage::sign(
        NodeId(1),
        Message::NewView(crate::NewView {
            view: 1,
            view_changes: votes,
            preprepares: Vec::new(),
        }),
        &pairs[1],
    );
    cluster.replicas[3].on_message(new_view);
    let _ = cluster.replicas[3].drain_effects();

    assert_eq!(
        cluster.replicas[3].progress_snapshot().4,
        0,
        "no stray future-view traffic survives the replay"
    );
    let slots = cluster.replicas[3].slot_snapshot();
    assert!(
        slots
            .iter()
            .any(|&(sn, has_pp, prepares, _, prepared, _)| sn == 1
                && has_pp
                && prepares >= 3
                && prepared),
        "the full view-1 round must survive the stray: {slots:?}"
    );
}

// ----------------------------------------------------------------------
// Collector communication mode
// ----------------------------------------------------------------------

fn collector_cluster(n: usize) -> Cluster {
    Cluster::with_config(
        n,
        Config::new(n).unwrap().with_comm_mode(CommMode::Collector),
    )
}

#[test]
fn collector_mode_every_replica_decides() {
    let mut cluster = collector_cluster(4);
    for tag in 1..=3 {
        cluster.replicas[0].propose(request(tag, 0));
    }
    cluster.run_until_quiet();
    for id in 0..4 {
        let decides = cluster.decides_on(id);
        let sns: Vec<u64> = decides.iter().map(|(sn, _)| *sn).collect();
        assert_eq!(sns, vec![1, 2, 3], "replica {id}");
    }
    let sum = |pick: fn(&crate::ReplicaStats) -> u64| -> u64 {
        cluster
            .replicas
            .iter()
            .map(|replica| pick(&replica.stats()))
            .sum()
    };
    assert_eq!(
        sum(|stats| stats.collector_certs_sent),
        6,
        "one prepare and one commit certificate per slot"
    );
    assert!(
        sum(|stats| stats.collector_certs_absorbed) > 0,
        "backups advance on certificates"
    );
    assert_eq!(
        sum(|stats| stats.collector_fallbacks),
        0,
        "the quiet path never falls back"
    );
}

#[test]
fn collector_mode_vote_traffic_is_linear() {
    use std::cell::Cell;
    use std::rc::Rc;
    let deliveries = Rc::new(Cell::new(0u64));
    let counter = Rc::clone(&deliveries);
    let mut cluster = collector_cluster(4);
    cluster.set_filter(move |_, message| {
        if matches!(message.message.kind(), "prepare" | "commit") {
            counter.set(counter.get() + 1);
        }
        true
    });
    cluster.replicas[0].propose(request(7, 0));
    cluster.run_until_quiet();
    for id in 0..4 {
        assert_eq!(cluster.decides_on(id).len(), 1, "replica {id}");
    }
    // Slot 1's collector is node 1. Prepares travel 2→1 and 3→1 (the
    // primary sends none, the collector keeps its own); commits travel
    // 0→1, 2→1, 3→1. Five point-to-point votes where the all-to-all
    // exchange delivers 3·3 prepares + 4·3 commits = 21.
    assert_eq!(deliveries.get(), 5);
}

#[test]
fn silent_collector_falls_back_to_all_to_all() {
    let mut cluster = collector_cluster(4);
    // Certificates vanish in transit: the collector aggregates but
    // nobody hears it — indistinguishable from a silent collector.
    cluster
        .set_filter(|_, message| !matches!(message.message.kind(), "prepare-cert" | "commit-cert"));
    cluster.replicas[0].propose(request(4, 0));
    cluster.run_until_quiet();
    assert!(
        cluster.collected.decides.len() < 4,
        "certificates lost: the group must stall until the fallback"
    );
    cluster.fire_collector_timers();
    for id in 0..4 {
        assert_eq!(
            cluster.decides_on(id),
            vec![(1, vec![4; 16])],
            "replica {id} decides after the fallback"
        );
    }
    let fallbacks: u64 = cluster
        .replicas
        .iter()
        .map(|replica| replica.stats().collector_fallbacks)
        .sum();
    assert!(fallbacks > 0, "the fallback path was exercised");
}

#[test]
fn crashed_collector_is_survived_by_fallback() {
    let mut cluster = collector_cluster(4);
    // Node 1 — the collector for sn 1 — is dead: nothing in, nothing out.
    cluster.set_filter(|dest, message| dest != 1 && message.from != NodeId(1));
    cluster.replicas[0].propose(request(5, 0));
    cluster.run_until_quiet();
    assert!(
        cluster.collected.decides.is_empty(),
        "no decide can happen while every vote sits at the dead collector"
    );
    cluster.fire_collector_timers();
    for id in [0, 2, 3] {
        assert_eq!(
            cluster.decides_on(id),
            vec![(1, vec![5; 16])],
            "replica {id} decides without the collector"
        );
    }
}

#[test]
fn staggered_fallback_converges_via_vote_echo() {
    // Regression: a crashed collector plus a *staggered* fallback used
    // to strand the group. If one replica's fallback timer fires first,
    // its broadcast can complete the prepare phase on a strict subset of
    // replicas — which then cancel their own one-shot timers, so their
    // votes (sent only to the dead collector) are never heard and the
    // rest stay short of quorum forever. The echo rule closes the gap:
    // receiving a direct vote re-broadcasts your own, even when your
    // phase already completed.
    let mut cluster = collector_cluster(4);
    // Node 1 — the collector for sn 1 — is dead.
    cluster.set_filter(|dest, message| dest != 1 && message.from != NodeId(1));
    cluster.replicas[0].propose(request(6, 0));
    cluster.run_until_quiet();
    assert!(cluster.collected.decides.is_empty());
    // Fire ONLY node 2's prepare fallback. Node 3 then holds two
    // non-primary prepares (its own plus node 2's) and completes the
    // phase; nodes 0 and 2 hold one each and would deadlock without the
    // echo from node 3.
    let timer = ReplicaTimer::CollectorPrepare(1);
    assert!(cluster.collector_timers[2].remove(&timer));
    cluster.replicas[2].on_timer(timer);
    cluster.run_until_quiet();
    for id in [0, 2, 3] {
        let slots = cluster.replicas[id].slot_snapshot();
        assert!(
            slots.iter().all(|&(_, _, _, _, prepared, _)| prepared),
            "replica {id} must prepare off the echoed votes: {slots:?}"
        );
    }
    // Node 2's own echo trigger (node 3's direct prepare) must not
    // re-broadcast: the timer fallback already spent the once-only flag.
    assert_eq!(cluster.replicas[2].stats().collector_fallbacks, 1);
    // The commit phase degrades the same way once the remaining one-shot
    // timers fire; every live replica decides.
    cluster.fire_collector_timers();
    for id in [0, 2, 3] {
        assert_eq!(
            cluster.decides_on(id),
            vec![(1, vec![6; 16])],
            "replica {id} decides despite the staggered fallback"
        );
    }
}

#[test]
fn forged_certificate_signatures_are_rejected() {
    let (pairs, _) = Keystore::generate(4, 42);
    let mut cluster = collector_cluster(4);
    // Signatures lifted from a view-7 prepare do not verify against the
    // canonical view-0 vote bytes, however official the envelope looks.
    let forged: Vec<_> = [1u64, 2]
        .iter()
        .map(|&id| {
            let decoy = SignedMessage::sign(
                NodeId(id),
                Message::Prepare(crate::Prepare {
                    view: 7,
                    sn: 1,
                    digest: Digest::ZERO,
                }),
                &pairs[id as usize],
            );
            (NodeId(id), decoy.signature().unwrap())
        })
        .collect();
    let cert = Message::PrepareCert(crate::VoteCert {
        view: 0,
        sn: 1,
        digest: Digest::ZERO,
        signatures: forged,
    });
    let signed = SignedMessage::sign(NodeId(1), cert, &pairs[1]);
    cluster.replicas[3].on_message(signed);
    let _ = cluster.replicas[3].drain_effects();
    assert_eq!(cluster.replicas[3].stats().collector_certs_absorbed, 1);
    assert_eq!(cluster.replicas[3].stats().cert_invalid_signatures, 2);
    let slots = cluster.replicas[3].slot_snapshot();
    assert!(
        slots.iter().all(|&(_, _, prepares, _, _, _)| prepares == 0),
        "no forged vote may be recorded: {slots:?}"
    );
}

#[test]
fn collector_mode_decides_under_mac_auth() {
    let config = Config::new(4)
        .unwrap()
        .with_comm_mode(CommMode::Collector)
        .with_auth_mode(AuthMode::MacWithSigFallback);
    let mut cluster = Cluster::with_config(4, config);
    for tag in 1..=2 {
        cluster.replicas[0].propose(request(tag, 0));
    }
    cluster.run_until_quiet();
    for id in 0..4 {
        let decides = cluster.decides_on(id);
        let sns: Vec<u64> = decides.iter().map(|(sn, _)| *sn).collect();
        assert_eq!(sns, vec![1, 2], "replica {id}");
    }
    let sent: u64 = cluster
        .replicas
        .iter()
        .map(|replica| replica.stats().collector_certs_sent)
        .sum();
    assert_eq!(sent, 4, "MAC envelopes still carry signed votes for certs");
}
