//! Property-based safety tests for the PBFT replica: under *any*
//! delivery order and any pattern of message loss, no two correct
//! replicas ever decide different requests for the same sequence number,
//! and decides are emitted in strictly increasing order.

use proptest::prelude::*;
use zugchain_crypto::Keystore;
use zugchain_machine::Effect;
use zugchain_pbft::{Config, NodeId, ProposedRequest, Replica, ReplicaEvent, SignedMessage};

/// A scripted run: proposals interleaved with a delivery schedule.
#[derive(Debug, Clone)]
struct Schedule {
    /// Payload tags to propose on the primary.
    proposals: Vec<u8>,
    /// For each routing step: a permutation selector and a drop mask.
    routing: Vec<(u64, u8)>,
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    (
        proptest::collection::vec(any::<u8>(), 1..6),
        proptest::collection::vec((any::<u64>(), any::<u8>()), 0..40),
    )
        .prop_map(|(proposals, routing)| Schedule { proposals, routing })
}

/// Runs the schedule over a 4-replica group. Messages are queued; each
/// routing step picks a pseudo-random queued message and delivers it to a
/// subset of replicas (the drop mask), modelling arbitrary reordering and
/// loss. Afterwards everything remaining is delivered to everyone.
fn run(schedule: &Schedule) -> Vec<Vec<(u64, Vec<u8>)>> {
    let config = Config::new(4).unwrap();
    let (pairs, keystore) = Keystore::generate(4, 7777);
    let mut replicas: Vec<Replica> = pairs
        .into_iter()
        .enumerate()
        .map(|(id, key)| Replica::new(NodeId(id as u64), config.clone(), key, keystore.clone()))
        .collect();
    let mut decided: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); 4];
    // Pending deliveries: (destination, message).
    let mut queue: Vec<(usize, SignedMessage)> = Vec::new();

    let pump = |replicas: &mut Vec<Replica>,
                queue: &mut Vec<(usize, SignedMessage)>,
                decided: &mut Vec<Vec<(u64, Vec<u8>)>>| {
        for index in 0..replicas.len() {
            for effect in replicas[index].drain_effects() {
                match effect {
                    Effect::Broadcast { message } => {
                        for dest in 0..4 {
                            if dest != index {
                                queue.push((dest, message.clone()));
                            }
                        }
                    }
                    Effect::Send { to, message } if to.0 as usize != index => {
                        queue.push((to.0 as usize, message));
                    }
                    Effect::Output(ReplicaEvent::Decide { sn, request }) if !request.is_noop() => {
                        decided[index].push((sn, request.payload));
                    }
                    _ => {}
                }
            }
        }
    };

    for &tag in &schedule.proposals {
        replicas[0].propose(ProposedRequest::application(vec![tag; 8], NodeId(0)));
    }
    pump(&mut replicas, &mut queue, &mut decided);

    // Adversarial scheduling phase: deliver in arbitrary order, possibly
    // to only a subset (dropped for the others).
    for &(pick, mask) in &schedule.routing {
        if queue.is_empty() {
            break;
        }
        let index = (pick as usize) % queue.len();
        let (dest, message) = queue.swap_remove(index);
        if mask & 1 == 0 {
            // Dropped entirely.
            continue;
        }
        replicas[dest].on_message(message);
        pump(&mut replicas, &mut queue, &mut decided);
    }

    // Stabilization phase: deliver everything left, FIFO.
    let mut steps = 0;
    while !queue.is_empty() && steps < 100_000 {
        let (dest, message) = queue.remove(0);
        replicas[dest].on_message(message);
        pump(&mut replicas, &mut queue, &mut decided);
        steps += 1;
    }
    decided
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Agreement: no two replicas decide different payloads at the same
    /// sequence number, regardless of delivery order or drops.
    #[test]
    fn no_conflicting_decisions(schedule in schedule_strategy()) {
        let decided = run(&schedule);
        for a in 0..4 {
            for b in (a + 1)..4 {
                for (sn_a, payload_a) in &decided[a] {
                    for (sn_b, payload_b) in &decided[b] {
                        if sn_a == sn_b {
                            prop_assert_eq!(
                                payload_a, payload_b,
                                "replicas {} and {} disagree at sn {}", a, b, sn_a
                            );
                        }
                    }
                }
            }
        }
    }

    /// Total order: every replica's decide stream has strictly
    /// increasing sequence numbers (in-order execution).
    #[test]
    fn decides_are_in_order(schedule in schedule_strategy()) {
        let decided = run(&schedule);
        for (id, stream) in decided.iter().enumerate() {
            for pair in stream.windows(2) {
                prop_assert!(
                    pair[0].0 < pair[1].0,
                    "replica {} decided {} after {}", id, pair[1].0, pair[0].0
                );
            }
        }
    }

    /// Validity: decided payloads were actually proposed.
    #[test]
    fn only_proposed_payloads_decide(schedule in schedule_strategy()) {
        let decided = run(&schedule);
        let proposed: Vec<Vec<u8>> =
            schedule.proposals.iter().map(|tag| vec![*tag; 8]).collect();
        for stream in &decided {
            for (_, payload) in stream {
                prop_assert!(
                    proposed.contains(payload),
                    "decided a payload that was never proposed"
                );
            }
        }
    }

    /// Liveness under loss-free schedules: if nothing is dropped, every
    /// distinct proposal decides on every replica.
    #[test]
    fn lossless_runs_decide_everything(
        proposals in proptest::collection::vec(any::<u8>(), 1..6)
    ) {
        let schedule = Schedule { proposals: proposals.clone(), routing: vec![] };
        let decided = run(&schedule);
        // Distinct tags → distinct requests; duplicate tags are separate
        // proposals with identical payloads, each ordered separately.
        for stream in &decided {
            prop_assert_eq!(stream.len(), proposals.len());
        }
    }
}
