//! The sans-io contract shared by every ZugChain state machine.
//!
//! DESIGN.md's architectural bet is "deterministic state machines driven
//! by interchangeable runtimes". This crate makes that contract explicit:
//!
//! * [`Machine`] — a deterministic state machine consuming inputs and
//!   timer expiries, producing [`Effect`]s. The PBFT replica, the
//!   ZugChain/baseline nodes, and the export endpoints all implement it.
//! * [`Effect`] — the common effect vocabulary: `Send`, `Broadcast`,
//!   `SetTimer`, `CancelTimer`, and `Output` (application up-calls).
//! * [`Frame`] — a reference-counted, **lazily encoded** wire frame. A
//!   broadcast is wire-encoded at most once no matter how many peers the
//!   transport fans it out to; in-process transports never encode at all.
//! * [`TimerTable`] — explicit timer-*generation* semantics: re-arming or
//!   cancelling a timer invalidates queued expiries, so a runtime that
//!   cannot unschedule a wakeup (e.g. a discrete-event queue) simply lets
//!   stale ones fire and the [`Driver`] drops them.
//! * [`Driver`] — the single generic dispatch loop. It owns the machine
//!   and its timer table, wraps outbound messages into `Frame`s, and
//!   delegates the *mechanics* (socket writes, channel sends, event
//!   queues, clocks) to a runtime-provided [`Host`].
//!
//! Runtimes differ only in their `Host` implementation; the `match` over
//! effects lives here, exactly once.
//!
//! # Examples
//!
//! ```
//! use zugchain_machine::{Driver, Effect, Frame, Host, Machine, WireMessage};
//!
//! /// A machine that echoes every input to all peers.
//! struct Echo;
//!
//! /// The wire message (a newtype so we can give it an encoding).
//! #[derive(Clone)]
//! struct Text(String);
//!
//! impl WireMessage for Text {
//!     fn encode_wire(&self) -> Vec<u8> {
//!         self.0.as_bytes().to_vec()
//!     }
//! }
//!
//! impl Machine for Echo {
//!     type Addr = usize;
//!     type Message = Text;
//!     type Timer = u8;
//!     type Output = ();
//!     type Input = Text;
//!
//!     fn on_input(&mut self, input: Text) -> Vec<Effect<usize, Text, u8, ()>> {
//!         vec![Effect::Broadcast { message: input }]
//!     }
//!
//!     fn on_timer(&mut self, _timer: u8) -> Vec<Effect<usize, Text, u8, ()>> {
//!         Vec::new()
//!     }
//! }
//!
//! #[derive(Default)]
//! struct Collect(Vec<Vec<u8>>);
//!
//! impl Host<Echo> for Collect {
//!     fn send(&mut self, _to: usize, frame: &Frame<Text>) {
//!         self.0.push(frame.bytes().to_vec());
//!     }
//!     fn broadcast(&mut self, frame: &Frame<Text>) {
//!         // Fan out to three peers: the frame encodes once.
//!         for _ in 0..3 {
//!             self.0.push(frame.bytes().to_vec());
//!         }
//!     }
//!     fn set_timer(&mut self, _id: u8, _gen: u64, _duration_ms: u64) {}
//!     fn cancel_timer(&mut self, _id: u8) {}
//!     fn output(&mut self, _output: ()) {}
//! }
//!
//! let mut driver = Driver::new(Echo);
//! let mut host = Collect::default();
//! driver.on_input(Text("hello".to_string()), &mut host);
//! assert_eq!(host.0.len(), 3);
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// An effect a [`Machine`] asks its runtime to perform.
///
/// `A` addresses peers, `M` is the wire message type, `T` identifies
/// timers, and `O` is the application-facing output (up-call) type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect<A, M, T, O> {
    /// Send a message to one peer.
    Send {
        /// Destination address.
        to: A,
        /// The message.
        message: M,
    },
    /// Send a message to every other peer.
    Broadcast {
        /// The message.
        message: M,
    },
    /// Arm (or re-arm) a timer. Re-arming invalidates earlier expiries of
    /// the same timer id (see [`TimerTable`]).
    SetTimer {
        /// Timer identity.
        id: T,
        /// Duration until expiry in milliseconds.
        duration_ms: u64,
    },
    /// Disarm a timer (no-op if not armed). Queued expiries become stale.
    CancelTimer {
        /// Timer identity.
        id: T,
    },
    /// An application up-call (decide, logged, block created, …).
    Output(O),
}

/// The discriminant of an [`Effect`], independent of its type parameters.
///
/// Drivers and test harnesses that classify effects (accounting, fault
/// injection, tracing) can match on this instead of writing a full
/// four-parameter generic match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffectKind {
    /// [`Effect::Send`].
    Send,
    /// [`Effect::Broadcast`].
    Broadcast,
    /// [`Effect::SetTimer`].
    SetTimer,
    /// [`Effect::CancelTimer`].
    CancelTimer,
    /// [`Effect::Output`].
    Output,
}

impl EffectKind {
    /// Stable lowercase label for logs, metrics and traces.
    pub fn as_str(self) -> &'static str {
        match self {
            EffectKind::Send => "send",
            EffectKind::Broadcast => "broadcast",
            EffectKind::SetTimer => "set-timer",
            EffectKind::CancelTimer => "cancel-timer",
            EffectKind::Output => "output",
        }
    }
}

impl<A, M, T, O> Effect<A, M, T, O> {
    /// The discriminant of this effect.
    pub fn kind(&self) -> EffectKind {
        match self {
            Effect::Send { .. } => EffectKind::Send,
            Effect::Broadcast { .. } => EffectKind::Broadcast,
            Effect::SetTimer { .. } => EffectKind::SetTimer,
            Effect::CancelTimer { .. } => EffectKind::CancelTimer,
            Effect::Output(_) => EffectKind::Output,
        }
    }
}

/// The [`Effect`] type of a machine `M`.
pub type MachineEffect<M> = Effect<
    <M as Machine>::Addr,
    <M as Machine>::Message,
    <M as Machine>::Timer,
    <M as Machine>::Output,
>;

/// A deterministic sans-io state machine.
///
/// A machine never performs I/O and never reads a clock: it consumes
/// inputs and timer expiries and returns the effects the runtime must
/// execute, in order. Determinism is the property the whole evaluation
/// rests on — the same input sequence must produce the same effect
/// sequence on every runtime.
pub trait Machine {
    /// Peer address type (e.g. a replica id).
    type Addr;
    /// Wire message type.
    type Message;
    /// Timer identity type.
    type Timer: Copy + Ord;
    /// Application output (up-call) type.
    type Output;
    /// Input type (bus payloads, network messages, …).
    type Input;

    /// Consumes one input, returning the effects it caused.
    fn on_input(&mut self, input: Self::Input) -> Vec<MachineEffect<Self>>;

    /// Fires an armed timer, returning the effects it caused. The
    /// [`Driver`] guarantees only *current* (non-stale) expiries arrive.
    fn on_timer(&mut self, timer: Self::Timer) -> Vec<MachineEffect<Self>>;
}

// ---------------------------------------------------------------------
// Serialize-once frames
// ---------------------------------------------------------------------

/// A message type with a canonical wire encoding.
pub trait WireMessage {
    /// Encodes the message into its canonical byte representation.
    fn encode_wire(&self) -> Vec<u8>;
}

#[derive(Debug)]
struct FrameInner<M> {
    message: M,
    encoded: OnceLock<Arc<[u8]>>,
    encodes: AtomicU64,
}

/// A reference-counted, lazily encoded wire frame.
///
/// The [`Driver`] wraps every outbound message into a `Frame` exactly
/// once per `Send`/`Broadcast` effect. Cloning a frame is an `Arc` clone;
/// [`bytes`](Frame::bytes) encodes on first call and returns the cached
/// buffer afterwards — so a broadcast over any number of TCP peers
/// serializes the message once, and in-process transports (channels, the
/// discrete-event simulator) never serialize at all.
#[derive(Debug)]
pub struct Frame<M>(Arc<FrameInner<M>>);

impl<M> Clone for Frame<M> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<M> Frame<M> {
    /// Wraps a message.
    pub fn new(message: M) -> Self {
        Self(Arc::new(FrameInner {
            message,
            encoded: OnceLock::new(),
            encodes: AtomicU64::new(0),
        }))
    }

    /// The wrapped message.
    pub fn message(&self) -> &M {
        &self.0.message
    }

    /// How many times the message has been wire-encoded. At most 1 by
    /// construction; the encode-count regression tests assert on this.
    pub fn encode_count(&self) -> u64 {
        self.0.encodes.load(Ordering::Relaxed)
    }
}

impl<M: Clone> Frame<M> {
    /// Clones the message out of the frame (in-process delivery).
    pub fn to_message(&self) -> M {
        self.0.message.clone()
    }
}

impl<M: WireMessage> Frame<M> {
    /// The canonical encoding, computed once and cached.
    pub fn bytes(&self) -> Arc<[u8]> {
        self.0
            .encoded
            .get_or_init(|| {
                self.0.encodes.fetch_add(1, Ordering::Relaxed);
                Arc::from(self.0.message.encode_wire())
            })
            .clone()
    }
}

// ---------------------------------------------------------------------
// Timer generations
// ---------------------------------------------------------------------

/// Timer-generation bookkeeping shared by every runtime.
///
/// Arming a timer id bumps its generation; the runtime schedules a wakeup
/// carrying `(id, generation)`. Cancelling (or re-arming) bumps the
/// generation again, so a wakeup that was already queued fires with a
/// stale generation and is dropped by [`fire`](TimerTable::fire). This
/// gives runtimes that cannot unschedule wakeups (discrete-event queues)
/// and runtimes that can (deadline maps) identical cancellation
/// semantics — the divergence that previously let a cancelled-then-
/// refired soft timeout double-propose on some runtimes.
#[derive(Debug, Default)]
pub struct TimerTable<T: Ord> {
    generations: BTreeMap<T, u64>,
    /// Generations currently armed (a fired or cancelled timer stays in
    /// `generations` so late duplicates remain stale, but leaves `armed`).
    armed: BTreeMap<T, u64>,
}

impl<T: Copy + Ord> TimerTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            generations: BTreeMap::new(),
            armed: BTreeMap::new(),
        }
    }

    /// Arms `id`, invalidating any queued expiry, and returns the new
    /// generation to schedule.
    pub fn arm(&mut self, id: T) -> u64 {
        let generation = self.generations.entry(id).or_insert(0);
        *generation += 1;
        self.armed.insert(id, *generation);
        *generation
    }

    /// Cancels `id`: any queued expiry becomes stale.
    pub fn cancel(&mut self, id: T) {
        if self.armed.remove(&id).is_some() {
            *self.generations.entry(id).or_insert(0) += 1;
        }
    }

    /// Returns `true` if `(id, generation)` is the currently armed expiry.
    pub fn is_current(&self, id: T, generation: u64) -> bool {
        self.armed.get(&id) == Some(&generation)
    }

    /// Consumes an expiry: returns `true` exactly once per armed
    /// generation, `false` for stale or duplicate firings.
    pub fn fire(&mut self, id: T, generation: u64) -> bool {
        if self.is_current(id, generation) {
            self.armed.remove(&id);
            true
        } else {
            false
        }
    }

    /// Number of currently armed timers.
    pub fn armed_len(&self) -> usize {
        self.armed.len()
    }

    /// Disarms everything (crash simulation).
    pub fn clear(&mut self) {
        let armed: Vec<T> = self.armed.keys().copied().collect();
        for id in armed {
            self.cancel(id);
        }
    }
}

// ---------------------------------------------------------------------
// The generic driver
// ---------------------------------------------------------------------

/// What a runtime provides for the [`Driver`] to execute effects.
///
/// Hosts implement *mechanics only*: how to move a frame, how to schedule
/// a wakeup, where outputs go. All protocol-visible policy (timer
/// generations, serialize-once) lives in the driver.
pub trait Host<M: Machine> {
    /// Delivers a frame to one peer.
    fn send(&mut self, to: M::Addr, frame: &Frame<M::Message>);
    /// Delivers a frame to every other peer. The frame is shared: a
    /// wire transport should call [`Frame::bytes`] once and write the
    /// same buffer to each peer.
    fn broadcast(&mut self, frame: &Frame<M::Message>);
    /// Schedules a wakeup for `(id, gen)` after `duration_ms`. The
    /// runtime reports the expiry via [`Driver::on_timer_fired`].
    fn set_timer(&mut self, id: M::Timer, gen: u64, duration_ms: u64);
    /// Unschedules `id` if the runtime can; stale expiries are dropped by
    /// the driver regardless, so this is an optimization hook.
    fn cancel_timer(&mut self, id: M::Timer);
    /// Receives an application output.
    fn output(&mut self, output: M::Output);
}

/// A passive tap on everything flowing through a [`Driver`]: inputs,
/// effects, and the timer lifecycle (with generations). Observers are
/// telemetry, not policy — they see borrowed data, cannot alter it, and
/// every method has an empty default body, so a no-op observer costs one
/// branch per hook.
///
/// The driver invokes hooks in execution order: `input` (or
/// `timer_fired`) first, then one `effect` per emitted effect, with
/// `timer_set`/`timer_cancelled` nested inside the corresponding timer
/// effects after the generation is assigned.
pub trait Observer<M: Machine> {
    /// An input is about to be fed to the machine.
    fn input(&mut self, _input: &M::Input) {}
    /// The machine emitted an effect (observed before routing).
    fn effect(&mut self, _effect: &MachineEffect<M>) {}
    /// A timer was armed with the given generation.
    fn timer_set(&mut self, _id: &M::Timer, _gen: u64, _duration_ms: u64) {}
    /// A timer was cancelled.
    fn timer_cancelled(&mut self, _id: &M::Timer) {}
    /// A timer expiry was reported; `stale` expiries are dropped without
    /// reaching the machine.
    fn timer_fired(&mut self, _id: &M::Timer, _gen: u64, _stale: bool) {}
}

/// The [`Observer`] that observes nothing (the driver default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl<M: Machine> Observer<M> for NoopObserver {}

/// The single generic dispatch loop: owns a [`Machine`] and its
/// [`TimerTable`], routes effects to a [`Host`].
///
/// This replaces the three hand-rolled `match action` loops the
/// discrete-event simulator, the threaded runtime, and the TCP mesh used
/// to carry — and is the one place broadcast frames are created, so a
/// message is encoded/signed once per broadcast regardless of fan-out.
///
/// An optional [`Observer`] taps the same seam for telemetry; without
/// one (the default) every hook site is a single `None` check.
pub struct Driver<M: Machine> {
    machine: M,
    timers: TimerTable<M::Timer>,
    observer: Option<Box<dyn Observer<M> + Send>>,
}

impl<M: Machine + std::fmt::Debug> std::fmt::Debug for Driver<M>
where
    M::Timer: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Driver")
            .field("machine", &self.machine)
            .field("timers", &self.timers)
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

impl<M: Machine> Driver<M> {
    /// Wraps a machine.
    pub fn new(machine: M) -> Self {
        Self {
            machine,
            timers: TimerTable::new(),
            observer: None,
        }
    }

    /// Wraps a machine with an [`Observer`] attached from the start.
    pub fn with_observer(machine: M, observer: Box<dyn Observer<M> + Send>) -> Self {
        Self {
            machine,
            timers: TimerTable::new(),
            observer: Some(observer),
        }
    }

    /// Attaches (or replaces) the observer.
    pub fn set_observer(&mut self, observer: Box<dyn Observer<M> + Send>) {
        self.observer = Some(observer);
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Mutable access to the wrapped machine.
    pub fn machine_mut(&mut self) -> &mut M {
        &mut self.machine
    }

    /// Unwraps the machine (shutdown/state collection).
    pub fn into_machine(self) -> M {
        self.machine
    }

    /// Feeds one input through the machine and routes its effects.
    pub fn on_input<H: Host<M>>(&mut self, input: M::Input, host: &mut H) {
        if let Some(observer) = &mut self.observer {
            observer.input(&input);
        }
        let effects = self.machine.on_input(input);
        self.route(effects, host);
    }

    /// Reports a timer expiry. Stale generations (cancelled or re-armed
    /// since scheduling) are dropped; returns whether the timer fired.
    pub fn on_timer_fired<H: Host<M>>(&mut self, id: M::Timer, gen: u64, host: &mut H) -> bool {
        let current = self.timers.fire(id, gen);
        if let Some(observer) = &mut self.observer {
            observer.timer_fired(&id, gen, !current);
        }
        if !current {
            return false;
        }
        let effects = self.machine.on_timer(id);
        self.route(effects, host);
        true
    }

    /// Returns `true` if `(id, gen)` is still the armed expiry — lets a
    /// cost-modelling runtime skip charging for stale wakeups.
    pub fn timer_is_current(&self, id: M::Timer, gen: u64) -> bool {
        self.timers.is_current(id, gen)
    }

    /// Number of currently armed timers.
    pub fn armed_timers(&self) -> usize {
        self.timers.armed_len()
    }

    /// Disarms all timers (crash simulation): queued expiries go stale.
    pub fn clear_timers(&mut self) {
        self.timers.clear();
    }

    fn route<H: Host<M>>(&mut self, effects: Vec<MachineEffect<M>>, host: &mut H) {
        for effect in effects {
            if let Some(observer) = &mut self.observer {
                observer.effect(&effect);
            }
            match effect {
                Effect::Send { to, message } => host.send(to, &Frame::new(message)),
                Effect::Broadcast { message } => host.broadcast(&Frame::new(message)),
                Effect::SetTimer { id, duration_ms } => {
                    let gen = self.timers.arm(id);
                    if let Some(observer) = &mut self.observer {
                        observer.timer_set(&id, gen, duration_ms);
                    }
                    host.set_timer(id, gen, duration_ms);
                }
                Effect::CancelTimer { id } => {
                    self.timers.cancel(id);
                    if let Some(observer) = &mut self.observer {
                        observer.timer_cancelled(&id);
                    }
                    host.cancel_timer(id);
                }
                Effect::Output(output) => host.output(output),
            }
        }
    }
}

/// An uninhabited timer type for machines that never arm timers (e.g.
/// the export data center).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NoTimer {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A message whose encoder counts global invocations.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Msg(Vec<u8>);

    static ENCODES: AtomicUsize = AtomicUsize::new(0);

    impl WireMessage for Msg {
        fn encode_wire(&self) -> Vec<u8> {
            ENCODES.fetch_add(1, Ordering::SeqCst);
            self.0.clone()
        }
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Out {
        Fired(u8),
    }

    /// Scriptable test machine: each input is a list of effects to emit.
    struct Scripted;

    type Fx = Effect<usize, Msg, u8, Out>;

    impl Machine for Scripted {
        type Addr = usize;
        type Message = Msg;
        type Timer = u8;
        type Output = Out;
        type Input = Vec<Fx>;

        fn on_input(&mut self, input: Vec<Fx>) -> Vec<Fx> {
            input
        }

        fn on_timer(&mut self, timer: u8) -> Vec<Fx> {
            vec![Effect::Output(Out::Fired(timer))]
        }
    }

    /// Records everything; fans broadcasts out to `peers` wire writes.
    #[derive(Default)]
    struct MockHost {
        peers: usize,
        wire_writes: Vec<Arc<[u8]>>,
        frames: Vec<Frame<Msg>>,
        timers_set: Vec<(u8, u64, u64)>,
        outputs: Vec<Out>,
    }

    impl Host<Scripted> for MockHost {
        fn send(&mut self, _to: usize, frame: &Frame<Msg>) {
            self.wire_writes.push(frame.bytes());
            self.frames.push(frame.clone());
        }
        fn broadcast(&mut self, frame: &Frame<Msg>) {
            for _ in 0..self.peers {
                self.wire_writes.push(frame.bytes());
            }
            self.frames.push(frame.clone());
        }
        fn set_timer(&mut self, id: u8, gen: u64, duration_ms: u64) {
            self.timers_set.push((id, gen, duration_ms));
        }
        fn cancel_timer(&mut self, _id: u8) {}
        fn output(&mut self, output: Out) {
            self.outputs.push(output);
        }
    }

    #[test]
    fn broadcast_encodes_exactly_once_regardless_of_fanout() {
        let before = ENCODES.load(Ordering::SeqCst);
        let mut driver = Driver::new(Scripted);
        let mut host = MockHost {
            peers: 16,
            ..MockHost::default()
        };
        driver.on_input(
            vec![Effect::Broadcast {
                message: Msg(vec![42; 128]),
            }],
            &mut host,
        );
        assert_eq!(host.wire_writes.len(), 16);
        // One frame, one encode, sixteen writes of the same buffer.
        assert_eq!(host.frames.len(), 1);
        assert_eq!(host.frames[0].encode_count(), 1);
        assert_eq!(ENCODES.load(Ordering::SeqCst) - before, 1);
        let first = &host.wire_writes[0];
        assert!(host.wire_writes.iter().all(|w| Arc::ptr_eq(w, first)));
    }

    #[test]
    fn in_process_delivery_never_encodes() {
        let before = ENCODES.load(Ordering::SeqCst);
        let frame = Frame::new(Msg(vec![1, 2, 3]));
        let copies: Vec<Msg> = (0..8).map(|_| frame.to_message()).collect();
        assert!(copies.iter().all(|m| m.0 == vec![1, 2, 3]));
        assert_eq!(frame.encode_count(), 0);
        assert_eq!(ENCODES.load(Ordering::SeqCst), before);
    }

    #[test]
    fn cancelled_timer_expiry_is_stale() {
        let mut driver = Driver::new(Scripted);
        let mut host = MockHost::default();
        driver.on_input(
            vec![Effect::SetTimer {
                id: 7,
                duration_ms: 50,
            }],
            &mut host,
        );
        let (id, gen, _) = host.timers_set[0];
        driver.on_input(vec![Effect::CancelTimer { id: 7 }], &mut host);
        // The queued expiry fires anyway (a runtime that cannot
        // unschedule); the driver must drop it.
        assert!(!driver.on_timer_fired(id, gen, &mut host));
        assert!(host.outputs.is_empty());
    }

    #[test]
    fn cancelled_then_rearmed_timer_fires_only_the_new_generation() {
        let mut driver = Driver::new(Scripted);
        let mut host = MockHost::default();
        driver.on_input(
            vec![Effect::SetTimer {
                id: 3,
                duration_ms: 50,
            }],
            &mut host,
        );
        let (_, gen1, _) = host.timers_set[0];
        driver.on_input(vec![Effect::CancelTimer { id: 3 }], &mut host);
        driver.on_input(
            vec![Effect::SetTimer {
                id: 3,
                duration_ms: 50,
            }],
            &mut host,
        );
        let (_, gen2, _) = host.timers_set[1];
        assert_ne!(gen1, gen2);
        // Old expiry: stale. New expiry: fires once, then its duplicate
        // is dropped too.
        assert!(!driver.on_timer_fired(3, gen1, &mut host));
        assert!(driver.on_timer_fired(3, gen2, &mut host));
        assert!(!driver.on_timer_fired(3, gen2, &mut host));
        assert_eq!(host.outputs, vec![Out::Fired(3)]);
    }

    #[test]
    fn rearm_without_cancel_invalidates_the_old_expiry() {
        let mut table: TimerTable<u8> = TimerTable::new();
        let gen1 = table.arm(1);
        let gen2 = table.arm(1);
        assert!(!table.fire(1, gen1));
        assert!(table.fire(1, gen2));
    }

    #[test]
    fn clear_disarms_everything() {
        let mut table: TimerTable<u8> = TimerTable::new();
        let gen_a = table.arm(1);
        let gen_b = table.arm(2);
        assert_eq!(table.armed_len(), 2);
        table.clear();
        assert_eq!(table.armed_len(), 0);
        assert!(!table.fire(1, gen_a));
        assert!(!table.fire(2, gen_b));
    }

    #[test]
    fn effects_route_in_order() {
        let mut driver = Driver::new(Scripted);
        let mut host = MockHost {
            peers: 2,
            ..MockHost::default()
        };
        driver.on_input(
            vec![
                Effect::Output(Out::Fired(1)),
                Effect::Send {
                    to: 1,
                    message: Msg(vec![9]),
                },
                Effect::Output(Out::Fired(2)),
            ],
            &mut host,
        );
        assert_eq!(host.outputs, vec![Out::Fired(1), Out::Fired(2)]);
        assert_eq!(host.wire_writes.len(), 1);
    }

    #[test]
    fn effect_kinds_match_variants() {
        let effects: Vec<Fx> = vec![
            Effect::Send {
                to: 1,
                message: Msg(vec![]),
            },
            Effect::Broadcast {
                message: Msg(vec![]),
            },
            Effect::SetTimer {
                id: 1,
                duration_ms: 10,
            },
            Effect::CancelTimer { id: 1 },
            Effect::Output(Out::Fired(0)),
        ];
        let kinds: Vec<EffectKind> = effects.iter().map(Effect::kind).collect();
        assert_eq!(
            kinds,
            vec![
                EffectKind::Send,
                EffectKind::Broadcast,
                EffectKind::SetTimer,
                EffectKind::CancelTimer,
                EffectKind::Output,
            ]
        );
    }
}
