//! Deterministic, canonical binary wire format for ZugChain.
//!
//! The paper exchanges blockchain data in Protobuf format. ZugChain,
//! however, *hashes* encoded messages and blocks, which requires a
//! **canonical** encoding: the same value must always serialize to the same
//! bytes on every node. Protobuf does not guarantee canonical encoding, so
//! this reproduction substitutes a small, explicit, length-prefixed binary
//! codec (see `DESIGN.md` §3).
//!
//! The format is deliberately simple:
//!
//! * fixed-width little-endian integers for protocol fields,
//! * LEB128 varints for lengths and counts,
//! * length-prefixed byte strings,
//! * sequences as a varint count followed by the elements,
//! * `Option<T>` as a presence byte (`0`/`1`) followed by the value.
//!
//! # Examples
//!
//! ```
//! use zugchain_wire::{Encode, Decode, Reader, Writer, WireError};
//!
//! # fn main() -> Result<(), WireError> {
//! let mut w = Writer::new();
//! 42u64.encode(&mut w);
//! "brake applied".to_string().encode(&mut w);
//! let bytes = w.into_bytes();
//!
//! let mut r = Reader::new(&bytes);
//! assert_eq!(u64::decode(&mut r)?, 42);
//! assert_eq!(String::decode(&mut r)?, "brake applied");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod reader;
mod trace;
mod train;
mod traits;
mod writer;

pub use error::WireError;
pub use reader::Reader;
pub use reader::MAX_FIELD_LEN;
pub use trace::{
    decode_traced, derive_span_id, derive_trace_id, encode_traced, TraceCtx, TRACE_ENVELOPE_MAGIC,
};
pub use train::TrainId;
pub use traits::{decode_seq, encode_seq, Decode, Encode};
pub use writer::Writer;

/// Encodes a value into a fresh byte vector.
///
/// # Examples
///
/// ```
/// let bytes = zugchain_wire::to_bytes(&7u32);
/// assert_eq!(bytes, [7, 0, 0, 0]);
/// ```
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value from a byte slice, requiring that all input is consumed.
///
/// # Errors
///
/// Returns [`WireError::TrailingBytes`] if the value does not span the whole
/// slice, or any decode error produced by `T`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), zugchain_wire::WireError> {
/// let n: u32 = zugchain_wire::from_bytes(&[7, 0, 0, 0])?;
/// assert_eq!(n, 7);
/// # Ok(())
/// # }
/// ```
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_requires_full_consumption() {
        let mut bytes = to_bytes(&5u16);
        bytes.push(0xff);
        let err = from_bytes::<u16>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::TrailingBytes { remaining: 1 }));
    }
}
