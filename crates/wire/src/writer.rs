/// An append-only buffer for encoding values in the ZugChain wire format.
///
/// Writing is infallible; the writer grows as needed.
///
/// # Examples
///
/// ```
/// use zugchain_wire::Writer;
///
/// let mut w = Writer::new();
/// w.write_u32(0xdead_beef);
/// w.write_bytes(b"jru");
/// assert_eq!(w.len(), 4 + 1 + 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Creates a writer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// A view of the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends a single byte.
    pub fn write_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a little-endian `u16`.
    pub fn write_u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn write_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn write_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn write_i64(&mut self, value: i64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian IEEE-754 `f64`.
    pub fn write_f64(&mut self, value: f64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a LEB128 varint.
    ///
    /// The encoding is minimal (canonical): no redundant trailing groups.
    pub fn write_varint(&mut self, mut value: u64) {
        loop {
            let byte = (value & 0x7f) as u8;
            value >>= 7;
            if value == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a varint length prefix followed by the raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_varint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends raw bytes without a length prefix.
    ///
    /// Use only for fixed-size fields whose length is known to the decoder
    /// (digests, keys, signatures).
    pub fn write_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_single_byte() {
        let mut w = Writer::new();
        w.write_varint(0);
        w.write_varint(127);
        assert_eq!(w.as_bytes(), &[0x00, 0x7f]);
    }

    #[test]
    fn varint_multi_byte() {
        let mut w = Writer::new();
        w.write_varint(128);
        assert_eq!(w.as_bytes(), &[0x80, 0x01]);
        let mut w = Writer::new();
        w.write_varint(u64::MAX);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn length_prefixed_bytes() {
        let mut w = Writer::new();
        w.write_bytes(b"abc");
        assert_eq!(w.as_bytes(), &[3, b'a', b'b', b'c']);
    }

    #[test]
    fn fixed_width_little_endian() {
        let mut w = Writer::new();
        w.write_u32(1);
        assert_eq!(w.as_bytes(), &[1, 0, 0, 0]);
    }
}
